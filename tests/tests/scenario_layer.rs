//! Integration suite for the first-class scenario layer: the named
//! catalog, the time-series carbon replay, and the scored verdicts —
//! golden-matched bit-for-bit across the direct engine, the HTTP routes
//! (on both event-loop drivers), and the CLI's query path.
//!
//! Bit-identity works for the same reason as in `serve.rs`: the wire
//! format serializes `f64` with shortest round-trip formatting, so
//! decoding a served body reconstructs exactly the bits the server's
//! engine produced and `PartialEq` on the typed structs compares bits.

use gf_json::{FromJson, Value};
use gf_server::client::Client;
use gf_server::{DriverKind, Server, ServerConfig, ServerHandle};
use greenfpga::api::{
    CatalogRequest, CatalogResponse, Query, QueryKind, ReplayRequest, ReplayResponse, ScenarioRef,
    ScenarioRunRequest, ScenarioRunResponse,
};
use greenfpga::{
    catalog, catalog_entry, ApiErrorCode, CarbonIntensitySeries, Domain, Engine, EngineConfig,
    Estimator, OperatingPoint, Outcome, ScenarioSpec, SeriesRef, Verdict, HOURS_PER_YEAR,
};

fn spawn_server(driver: DriverKind) -> ServerHandle {
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        idle_timeout: std::time::Duration::from_secs(2),
        driver,
        ..ServerConfig::default()
    };
    Server::bind(config).expect("bind ephemeral server").spawn()
}

/// The drivers available on this platform: the portable fallback always,
/// plus raw epoll where the OS provides it.
fn drivers() -> Vec<DriverKind> {
    if cfg!(target_os = "linux") {
        vec![DriverKind::Portable, DriverKind::Epoll]
    } else {
        vec![DriverKind::Portable]
    }
}

fn post(client: &mut Client, path: &str, body: &str) -> (u16, Value) {
    let (status, text) = client.post(path, body).expect("request round-trip");
    (status, gf_json::parse(&text).expect("response is JSON"))
}

/// A scenario query by catalog id, as the CLI builds it.
fn scenario_query(id: &str) -> Query {
    Query::Scenario(ScenarioRunRequest {
        scenario: ScenarioRef::Catalog {
            id: id.to_string(),
            knobs: Vec::new(),
        },
        point: None,
    })
}

#[test]
fn every_cataloged_id_matches_the_direct_computation() {
    // Golden outcome per cataloged id: running by name must equal
    // compiling the cataloged spec directly and scoring its comparison.
    let engine = Engine::with_defaults().unwrap();
    assert!(catalog().len() >= 12, "catalog has {}", catalog().len());
    for entry in catalog() {
        let Outcome::Scenario(served) = engine.run(&scenario_query(entry.id)).unwrap() else {
            panic!("{}: wrong outcome kind", entry.id);
        };
        let direct = Estimator::new(entry.scenario.params())
            .compile(entry.scenario.domain)
            .unwrap()
            .evaluate(entry.point)
            .unwrap();
        assert_eq!(served.id.as_deref(), Some(entry.id));
        assert_eq!(served.point, entry.point, "{}", entry.id);
        assert_eq!(served.comparison, direct, "{}", entry.id);
        assert_eq!(
            served.comparison.fpga.total().as_kg().to_bits(),
            direct.fpga.total().as_kg().to_bits(),
            "{}",
            entry.id
        );
        assert_eq!(
            served.verdict,
            Verdict::from_comparison(&direct),
            "{}",
            entry.id
        );
    }
}

#[test]
fn named_scenarios_are_bit_identical_across_http_cli_and_engine() {
    // One engine outcome per id, compared against the served body of both
    // drivers AND the CLI's `--json` document (the CLI prints
    // `outcome.result_json()` — the same value `decode_result` parses).
    let engine = Engine::with_defaults().unwrap();
    for driver in drivers() {
        let handle = spawn_server(driver);
        let mut client = Client::connect(handle.addr()).expect("connect");
        for entry in catalog() {
            let Outcome::Scenario(local) = engine.run(&scenario_query(entry.id)).unwrap() else {
                panic!("wrong outcome kind");
            };
            let body = format!(r#"{{"id": "{}"}}"#, entry.id);
            let (status, value) = post(&mut client, QueryKind::Scenario.path(), &body);
            assert_eq!(status, 200, "{driver:?} {}: {value:?}", entry.id);
            let served = ScenarioRunResponse::from_json(&value).expect("typed decode");
            assert_eq!(served, local, "{driver:?} {}", entry.id);
            // The CLI's JSON document is the same result value serialized
            // by the same writer.
            let cli_json = Outcome::Scenario(local.clone())
                .result_json()
                .to_json_string()
                .unwrap();
            let http_json = value.to_json_string().unwrap();
            assert_eq!(cli_json, http_json, "{driver:?} {}", entry.id);
        }
        handle.shutdown();
    }
}

#[test]
fn replay_and_catalog_routes_serve_golden_bodies_on_both_drivers() {
    let engine = Engine::with_defaults().unwrap();
    let replay_query = Query::Replay(ReplayRequest {
        scenario: ScenarioRef::Catalog {
            id: "crypto_fleet_1m_5y".to_string(),
            knobs: Vec::new(),
        },
        point: None,
        series: SeriesRef::Region("solar_duck".to_string()),
        interpolate: true,
        years: 1,
    });
    let Outcome::Replay(local_replay) = engine.run(&replay_query).unwrap() else {
        panic!("wrong outcome kind");
    };
    let Outcome::Catalog(local_catalog) = engine.run(&Query::Catalog(CatalogRequest)).unwrap()
    else {
        panic!("wrong outcome kind");
    };
    for driver in drivers() {
        let handle = spawn_server(driver);
        let mut client = Client::connect(handle.addr()).expect("connect");
        let body = r#"{"id": "crypto_fleet_1m_5y", "series": "solar_duck", "interpolate": true}"#;
        let (status, value) = post(&mut client, QueryKind::Replay.path(), body);
        assert_eq!(status, 200, "{driver:?}: {value:?}");
        let served = ReplayResponse::from_json(&value).expect("typed decode");
        assert_eq!(served, local_replay, "{driver:?}");
        assert_eq!(served.replay.steps, HOURS_PER_YEAR as u64);

        let (status, text) = client.get(QueryKind::Catalog.path()).expect("catalog GET");
        assert_eq!(status, 200, "{driver:?}: {text}");
        let value = gf_json::parse(&text).unwrap();
        let served = CatalogResponse::from_json(&value).expect("typed decode");
        assert_eq!(served, local_catalog, "{driver:?}");
        assert_eq!(served.entries.len(), catalog().len());
        // POSTing the GET-only route is a 405, not a decode error.
        let (status, value) = post(&mut client, QueryKind::Catalog.path(), "{}");
        assert_eq!(status, 405, "{driver:?}: {value:?}");
        handle.shutdown();
    }
}

#[test]
fn repeated_named_scenario_requests_hit_the_compiled_cache() {
    let engine = Engine::with_defaults().unwrap();
    let misses =
        |engine: &Engine| -> u64 { engine.cache_shard_metrics().iter().map(|s| s.misses).sum() };
    let hits =
        |engine: &Engine| -> u64 { engine.cache_shard_metrics().iter().map(|s| s.hits).sum() };
    engine.run(&scenario_query("dnn_fleet_10k_3y")).unwrap();
    let misses_after_first = misses(&engine);
    assert_eq!(misses_after_first, 1, "first run compiles");
    for _ in 0..5 {
        engine.run(&scenario_query("dnn_fleet_10k_3y")).unwrap();
    }
    assert_eq!(misses(&engine), misses_after_first, "no recompilation");
    assert_eq!(hits(&engine), 5, "every repeat hits the cache");
    // Replay traffic for the same id shares the same compiled entry.
    engine
        .run(&Query::Replay(ReplayRequest {
            scenario: ScenarioRef::Catalog {
                id: "dnn_fleet_10k_3y".to_string(),
                knobs: Vec::new(),
            },
            point: None,
            series: SeriesRef::Region(ReplayRequest::DEFAULT_REGION.to_string()),
            interpolate: false,
            years: 1,
        }))
        .unwrap();
    assert_eq!(misses(&engine), misses_after_first);
    assert_eq!(hits(&engine), 6);
}

#[test]
fn replay_is_deterministic_across_engine_thread_counts() {
    // The replay loop is serial by construction; engines configured with
    // different eval-thread counts must produce bit-identical outcomes.
    let outcomes: Vec<ReplayResponse> = [1usize, 2, 8]
        .into_iter()
        .map(|threads| {
            let engine = Engine::new(EngineConfig {
                eval_threads: threads,
                ..EngineConfig::default()
            })
            .unwrap();
            let Outcome::Replay(response) = engine
                .run(&Query::Replay(ReplayRequest {
                    scenario: ScenarioRef::Catalog {
                        id: "dnn_hyperscale_10m_4y".to_string(),
                        knobs: Vec::new(),
                    },
                    point: None,
                    series: SeriesRef::Region("dirty_coal".to_string()),
                    interpolate: true,
                    years: 1,
                }))
                .unwrap()
            else {
                panic!("wrong outcome kind");
            };
            response
        })
        .collect();
    assert_eq!(outcomes[0], outcomes[1]);
    assert_eq!(outcomes[0], outcomes[2]);
    assert_eq!(
        outcomes[0].replay.verdict.score.to_bits(),
        outcomes[1].replay.verdict.score.to_bits()
    );
}

#[test]
fn unknown_ids_regions_and_degenerate_series_speak_the_taxonomy() {
    let engine = Engine::with_defaults().unwrap();
    let error = engine.run(&scenario_query("warp_drive")).unwrap_err();
    assert_eq!(error.code, ApiErrorCode::NotFound);
    assert!(error.message.contains("warp_drive"), "{error}");

    let error = engine
        .run(&Query::Replay(ReplayRequest {
            scenario: ScenarioRef::Catalog {
                id: "dnn_baseline".to_string(),
                knobs: Vec::new(),
            },
            point: None,
            series: SeriesRef::Region("mars_colony".to_string()),
            interpolate: false,
            years: 1,
        }))
        .unwrap_err();
    assert_eq!(error.code, ApiErrorCode::BadRequest);
    assert!(error.message.contains("mars_colony"), "{error}");

    // Series validation happens at decode time, naming the series field.
    for bad in [
        r#"{"id": "dnn_baseline", "series": {"points": []}}"#,
        r#"{"id": "dnn_baseline", "series": {"points": [100.0, -5.0]}}"#,
        r#"{"id": "dnn_baseline", "series": {"points": [100.0], "step_hours": 0}}"#,
    ] {
        let error = QueryKind::Replay
            .decode_request(&gf_json::parse(bad).unwrap())
            .unwrap_err();
        assert!(error.to_string().contains("series"), "{bad}: {error}");
    }
}

#[test]
fn duplicate_knob_ids_are_rejected_at_the_wire_naming_the_knob() {
    // Satellite 1: the wire decoder rejects a knob overridden twice with a
    // bad_request naming the id — for inline specs, catalog overrides and
    // the industry request alike.
    for (kind, body) in [
        (
            QueryKind::Evaluate,
            r#"{"domain": "dnn", "knobs": {"duty_cycle": 0.2, "duty_cycle": 0.4}}"#,
        ),
        (
            QueryKind::Scenario,
            r#"{"id": "dnn_baseline", "knobs": {"duty_cycle": 0.2, "duty_cycle": 0.4}}"#,
        ),
        (
            QueryKind::Industry,
            r#"{"knobs": {"usage_grid_intensity": 100, "usage_grid_intensity": 50}}"#,
        ),
    ] {
        let error = kind
            .decode_request(&gf_json::parse(body).unwrap())
            .unwrap_err();
        let message = error.to_string();
        assert!(message.contains("more than once"), "{kind}: {message}");
        assert!(
            message.contains("duty_cycle") || message.contains("usage_grid_intensity"),
            "{kind}: {message}"
        );
    }
}

#[test]
fn catalog_point_overrides_merge_after_the_cataloged_knobs() {
    // A request-level override on a catalog id must behave exactly like an
    // inline spec whose knob list is the cataloged list plus the override.
    let engine = Engine::with_defaults().unwrap();
    let (_, entry) = catalog_entry("fpga_worst_dirty_grid").unwrap();
    let override_point = OperatingPoint {
        applications: 3,
        lifetime_years: 1.5,
        volume: 20_000,
    };
    let Outcome::Scenario(served) = engine
        .run(&Query::Scenario(ScenarioRunRequest {
            scenario: ScenarioRef::Catalog {
                id: entry.id.to_string(),
                knobs: vec![(greenfpga::Knob::DutyCycle, 0.12)],
            },
            point: Some(override_point),
        }))
        .unwrap()
    else {
        panic!("wrong outcome kind");
    };
    let mut spec = entry.scenario.clone();
    spec.knobs.push((greenfpga::Knob::DutyCycle, 0.12));
    let direct = Estimator::new(spec.params())
        .compile(spec.domain)
        .unwrap()
        .evaluate(override_point)
        .unwrap();
    assert_eq!(served.comparison, direct);
    assert_eq!(served.point, override_point);
}

#[test]
fn constant_replay_agrees_with_the_scalar_path_for_every_domain() {
    // Replaying a flat series at the compiled scalar intensity must land
    // within rounding-shape tolerance of the scalar operation totals —
    // the replay is a parallel path, not a different model.
    let engine = Engine::with_defaults().unwrap();
    for domain in Domain::ALL {
        let spec = ScenarioSpec::baseline(domain);
        let point = OperatingPoint::paper_default();
        let params = spec.params();
        let grid = params.deployment().usage_grid.as_grams_per_kwh();
        let compiled = Estimator::new(params).compile(domain).unwrap();
        let flat = CarbonIntensitySeries::new(vec![grid; HOURS_PER_YEAR], 1.0).unwrap();
        let Outcome::Replay(served) = engine
            .run(&Query::Replay(ReplayRequest {
                scenario: ScenarioRef::Inline(spec),
                point: Some(point),
                series: SeriesRef::Inline(flat),
                interpolate: false,
                years: 1,
            }))
            .unwrap()
        else {
            panic!("wrong outcome kind");
        };
        // One replayed year at the scalar intensity ≈ one year of the
        // scalar per-device operation rate for the same deployment
        // (8760 h vs the calendar-year constant).
        let devices = point.volume * compiled.fpga().chips_per_unit();
        let scalar_year = compiled.fpga().operation_kg_per_device_year()
            * devices as f64
            * point.applications as f64;
        let replayed = served.replay.fpga_operational.as_kg();
        let relative = (replayed - scalar_year).abs() / scalar_year;
        assert!(relative < 2e-3, "{domain}: relative error {relative}");
    }
}

//! Dimensionless fractions constrained to the unit interval.

use std::fmt;
use std::ops::Mul;

use serde::{Deserialize, Serialize};

use crate::UnitError;

/// A dimensionless fraction guaranteed to lie in `[0, 1]`.
///
/// The model uses unit-interval fractions for the recycled-material share
/// `ρ`, the recycling fraction `δ`, duty cycles, yields and renewable-energy
/// shares. Constructing a `Fraction` outside `[0, 1]` is an error, which
/// catches sign and percent/ratio confusion at the API boundary
/// (`C-VALIDATE`).
///
/// # Examples
///
/// ```
/// use gf_units::Fraction;
///
/// let rho = Fraction::new(0.35)?;
/// assert_eq!(rho.complement().value(), 0.65);
/// assert!(Fraction::new(1.2).is_err());
/// # Ok::<(), gf_units::UnitError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Fraction(f64);

impl Fraction {
    /// The fraction 0.
    pub const ZERO: Fraction = Fraction(0.0);
    /// The fraction 1.
    pub const ONE: Fraction = Fraction(1.0);
    /// The fraction 0.5.
    pub const HALF: Fraction = Fraction(0.5);

    /// Creates a fraction.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError::FractionOutOfRange`] when `value` is NaN or not
    /// in `[0, 1]`.
    pub fn new(value: f64) -> Result<Self, UnitError> {
        if value.is_nan() || !(0.0..=1.0).contains(&value) {
            Err(UnitError::FractionOutOfRange(value))
        } else {
            Ok(Fraction(value))
        }
    }

    /// Creates a fraction from a percentage (`35.0` → `0.35`).
    ///
    /// # Errors
    ///
    /// Returns [`UnitError::FractionOutOfRange`] when the percentage is NaN
    /// or not in `[0, 100]`.
    pub fn from_percent(percent: f64) -> Result<Self, UnitError> {
        Self::new(percent / 100.0)
    }

    /// Creates a fraction, clamping out-of-range values into `[0, 1]`.
    ///
    /// NaN clamps to zero. Useful for derived values that may stray slightly
    /// outside the interval due to floating-point error.
    pub fn clamped(value: f64) -> Self {
        if value.is_nan() {
            Fraction(0.0)
        } else {
            Fraction(value.clamp(0.0, 1.0))
        }
    }

    /// Returns the underlying value in `[0, 1]`.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Returns the value as a percentage in `[0, 100]`.
    pub fn as_percent(self) -> f64 {
        self.0 * 100.0
    }

    /// Returns `1 - self`.
    pub fn complement(self) -> Fraction {
        Fraction(1.0 - self.0)
    }

    /// Returns `true` when the fraction is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// Returns `true` when the fraction is exactly one.
    pub fn is_one(self) -> bool {
        self.0 == 1.0
    }
}

impl Default for Fraction {
    fn default() -> Self {
        Fraction::ZERO
    }
}

impl Mul<Fraction> for Fraction {
    type Output = Fraction;
    fn mul(self, rhs: Fraction) -> Fraction {
        // Product of two values in [0,1] stays in [0,1].
        Fraction(self.0 * rhs.0)
    }
}

impl Mul<f64> for Fraction {
    type Output = f64;
    fn mul(self, rhs: f64) -> f64 {
        self.0 * rhs
    }
}

impl Mul<Fraction> for f64 {
    type Output = f64;
    fn mul(self, rhs: Fraction) -> f64 {
        self * rhs.0
    }
}

impl TryFrom<f64> for Fraction {
    type Error = UnitError;
    fn try_from(value: f64) -> Result<Self, Self::Error> {
        Fraction::new(value)
    }
}

impl From<Fraction> for f64 {
    fn from(f: Fraction) -> f64 {
        f.0
    }
}

impl fmt::Display for Fraction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}%", self.as_percent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_range() {
        assert!(Fraction::new(0.0).is_ok());
        assert!(Fraction::new(1.0).is_ok());
        assert!(Fraction::new(0.5).is_ok());
        assert!(Fraction::new(-0.01).is_err());
        assert!(Fraction::new(1.01).is_err());
        assert!(Fraction::new(f64::NAN).is_err());
    }

    #[test]
    fn percent_constructor() {
        assert_eq!(Fraction::from_percent(25.0).unwrap().value(), 0.25);
        assert!(Fraction::from_percent(120.0).is_err());
        assert!((Fraction::from_percent(100.0).unwrap().as_percent() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn clamped_never_fails() {
        assert_eq!(Fraction::clamped(-3.0).value(), 0.0);
        assert_eq!(Fraction::clamped(3.0).value(), 1.0);
        assert_eq!(Fraction::clamped(f64::NAN).value(), 0.0);
        assert_eq!(Fraction::clamped(0.7).value(), 0.7);
    }

    #[test]
    fn complement_and_predicates() {
        let f = Fraction::new(0.3).unwrap();
        assert!((f.complement().value() - 0.7).abs() < 1e-12);
        assert!(Fraction::ZERO.is_zero());
        assert!(Fraction::ONE.is_one());
        assert!(!Fraction::HALF.is_zero());
        assert_eq!(Fraction::default(), Fraction::ZERO);
    }

    #[test]
    fn multiplication() {
        let a = Fraction::new(0.5).unwrap();
        let b = Fraction::new(0.4).unwrap();
        assert!(((a * b).value() - 0.2).abs() < 1e-12);
        assert!((a * 10.0 - 5.0).abs() < 1e-12);
        assert!((10.0 * a - 5.0).abs() < 1e-12);
    }

    #[test]
    fn conversions_and_display() {
        let f: Fraction = 0.25f64.try_into().unwrap();
        let back: f64 = f.into();
        assert_eq!(back, 0.25);
        assert_eq!(format!("{f}"), "25.0%");
        assert!(Fraction::try_from(2.0).is_err());
    }
}

//! JSON serialization with round-tripping `f64` output.
//!
//! Numbers use Rust's shortest round-trip formatting (`{}` on `f64`), which
//! guarantees `text.parse::<f64>()` recovers the exact bits that were
//! written — the property the serving tests golden-match on. Non-finite
//! numbers are a hard error: JSON has no lexeme for them, and the usual
//! fallback (emitting `null`) silently breaks round-tripping.

use std::fmt::Write as _;

use crate::{JsonError, Value};

/// Serializes `value`, compactly or with two-space indentation.
pub fn to_string(value: &Value, pretty: bool) -> Result<String, JsonError> {
    let mut out = String::new();
    write_value(&mut out, value, pretty, 0)?;
    if pretty {
        out.push('\n');
    }
    Ok(out)
}

fn write_value(
    out: &mut String,
    value: &Value,
    pretty: bool,
    indent: usize,
) -> Result<(), JsonError> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => {
            if !n.is_finite() {
                return Err(JsonError::NonFinite);
            }
            // Rust's f64 Display is the shortest decimal string that parses
            // back to the same bits; "-0" and integral values like "5" are
            // all valid JSON number lexemes.
            let _ = write!(out, "{n}");
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    newline_indent(out, indent + 1);
                }
                write_value(out, item, pretty, indent + 1)?;
            }
            if pretty {
                newline_indent(out, indent);
            }
            out.push(']');
        }
        Value::Object(members) => {
            if members.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (key, member)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    newline_indent(out, indent + 1);
                }
                write_string(out, key);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, member, pretty, indent + 1)?;
            }
            if pretty {
                newline_indent(out, indent);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000c}' => out.push_str("\\f"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{array, object, parse};

    #[test]
    fn compact_output_matches_expectations() {
        let doc = object([
            ("a", Value::Number(1.0)),
            ("b", array([Value::Null, Value::Bool(false)])),
            ("c", Value::from("x\"y")),
        ]);
        assert_eq!(
            doc.to_json_string().unwrap(),
            r#"{"a":1,"b":[null,false],"c":"x\"y"}"#
        );
        assert_eq!(Value::Object(vec![]).to_json_string().unwrap(), "{}");
        assert_eq!(Value::Array(vec![]).to_json_string().unwrap(), "[]");
    }

    #[test]
    fn pretty_output_is_indented_and_parseable() {
        let doc = object([("k", array([1.0, 2.0])), ("m", array::<f64>([]))]);
        let pretty = doc.to_json_string_pretty().unwrap();
        assert!(pretty.contains("\n  \"k\": ["));
        assert!(pretty.ends_with("}\n"));
        assert_eq!(parse(&pretty).unwrap(), doc);
    }

    #[test]
    fn strings_escape_controls_and_round_trip() {
        let original =
            Value::String("tab\t nl\n quote\" back\\ bell\u{7} nul\u{0} é→\u{1f600}".into());
        let text = original.to_json_string().unwrap();
        assert!(text.contains("\\u0007") && text.contains("\\u0000"));
        assert_eq!(parse(&text).unwrap(), original);
    }

    #[test]
    fn non_finite_numbers_are_rejected() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(
                Value::Number(bad).to_json_string().unwrap_err(),
                JsonError::NonFinite
            );
            assert_eq!(
                array([bad]).to_json_string_pretty().unwrap_err(),
                JsonError::NonFinite
            );
        }
    }

    #[test]
    fn numbers_round_trip_bit_for_bit() {
        for n in [
            0.0,
            -0.0,
            1.0,
            -1.5,
            1e-9,
            1.000000001,
            std::f64::consts::PI,
            f64::MIN_POSITIVE,
            f64::MAX,
            5e-324, // smallest subnormal
            1234567890123456.7,
        ] {
            let text = Value::Number(n).to_json_string().unwrap();
            let back = parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), n.to_bits(), "{n} -> {text}");
        }
    }
}

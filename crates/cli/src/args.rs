//! Hand-rolled argument parsing for the `greenfpga` CLI.
//!
//! The binary intentionally avoids an argument-parsing dependency: the
//! interface is a handful of subcommands with `--key value` options, which a
//! small parser covers while keeping the dependency set to the offline
//! whitelist.

use std::fmt;

use greenfpga::{
    Constraint, Domain, MonteCarloRequest, Objective, OptPlatform, SearchKnob, SweepAxis,
};

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Compare FPGA vs ASIC at one operating point, in one or more domains
    /// (`--domain dnn,crypto` compares side by side).
    Compare {
        /// Common workload arguments (the domain list overrides its
        /// domain).
        workload: WorkloadArgs,
        /// The domains to compare, in order.
        domains: Vec<Domain>,
    },
    /// Evaluate one operating point in one scenario (the `evaluate` query).
    Evaluate(WorkloadArgs),
    /// Run one raw `Query` JSON envelope from a file or stdin.
    Query {
        /// Path to the envelope (`-`/absent = stdin).
        file: Option<String>,
    },
    /// Sweep one workload axis and print the series (optionally as CSV).
    Sweep {
        /// Common workload arguments (the swept axis value is ignored).
        workload: WorkloadArgs,
        /// Axis to sweep.
        axis: SweepAxis,
        /// First value of the sweep.
        from: f64,
        /// Last value of the sweep.
        to: f64,
        /// Number of samples.
        steps: usize,
        /// Emit CSV instead of a table.
        csv: bool,
    },
    /// Report all three crossover points for a domain.
    Crossover(WorkloadArgs),
    /// Evaluate the Table 3 industry testcases (Figs. 10–11).
    Industry,
    /// One-at-a-time sensitivity (tornado) analysis.
    Tornado(WorkloadArgs),
    /// Monte-Carlo uncertainty analysis.
    MonteCarlo {
        /// Common workload arguments.
        workload: WorkloadArgs,
        /// Number of samples to draw.
        samples: usize,
        /// RNG seed (deterministic results for a fixed seed).
        seed: u64,
    },
    /// Run the HTTP/JSON estimation service (`greenfpga-serve`).
    Serve(ServeArgs),
    /// Evaluate a 2-D ratio grid and print it as a character heatmap
    /// (Fig. 8), using the parallel batch engine.
    Grid {
        /// Common workload arguments (the two swept axes override it).
        workload: WorkloadArgs,
        /// Lattice geometry: axes, ranges and resolution.
        shape: GridShape,
        /// Classify winners by adaptive frontier refinement instead of
        /// evaluating every cell.
        adaptive: bool,
        /// Stream row-blocks as they are computed instead of buffering the
        /// whole grid (bounded memory for million-point lattices).
        stream: bool,
    },
    /// Trace the crossover frontier of a 2-D lattice by adaptive quadtree
    /// refinement and print the winner map.
    Frontier {
        /// Common workload arguments (the two swept axes override it).
        workload: WorkloadArgs,
        /// Lattice geometry: axes, ranges and resolution.
        shape: GridShape,
    },
    /// List the named scenario catalog, or run one cataloged scenario by
    /// id with a scored verdict (the `catalog` / `scenario` queries).
    Scenarios {
        /// Catalog id to run; `None` lists the catalog.
        id: Option<String>,
        /// Operating-point overrides on the cataloged default.
        point: PointOverrides,
    },
    /// Replay a cataloged scenario against a year of time-varying grid
    /// carbon intensity (the `replay` query).
    Replay {
        /// Catalog id of the scenario to replay.
        id: String,
        /// Carbon-intensity region preset (`None` = the wire default).
        region: Option<String>,
        /// Interpolate linearly between hourly samples.
        interpolate: bool,
        /// Operating-point overrides on the cataloged default.
        point: PointOverrides,
        /// How many times the series is stitched end-to-end (`--years`).
        years: u64,
    },
    /// Solve an inverse query: minimize an objective (or fill a carbon
    /// budget) over a box of search knobs (the `optimize` query).
    Optimize {
        /// Catalog id supplying the scenario; `None` uses the baseline of
        /// `--domain`.
        id: Option<String>,
        /// Domain of the inline baseline scenario when no id is given.
        domain: Domain,
        /// Operating-point overrides supplying the non-searched axes.
        point: PointOverrides,
        /// What to minimize or satisfy.
        objective: Objective,
        /// The searched axes and their bounds (`--knob`, repeatable).
        search: Vec<SearchKnob>,
        /// Feasibility constraints (`--fpga-wins`, `--cap-kg`).
        constraints: Vec<Constraint>,
        /// `--tolerance`, when given.
        tolerance: Option<f64>,
        /// `--max-evals`, when given.
        max_evals: Option<u64>,
    },
    /// Print usage information.
    Help,
}

/// Geometry of a 2-D operating-point lattice shared by the `grid` and
/// `frontier` subcommands.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridShape {
    /// Axis swept along the columns.
    pub x_axis: SweepAxis,
    /// Column range start.
    pub x_from: f64,
    /// Column range end.
    pub x_to: f64,
    /// Axis swept along the rows.
    pub y_axis: SweepAxis,
    /// Row range start.
    pub y_from: f64,
    /// Row range end.
    pub y_to: f64,
    /// Lattice resolution per axis.
    pub steps: usize,
}

/// Options of the `serve` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// Bind address.
    pub addr: String,
    /// Connection worker threads (`0` = auto).
    pub workers: usize,
    /// Worker threads per batch evaluation.
    pub eval_threads: usize,
    /// Cached compiled scenarios.
    pub cache_capacity: usize,
    /// Scenario cache shards.
    pub cache_shards: usize,
    /// Hard cap on live connections (admission control beyond it).
    pub max_connections: usize,
    /// Keep-alive idle close, in seconds.
    pub idle_timeout_secs: u64,
    /// Slowloris `408` deadline, in seconds.
    pub header_timeout_secs: u64,
    /// Readiness driver for the event loop.
    pub driver: gf_server::DriverKind,
}

impl Default for ServeArgs {
    fn default() -> Self {
        ServeArgs {
            addr: "127.0.0.1:7878".to_string(),
            workers: 0,
            eval_threads: 1,
            cache_capacity: 64,
            cache_shards: 8,
            max_connections: 4096,
            idle_timeout_secs: 5,
            header_timeout_secs: 10,
            driver: gf_server::DriverKind::Auto,
        }
    }
}

/// A parsed command line: the command plus global output options.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedCommand {
    /// The subcommand to run.
    pub command: Command,
    /// Emit JSON (via the `greenfpga::api` serializers) instead of tables.
    pub json: bool,
    /// Stderr diagnostic verbosity: `0` quiet (warnings only), `1` = `-v`
    /// (phase timings), `2` = `-vv` (per-span detail).
    pub verbosity: u8,
}

/// Partial operating-point overrides for the catalog-backed subcommands:
/// each field only replaces the cataloged default when the flag was
/// actually given, so `greenfpga scenarios <id>` with no flags runs the
/// exact request `POST /v1/scenario {"scenario":{"id":...}}` sends.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PointOverrides {
    /// `--apps`, when given.
    pub apps: Option<u64>,
    /// `--lifetime`, when given.
    pub lifetime_years: Option<f64>,
    /// `--volume`, when given.
    pub volume: Option<u64>,
}

impl PointOverrides {
    /// Whether any override flag was given.
    pub fn is_empty(&self) -> bool {
        *self == PointOverrides::default()
    }
}

/// Workload arguments shared by most subcommands.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadArgs {
    /// Application domain.
    pub domain: Domain,
    /// Number of applications.
    pub apps: u64,
    /// Per-application lifetime in years.
    pub lifetime_years: f64,
    /// Per-application volume in devices.
    pub volume: u64,
}

impl Default for WorkloadArgs {
    fn default() -> Self {
        WorkloadArgs {
            domain: Domain::Dnn,
            apps: 5,
            lifetime_years: 2.0,
            volume: 1_000_000,
        }
    }
}

/// Errors produced while parsing the command line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Usage text printed by `greenfpga help` and on parse errors.
pub const USAGE: &str = "\
greenfpga — lifecycle carbon-footprint model for FPGA vs ASIC acceleration

USAGE:
  greenfpga <COMMAND> [OPTIONS]

COMMANDS:
  evaluate     Evaluate one operating point in one scenario
  compare      Compare platforms at one point (1+ domains side by side)
  sweep        Sweep apps | lifetime | volume and print the series
  crossover    Report A2F/F2A crossover points (closed-form solver)
  grid         2-D ratio heatmap over two axes (parallel batch engine)
  frontier     Adaptive crossover-frontier winner map over two axes
  industry     Evaluate the Table 3 industry testcases
  scenarios    List the named scenario catalog, or run one by id
  replay       Replay a cataloged scenario over a year of grid carbon data
  optimize     Solve an inverse query: minimize an objective or fill a
               carbon budget over 1-3 search knobs
  tornado      One-at-a-time sensitivity analysis over the Table 1 knobs
  montecarlo   Monte-Carlo uncertainty analysis over the Table 1 ranges
  query        Run a raw Query JSON envelope from --file or stdin
  serve        Run the HTTP/JSON estimation service (greenfpga-serve)
  help         Show this message

Every command is an adapter over the same engine the HTTP service runs:
the result of `greenfpga <cmd> --json` is identical to the matching
`POST /v1/<kind>` response body.

COMMON OPTIONS:
  --domain <dnn|imgproc|crypto>   application domain       (default: dnn)
                                  (compare: comma-separated list allowed)
  --apps <N>                      number of applications   (default: 5)
  --lifetime <YEARS>              application lifetime     (default: 2.0)
  --volume <UNITS>                application volume       (default: 1000000)
  --json                          emit JSON instead of tables (every
                                  command except serve and help)
  -v / -vv                        stderr diagnostics: phase timings (-v)
                                  or per-span detail (-vv); the GF_LOG
                                  env var (warn|info|debug) sets the same
                                  cutoff, and the louder of the two wins

SERVE OPTIONS:
  --addr <HOST:PORT>              bind address             (default: 127.0.0.1:7878)
  --workers <N>                   connection workers       (default: auto)
  --eval-threads <N>              threads per batch eval   (default: 1)
  --cache-capacity <N>            cached scenarios         (default: 64)
  --cache-shards <N>              scenario cache shards    (default: 8)
  --max-connections <N>           live connection cap      (default: 4096)
  --idle-timeout <SECS>           keep-alive idle close    (default: 5)
  --header-timeout <SECS>         slowloris 408 deadline   (default: 10)
  --driver <epoll|portable|auto>  readiness driver         (default: auto)

SWEEP OPTIONS:
  --axis <apps|lifetime|volume>   axis to sweep            (required)
  --from <VALUE> --to <VALUE>     sweep bounds             (required)
  --steps <N>                     number of samples        (default: 10)
  --csv                           print CSV instead of a table

MONTECARLO OPTIONS:
  --samples <N>                   number of samples        (default: 512)
  --seed <N>                      RNG seed, < 2^53         (default: 2654435769)

QUERY OPTIONS:
  --file <PATH>                   envelope path            (default: stdin)

SCENARIOS / REPLAY OPTIONS:
  <ID>                            catalog scenario id — optional for
                                  scenarios (omitted lists the catalog),
                                  required for replay
  --apps/--lifetime/--volume      override the cataloged operating point
                                  (unset flags keep the cataloged default)
  --region <NAME>                 replay: carbon-intensity preset, one of
                                  global_flat|clean_hydro|dirty_coal|solar_duck
                                  (default: global_flat)
  --interpolate                   replay: interpolate linearly between the
                                  hourly samples instead of stepwise
  --years <N>                     replay: stitch the series end-to-end N
                                  times (must fit the device lifetime)

OPTIMIZE OPTIONS:
  <ID>                            optional catalog scenario id (omitted
                                  optimizes the --domain baseline)
  --objective <GOAL>              total | operational | embodied | margin |
                                  ratio | budget               (required)
  --platform <fpga|asic>          platform the objective reads (default: fpga)
  --budget-kg <KG>                carbon budget for --objective budget
  --knob <axis:min:max[:int]>     search knob, repeatable up to 3 times
                                  (axis = apps|lifetime|volume) (required)
  --fpga-wins                     constrain the argmin to FPGA-winning points
  --cap-kg <KG>                   cap a platform total at the argmin
  --cap-platform <fpga|asic>      platform --cap-kg caps     (default: fpga)
  --tolerance <T>                 search-tier tolerance      (default: 1e-6)
  --max-evals <N>                 evaluation budget          (default: 10000)
  --apps/--lifetime/--volume      non-searched axes of the operating point

GRID / FRONTIER OPTIONS:
  --x-axis <apps|lifetime|volume> column axis              (default: apps)
  --x-from <VALUE> --x-to <VALUE> column range             (default: 1..12)
  --y-axis <apps|lifetime|volume> row axis                 (default: lifetime)
  --y-from <VALUE> --y-to <VALUE> row range                (default: 0.25..3)
  --steps <N>                     resolution per axis      (default: 24)
  --adaptive                      grid only: classify winners by adaptive
                                  frontier refinement instead of evaluating
                                  every cell
  --stream                        grid only: evaluate and print row-blocks
                                  incrementally, holding only one block in
                                  memory at a time
";

fn parse_domain(value: &str) -> Result<Domain, ParseError> {
    match value.to_ascii_lowercase().as_str() {
        "dnn" => Ok(Domain::Dnn),
        "imgproc" | "image" | "imageprocessing" => Ok(Domain::ImageProcessing),
        "crypto" | "cryptography" => Ok(Domain::Crypto),
        other => Err(ParseError(format!("unknown domain '{other}'"))),
    }
}

fn parse_axis(value: &str) -> Result<SweepAxis, ParseError> {
    match value.to_ascii_lowercase().as_str() {
        "apps" | "applications" => Ok(SweepAxis::Applications),
        "lifetime" => Ok(SweepAxis::LifetimeYears),
        "volume" => Ok(SweepAxis::VolumeUnits),
        other => Err(ParseError(format!("unknown sweep axis '{other}'"))),
    }
}

fn parse_number<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, ParseError> {
    value
        .parse::<T>()
        .map_err(|_| ParseError(format!("invalid value '{value}' for {key}")))
}

struct Options {
    pairs: Vec<(String, String)>,
    flags: Vec<String>,
}

impl Options {
    fn parse(args: &[String]) -> Result<Self, ParseError> {
        let mut pairs = Vec::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let arg = &args[i];
            if arg == "-v" || arg == "-vv" {
                flags.push(arg.trim_start_matches('-').to_string());
                i += 1;
            } else if let Some(key) = arg.strip_prefix("--") {
                if matches!(
                    key,
                    "csv" | "adaptive" | "json" | "stream" | "interpolate" | "fpga-wins"
                ) {
                    flags.push(key.to_string());
                    i += 1;
                } else if i + 1 < args.len() {
                    pairs.push((key.to_string(), args[i + 1].clone()));
                    i += 2;
                } else {
                    return Err(ParseError(format!("missing value for --{key}")));
                }
            } else {
                return Err(ParseError(format!("unexpected argument '{arg}'")));
            }
        }
        Ok(Options { pairs, flags })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Every value given for a repeatable option, in command-line order
    /// (unlike [`Options::get`], which is last-wins for scalar options).
    fn get_all(&self, key: &str) -> Vec<&str> {
        self.pairs
            .iter()
            .filter(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    fn has_flag(&self, flag: &str) -> bool {
        self.flags.iter().any(|f| f == flag)
    }

    /// The `--domain` list (`compare` accepts several, comma-separated;
    /// at most [`greenfpga::CompareRequest::MAX_SCENARIOS`], matching the
    /// wire-side limit).
    fn domains(&self) -> Result<Vec<Domain>, ParseError> {
        match self.get("domain") {
            None => Ok(vec![Domain::Dnn]),
            Some(list) => {
                let domains: Vec<Domain> = list
                    .split(',')
                    .map(|part| parse_domain(part.trim()))
                    .collect::<Result<_, _>>()?;
                if domains.is_empty() {
                    return Err(ParseError("--domain must name a domain".to_string()));
                }
                if domains.len() > greenfpga::CompareRequest::MAX_SCENARIOS {
                    return Err(ParseError(format!(
                        "--domain lists at most {} domains",
                        greenfpga::CompareRequest::MAX_SCENARIOS
                    )));
                }
                Ok(domains)
            }
        }
    }

    /// The shared workload arguments. A comma-separated `--domain` list is
    /// only meaningful for `compare` (which parses it via
    /// [`Options::domains`] and supplies the leading domain here); every
    /// other subcommand rejects a list instead of silently dropping
    /// entries.
    fn workload_with(&self, domain: Option<Domain>) -> Result<WorkloadArgs, ParseError> {
        let mut workload = WorkloadArgs::default();
        match (domain, self.get("domain")) {
            (Some(domain), _) => workload.domain = domain,
            (None, Some(v)) => workload.domain = parse_domain(v)?,
            (None, None) => {}
        }
        if let Some(v) = self.get("apps") {
            workload.apps = parse_number("--apps", v)?;
        }
        if let Some(v) = self.get("lifetime") {
            workload.lifetime_years = parse_number("--lifetime", v)?;
        }
        if let Some(v) = self.get("volume") {
            workload.volume = parse_number("--volume", v)?;
        }
        if workload.apps == 0 {
            return Err(ParseError("--apps must be at least 1".to_string()));
        }
        if workload.volume == 0 {
            return Err(ParseError("--volume must be at least 1".to_string()));
        }
        if workload.lifetime_years <= 0.0 || workload.lifetime_years.is_nan() {
            return Err(ParseError("--lifetime must be positive".to_string()));
        }
        Ok(workload)
    }

    fn workload(&self) -> Result<WorkloadArgs, ParseError> {
        self.workload_with(None)
    }

    /// The partial operating-point overrides of the catalog-backed
    /// subcommands: validated like [`Options::workload_with`], but a flag
    /// that was not given stays `None` so the cataloged default survives.
    fn point_overrides(&self) -> Result<PointOverrides, ParseError> {
        let mut point = PointOverrides::default();
        if let Some(v) = self.get("apps") {
            let apps: u64 = parse_number("--apps", v)?;
            if apps == 0 {
                return Err(ParseError("--apps must be at least 1".to_string()));
            }
            point.apps = Some(apps);
        }
        if let Some(v) = self.get("lifetime") {
            let lifetime: f64 = parse_number("--lifetime", v)?;
            if lifetime <= 0.0 || lifetime.is_nan() {
                return Err(ParseError("--lifetime must be positive".to_string()));
            }
            point.lifetime_years = Some(lifetime);
        }
        if let Some(v) = self.get("volume") {
            let volume: u64 = parse_number("--volume", v)?;
            if volume == 0 {
                return Err(ParseError("--volume must be at least 1".to_string()));
            }
            point.volume = Some(volume);
        }
        Ok(point)
    }
}

/// Parses the shared 2-D lattice geometry of the `grid` and `frontier`
/// subcommands.
fn parse_grid_shape(options: &Options) -> Result<GridShape, ParseError> {
    let axis_or = |key: &str, fallback: SweepAxis| -> Result<SweepAxis, ParseError> {
        options.get(key).map_or(Ok(fallback), parse_axis)
    };
    let number_or = |key: &str, fallback: f64| -> Result<f64, ParseError> {
        options
            .get(key)
            .map_or(Ok(fallback), |v| parse_number(key, v))
    };
    let x_axis = axis_or("x-axis", SweepAxis::Applications)?;
    let y_axis = axis_or("y-axis", SweepAxis::LifetimeYears)?;
    if x_axis == y_axis {
        return Err(ParseError("--x-axis and --y-axis must differ".to_string()));
    }
    let x_from = number_or("x-from", 1.0)?;
    let x_to = number_or("x-to", 12.0)?;
    let y_from = number_or("y-from", 0.25)?;
    let y_to = number_or("y-to", 3.0)?;
    let steps: usize = match options.get("steps") {
        Some(v) => parse_number("--steps", v)?,
        None => 24,
    };
    if steps < 2 {
        return Err(ParseError("--steps must be at least 2".to_string()));
    }
    let range_invalid = |from: f64, to: f64| to <= from || to.is_nan() || from.is_nan();
    if range_invalid(x_from, x_to) || range_invalid(y_from, y_to) {
        return Err(ParseError(
            "grid ranges must have --*-to greater than --*-from".to_string(),
        ));
    }
    Ok(GridShape {
        x_axis,
        x_from,
        x_to,
        y_axis,
        y_from,
        y_to,
        steps,
    })
}

/// Parses the options of the `serve` subcommand.
fn parse_serve(options: &Options) -> Result<ServeArgs, ParseError> {
    let mut serve = ServeArgs::default();
    if let Some(v) = options.get("addr") {
        serve.addr = v.to_string();
    }
    if let Some(v) = options.get("workers") {
        serve.workers = parse_number("--workers", v)?;
    }
    if let Some(v) = options.get("eval-threads") {
        serve.eval_threads = parse_number::<usize>("--eval-threads", v)?.max(1);
    }
    // Zero is a configuration bug for these three, not a value to clamp —
    // reject it loudly, matching the library-level cache contract.
    let positive = |flag: &'static str, n: usize| -> Result<usize, ParseError> {
        if n == 0 {
            Err(ParseError(format!("{flag} must be at least 1")))
        } else {
            Ok(n)
        }
    };
    if let Some(v) = options.get("cache-capacity") {
        serve.cache_capacity = positive(
            "--cache-capacity",
            parse_number::<usize>("--cache-capacity", v)?,
        )?;
    }
    if let Some(v) = options.get("cache-shards") {
        serve.cache_shards = positive(
            "--cache-shards",
            parse_number::<usize>("--cache-shards", v)?,
        )?;
    }
    if let Some(v) = options.get("max-connections") {
        serve.max_connections = positive(
            "--max-connections",
            parse_number::<usize>("--max-connections", v)?,
        )?;
    }
    if let Some(v) = options.get("idle-timeout") {
        serve.idle_timeout_secs = positive(
            "--idle-timeout",
            parse_number::<usize>("--idle-timeout", v)?,
        )? as u64;
    }
    if let Some(v) = options.get("header-timeout") {
        serve.header_timeout_secs = positive(
            "--header-timeout",
            parse_number::<usize>("--header-timeout", v)?,
        )? as u64;
    }
    if let Some(v) = options.get("driver") {
        serve.driver = match v {
            "epoll" => gf_server::DriverKind::Epoll,
            "portable" => gf_server::DriverKind::Portable,
            "auto" => gf_server::DriverKind::Auto,
            other => {
                return Err(ParseError(format!(
                    "--driver must be epoll|portable|auto, got '{other}'"
                )))
            }
        };
    }
    Ok(serve)
}

/// Parses `--platform fpga|asic` (default FPGA, matching the wire).
fn parse_platform(value: Option<&str>, key: &str) -> Result<OptPlatform, ParseError> {
    match value {
        None => Ok(OptPlatform::Fpga),
        Some("fpga") => Ok(OptPlatform::Fpga),
        Some("asic") => Ok(OptPlatform::Asic),
        Some(other) => Err(ParseError(format!(
            "{key} must be fpga or asic, got '{other}'"
        ))),
    }
}

/// Parses one `--knob axis:min:max[:int]` specification.
fn parse_knob(spec: &str) -> Result<SearchKnob, ParseError> {
    let parts: Vec<&str> = spec.split(':').collect();
    if parts.len() < 3 || parts.len() > 4 {
        return Err(ParseError(format!(
            "--knob expects axis:min:max[:int], got '{spec}'"
        )));
    }
    let axis = parse_axis(parts[0])?;
    let min: f64 = parse_number("--knob min", parts[1])?;
    let max: f64 = parse_number("--knob max", parts[2])?;
    let integer = match parts.get(3) {
        None => false,
        Some(&"int") | Some(&"integer") => true,
        Some(other) => {
            return Err(ParseError(format!(
                "--knob flag must be 'int', got '{other}'"
            )))
        }
    };
    Ok(SearchKnob {
        axis,
        min,
        max,
        integer,
    })
}

/// Parses the `optimize` subcommand: objective, search knobs, constraints
/// and solver controls.
fn parse_optimize(positionals: &[String], options: &Options) -> Result<Command, ParseError> {
    let id = positionals
        .first()
        .cloned()
        .or_else(|| options.get("id").map(str::to_string));
    if id.is_some() && options.get("domain").is_some() {
        return Err(ParseError(
            "--domain conflicts with a catalog id (the catalog entry names its domain)".to_string(),
        ));
    }
    let domain = match options.get("domain") {
        Some(v) => parse_domain(v)?,
        None => Domain::Dnn,
    };
    let platform = parse_platform(options.get("platform"), "--platform")?;
    let budget_kg = match options.get("budget-kg") {
        Some(v) => Some(parse_number::<f64>("--budget-kg", v)?),
        None => None,
    };
    let goal = options
        .get("objective")
        .ok_or_else(|| ParseError("--objective is required".to_string()))?;
    let objective = match goal.to_ascii_lowercase().as_str() {
        "total" | "min_total" | "min-total" => Objective::MinTotal(platform),
        "operational" | "min_operational" | "min-operational" => {
            Objective::MinOperational(platform)
        }
        "embodied" | "min_embodied" | "min-embodied" => Objective::MinEmbodied(platform),
        "margin" | "max_margin" | "max-margin" => Objective::MaxFpgaMargin,
        "ratio" | "min_ratio" | "min-ratio" => Objective::MinRatio,
        "budget" => Objective::MeetBudget {
            platform,
            budget_kg: budget_kg
                .ok_or_else(|| ParseError("--objective budget needs --budget-kg".to_string()))?,
        },
        other => {
            return Err(ParseError(format!(
                "unknown objective '{other}' (expected total, operational, embodied, \
                 margin, ratio or budget)"
            )))
        }
    };
    if budget_kg.is_some() && !matches!(objective, Objective::MeetBudget { .. }) {
        return Err(ParseError(
            "--budget-kg only applies to --objective budget".to_string(),
        ));
    }
    let search = options
        .get_all("knob")
        .into_iter()
        .map(parse_knob)
        .collect::<Result<Vec<_>, _>>()?;
    if search.is_empty() {
        return Err(ParseError(
            "at least one --knob axis:min:max[:int] is required".to_string(),
        ));
    }
    let mut constraints = Vec::new();
    if options.has_flag("fpga-wins") {
        constraints.push(Constraint::FpgaWins);
    }
    if let Some(v) = options.get("cap-kg") {
        constraints.push(Constraint::MaxTotalKg {
            platform: parse_platform(options.get("cap-platform"), "--cap-platform")?,
            limit_kg: parse_number("--cap-kg", v)?,
        });
    } else if options.get("cap-platform").is_some() {
        return Err(ParseError(
            "--cap-platform only applies together with --cap-kg".to_string(),
        ));
    }
    let tolerance = match options.get("tolerance") {
        Some(v) => Some(parse_number::<f64>("--tolerance", v)?),
        None => None,
    };
    let max_evals = match options.get("max-evals") {
        Some(v) => Some(parse_number::<u64>("--max-evals", v)?),
        None => None,
    };
    Ok(Command::Optimize {
        id,
        domain,
        point: options.point_overrides()?,
        objective,
        search,
        constraints,
        tolerance,
        max_evals,
    })
}

/// Parses a full command line (excluding the program name).
pub fn parse(args: &[String]) -> Result<ParsedCommand, ParseError> {
    let Some((command, rest)) = args.split_first() else {
        return Ok(ParsedCommand {
            command: Command::Help,
            json: false,
            verbosity: 0,
        });
    };
    // Peel the leading positional tokens (the catalog id of `scenarios`
    // and `replay`) before option parsing, which rejects bare tokens.
    let mut rest = rest;
    let mut positionals = Vec::new();
    while let Some((first, more)) = rest.split_first() {
        if first.starts_with('-') {
            break;
        }
        positionals.push(first.clone());
        rest = more;
    }
    let options = Options::parse(rest)?;
    let json = options.has_flag("json");
    let verbosity = if options.has_flag("vv") {
        2
    } else if options.has_flag("v") {
        1
    } else {
        0
    };
    let command = parse_command(command, &positionals, &options)?;
    Ok(ParsedCommand {
        command,
        json,
        verbosity,
    })
}

fn parse_command(
    command: &str,
    positionals: &[String],
    options: &Options,
) -> Result<Command, ParseError> {
    // Only the catalog-backed subcommands take a positional (the id);
    // everywhere else a bare token is a mistake, as it always was.
    if !positionals.is_empty() && !matches!(command, "scenarios" | "replay" | "optimize") {
        return Err(ParseError(format!(
            "unexpected argument '{}'",
            positionals[0]
        )));
    }
    if positionals.len() > 1 {
        return Err(ParseError(format!(
            "unexpected argument '{}'",
            positionals[1]
        )));
    }
    match command {
        "compare" => {
            let domains = options.domains()?;
            Ok(Command::Compare {
                workload: options.workload_with(Some(domains[0]))?,
                domains,
            })
        }
        "evaluate" => Ok(Command::Evaluate(options.workload()?)),
        "query" => Ok(Command::Query {
            file: options
                .get("file")
                .filter(|path| *path != "-")
                .map(str::to_string),
        }),
        "crossover" => Ok(Command::Crossover(options.workload()?)),
        "tornado" => Ok(Command::Tornado(options.workload()?)),
        "industry" => Ok(Command::Industry),
        "montecarlo" | "monte-carlo" => {
            let samples = match options.get("samples") {
                Some(v) => parse_number("--samples", v)?,
                None => 512,
            };
            if samples == 0 {
                return Err(ParseError("--samples must be at least 1".to_string()));
            }
            let seed: u64 = match options.get("seed") {
                Some(v) => parse_number("--seed", v)?,
                None => MonteCarloRequest::DEFAULT_SEED,
            };
            // The wire format carries the seed as a JSON number, which is
            // only exact below 2^53 — reject larger seeds here so the CLI
            // result always matches the equivalent HTTP request.
            if seed >= (1 << 53) {
                return Err(ParseError("--seed must be below 2^53".to_string()));
            }
            Ok(Command::MonteCarlo {
                workload: options.workload()?,
                samples,
                seed,
            })
        }
        "sweep" => {
            let axis = parse_axis(
                options
                    .get("axis")
                    .ok_or_else(|| ParseError("--axis is required".into()))?,
            )?;
            let from: f64 = parse_number(
                "--from",
                options
                    .get("from")
                    .ok_or_else(|| ParseError("--from is required".into()))?,
            )?;
            let to: f64 = parse_number(
                "--to",
                options
                    .get("to")
                    .ok_or_else(|| ParseError("--to is required".into()))?,
            )?;
            let steps: usize = match options.get("steps") {
                Some(v) => parse_number("--steps", v)?,
                None => 10,
            };
            if steps < 2 {
                return Err(ParseError("--steps must be at least 2".to_string()));
            }
            if to <= from || to.is_nan() || from.is_nan() {
                return Err(ParseError("--to must be greater than --from".to_string()));
            }
            Ok(Command::Sweep {
                workload: options.workload()?,
                axis,
                from,
                to,
                steps,
                csv: options.has_flag("csv"),
            })
        }
        "grid" | "heatmap" => Ok(Command::Grid {
            workload: options.workload()?,
            shape: parse_grid_shape(options)?,
            adaptive: options.has_flag("adaptive"),
            stream: options.has_flag("stream"),
        }),
        "frontier" => Ok(Command::Frontier {
            workload: options.workload()?,
            shape: parse_grid_shape(options)?,
        }),
        "serve" => Ok(Command::Serve(parse_serve(options)?)),
        "scenarios" => Ok(Command::Scenarios {
            id: positionals
                .first()
                .cloned()
                .or_else(|| options.get("id").map(str::to_string)),
            point: options.point_overrides()?,
        }),
        "replay" => Ok(Command::Replay {
            id: positionals
                .first()
                .cloned()
                .or_else(|| options.get("id").map(str::to_string))
                .ok_or_else(|| {
                    ParseError(
                        "replay needs a catalog scenario id (see `greenfpga scenarios`)".into(),
                    )
                })?,
            region: options.get("region").map(str::to_string),
            interpolate: options.has_flag("interpolate"),
            point: options.point_overrides()?,
            years: match options.get("years") {
                Some(v) => {
                    let years: u64 = parse_number("--years", v)?;
                    if years == 0 {
                        return Err(ParseError("--years must be at least 1".to_string()));
                    }
                    years
                }
                None => 1,
            },
        }),
        "optimize" => parse_optimize(positionals, options),
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(ParseError(format!("unknown command '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(line: &str) -> Vec<String> {
        line.split_whitespace().map(str::to_string).collect()
    }

    /// Parses a line and returns the command, ignoring output options.
    fn parse_cmd(line: &str) -> Result<Command, ParseError> {
        parse(&argv(line)).map(|parsed| parsed.command)
    }

    #[test]
    fn empty_command_line_is_help() {
        assert_eq!(parse(&[]).unwrap().command, Command::Help);
        assert_eq!(parse_cmd("help").unwrap(), Command::Help);
        assert_eq!(parse_cmd("--help").unwrap(), Command::Help);
    }

    #[test]
    fn json_flag_is_global_and_off_by_default() {
        assert!(!parse(&argv("compare")).unwrap().json);
        assert!(parse(&argv("compare --json")).unwrap().json);
        assert!(
            parse(&argv("crossover --domain crypto --json"))
                .unwrap()
                .json
        );
        assert!(parse(&argv("montecarlo --json --samples 16")).unwrap().json);
    }

    #[test]
    fn verbosity_flags_are_global() {
        assert_eq!(parse(&argv("compare")).unwrap().verbosity, 0);
        assert_eq!(parse(&argv("compare -v")).unwrap().verbosity, 1);
        assert_eq!(parse(&argv("compare -vv")).unwrap().verbosity, 2);
        // -vv wins over -v regardless of order, and the flags compose
        // with options anywhere on the line.
        assert_eq!(parse(&argv("compare -v -vv")).unwrap().verbosity, 2);
        assert_eq!(
            parse(&argv("grid -vv --domain crypto --steps 8"))
                .unwrap()
                .verbosity,
            2
        );
        assert_eq!(
            parse(&argv("montecarlo --samples 16 -v"))
                .unwrap()
                .verbosity,
            1
        );
        // Other single-dash spellings are still rejected.
        assert!(parse(&argv("compare -x")).is_err());
        assert!(parse(&argv("compare -vvv")).is_err());
    }

    #[test]
    fn serve_defaults_and_overrides() {
        assert_eq!(
            parse_cmd("serve").unwrap(),
            Command::Serve(ServeArgs::default())
        );
        let command = parse_cmd(
            "serve --addr 0.0.0.0:9999 --workers 4 --eval-threads 2 --cache-capacity 16 \
             --idle-timeout 60 --header-timeout 2 --driver portable \
             --cache-shards 2 --max-connections 32",
        )
        .unwrap();
        match command {
            Command::Serve(serve) => {
                assert_eq!(serve.addr, "0.0.0.0:9999");
                assert_eq!(serve.workers, 4);
                assert_eq!(serve.eval_threads, 2);
                assert_eq!(serve.cache_capacity, 16);
                assert_eq!(serve.cache_shards, 2);
                assert_eq!(serve.max_connections, 32);
                assert_eq!(serve.idle_timeout_secs, 60);
                assert_eq!(serve.header_timeout_secs, 2);
                assert_eq!(serve.driver, gf_server::DriverKind::Portable);
            }
            other => panic!("unexpected command {other:?}"),
        }
        assert!(parse_cmd("serve --workers x").is_err());
        assert!(parse_cmd("serve --header-timeout 0").is_err());
        assert!(parse_cmd("serve --driver kqueue").is_err());
        // Zero eval-threads clamps to serial; zero capacities/shards/caps
        // are configuration errors, not clamps.
        match parse_cmd("serve --eval-threads 0").unwrap() {
            Command::Serve(serve) => assert_eq!(serve.eval_threads, 1),
            other => panic!("unexpected command {other:?}"),
        }
        assert!(parse_cmd("serve --cache-capacity 0").is_err());
        assert!(parse_cmd("serve --cache-shards 0").is_err());
        assert!(parse_cmd("serve --max-connections 0").is_err());
    }

    #[test]
    fn compare_with_defaults_and_overrides() {
        let cmd = parse_cmd("compare").unwrap();
        assert_eq!(
            cmd,
            Command::Compare {
                workload: WorkloadArgs::default(),
                domains: vec![Domain::Dnn],
            }
        );
        let cmd =
            parse_cmd("compare --domain crypto --apps 3 --lifetime 1.5 --volume 250000").unwrap();
        match cmd {
            Command::Compare {
                workload: w,
                domains,
            } => {
                assert_eq!(w.domain, Domain::Crypto);
                assert_eq!(domains, vec![Domain::Crypto]);
                assert_eq!(w.apps, 3);
                assert!((w.lifetime_years - 1.5).abs() < 1e-12);
                assert_eq!(w.volume, 250_000);
            }
            other => panic!("unexpected command {other:?}"),
        }
    }

    #[test]
    fn compare_accepts_a_domain_list() {
        let cmd = parse_cmd("compare --domain dnn,crypto").unwrap();
        match cmd {
            Command::Compare { workload, domains } => {
                assert_eq!(domains, vec![Domain::Dnn, Domain::Crypto]);
                assert_eq!(workload.domain, Domain::Dnn, "workload takes the first");
            }
            other => panic!("unexpected command {other:?}"),
        }
        assert!(parse_cmd("compare --domain dnn,gpu").is_err());
        // A list longer than the wire limit is rejected at parse time.
        let many = vec!["dnn"; greenfpga::CompareRequest::MAX_SCENARIOS + 1].join(",");
        assert!(parse_cmd(&format!("compare --domain {many}")).is_err());
        // Other commands reject a list instead of silently dropping entries.
        assert!(parse_cmd("evaluate --domain dnn,crypto").is_err());
        assert!(parse_cmd("sweep --domain dnn,crypto --axis apps --from 1 --to 8").is_err());
        let cmd = parse_cmd("evaluate --domain crypto").unwrap();
        assert!(matches!(
            cmd,
            Command::Evaluate(WorkloadArgs {
                domain: Domain::Crypto,
                ..
            })
        ));
    }

    #[test]
    fn query_takes_an_optional_file() {
        assert_eq!(parse_cmd("query").unwrap(), Command::Query { file: None });
        assert_eq!(
            parse_cmd("query --file q.json").unwrap(),
            Command::Query {
                file: Some("q.json".to_string())
            }
        );
        assert_eq!(
            parse_cmd("query --file -").unwrap(),
            Command::Query { file: None },
            "'-' means stdin"
        );
    }

    #[test]
    fn domain_aliases_are_accepted() {
        for (alias, expected) in [
            ("dnn", Domain::Dnn),
            ("imgproc", Domain::ImageProcessing),
            ("ImageProcessing", Domain::ImageProcessing),
            ("CRYPTO", Domain::Crypto),
        ] {
            let cmd = parse(&argv(&format!("evaluate --domain {alias}")))
                .unwrap()
                .command;
            match cmd {
                Command::Evaluate(w) => assert_eq!(w.domain, expected, "{alias}"),
                other => panic!("unexpected command {other:?}"),
            }
        }
        assert!(parse_cmd("compare --domain gpu").is_err());
    }

    #[test]
    fn sweep_requires_axis_and_bounds() {
        assert!(parse_cmd("sweep").is_err());
        assert!(parse_cmd("sweep --axis apps").is_err());
        assert!(parse_cmd("sweep --axis apps --from 1 --to 0.5").is_err());
        assert!(parse_cmd("sweep --axis apps --from 1 --to 8 --steps 1").is_err());
        let cmd = parse_cmd("sweep --axis lifetime --from 0.2 --to 2.5 --steps 6 --csv").unwrap();
        match cmd {
            Command::Sweep {
                axis,
                from,
                to,
                steps,
                csv,
                ..
            } => {
                assert_eq!(axis, SweepAxis::LifetimeYears);
                assert!((from - 0.2).abs() < 1e-12 && (to - 2.5).abs() < 1e-12);
                assert_eq!(steps, 6);
                assert!(csv);
            }
            other => panic!("unexpected command {other:?}"),
        }
    }

    #[test]
    fn montecarlo_sample_parsing() {
        let cmd = parse_cmd("montecarlo --domain dnn --samples 128").unwrap();
        match cmd {
            Command::MonteCarlo {
                samples,
                workload,
                seed,
            } => {
                assert_eq!(samples, 128);
                assert_eq!(workload.domain, Domain::Dnn);
                assert_eq!(seed, MonteCarloRequest::DEFAULT_SEED);
            }
            other => panic!("unexpected command {other:?}"),
        }
        let cmd = parse_cmd("montecarlo --samples 16 --seed 42").unwrap();
        assert!(matches!(cmd, Command::MonteCarlo { seed: 42, .. }));
        assert!(parse_cmd("montecarlo --samples 0").is_err());
        assert!(parse_cmd("montecarlo --samples abc").is_err());
        assert!(parse_cmd("montecarlo --seed x").is_err());
        // Seeds at or above 2^53 would not survive the JSON wire format.
        assert!(parse_cmd("montecarlo --seed 9007199254740992").is_err());
        assert!(parse_cmd("montecarlo --seed 9007199254740991").is_ok());
    }

    #[test]
    fn invalid_inputs_are_rejected_with_messages() {
        assert!(parse_cmd("frobnicate").is_err());
        assert!(parse_cmd("compare --apps 0").is_err());
        assert!(parse_cmd("compare --volume 0").is_err());
        assert!(parse_cmd("compare --lifetime -1").is_err());
        assert!(parse_cmd("compare --apps").is_err());
        assert!(parse_cmd("compare apps 5").is_err());
        let err = parse_cmd("compare --apps x").unwrap_err();
        assert!(err.to_string().contains("--apps"));
    }

    #[test]
    fn last_value_wins_for_repeated_options() {
        let cmd = parse_cmd("compare --apps 3 --apps 7").unwrap();
        match cmd {
            Command::Compare { workload: w, .. } => assert_eq!(w.apps, 7),
            other => panic!("unexpected command {other:?}"),
        }
    }

    #[test]
    fn grid_defaults_and_validation() {
        let cmd = parse_cmd("grid --domain imgproc --steps 8").unwrap();
        match cmd {
            Command::Grid {
                workload,
                shape,
                adaptive,
                stream,
            } => {
                assert_eq!(workload.domain, Domain::ImageProcessing);
                assert_eq!(shape.x_axis, SweepAxis::Applications);
                assert_eq!(shape.y_axis, SweepAxis::LifetimeYears);
                assert_eq!(shape.steps, 8);
                assert!(!adaptive);
                assert!(!stream);
            }
            other => panic!("unexpected command {other:?}"),
        }
        assert!(parse_cmd("grid --x-axis apps --y-axis apps").is_err());
        assert!(parse_cmd("grid --steps 1").is_err());
        assert!(parse_cmd("grid --x-from 5 --x-to 2").is_err());
        let cmd = parse_cmd("heatmap --x-axis volume --x-from 1000 --x-to 1000000 --y-axis apps --y-from 1 --y-to 10")
        .unwrap();
        assert!(matches!(
            cmd,
            Command::Grid {
                shape: GridShape {
                    x_axis: SweepAxis::VolumeUnits,
                    y_axis: SweepAxis::Applications,
                    ..
                },
                ..
            }
        ));
    }

    #[test]
    fn grid_adaptive_flag_is_parsed() {
        let cmd = parse_cmd("grid --domain dnn --steps 16 --adaptive").unwrap();
        assert!(matches!(cmd, Command::Grid { adaptive: true, .. }));
    }

    #[test]
    fn grid_stream_flag_is_parsed() {
        let cmd = parse_cmd("grid --domain dnn --steps 16 --stream").unwrap();
        assert!(matches!(cmd, Command::Grid { stream: true, .. }));
    }

    #[test]
    fn frontier_shares_grid_geometry() {
        let cmd = parse_cmd("frontier --domain dnn --x-axis apps --x-from 1 --x-to 32 --y-axis lifetime --y-from 0.1 --y-to 3 --steps 64")
        .unwrap();
        match cmd {
            Command::Frontier { workload, shape } => {
                assert_eq!(workload.domain, Domain::Dnn);
                assert_eq!(shape.x_axis, SweepAxis::Applications);
                assert_eq!(shape.y_axis, SweepAxis::LifetimeYears);
                assert_eq!(shape.steps, 64);
                assert!((shape.x_to - 32.0).abs() < 1e-12);
            }
            other => panic!("unexpected command {other:?}"),
        }
        assert!(parse_cmd("frontier --x-axis apps --y-axis apps").is_err());
        assert!(parse_cmd("frontier --steps 1").is_err());
        assert!(parse_cmd("frontier --y-from 3 --y-to 1").is_err());
    }

    #[test]
    fn usage_mentions_every_command() {
        for command in [
            "evaluate",
            "compare",
            "sweep",
            "crossover",
            "grid",
            "frontier",
            "industry",
            "tornado",
            "montecarlo",
            "query",
            "serve",
            "scenarios",
            "replay",
            "optimize",
        ] {
            assert!(USAGE.contains(command), "usage is missing {command}");
        }
    }

    #[test]
    fn scenarios_lists_or_runs_by_id() {
        assert_eq!(
            parse_cmd("scenarios").unwrap(),
            Command::Scenarios {
                id: None,
                point: PointOverrides::default(),
            }
        );
        let cmd = parse_cmd("scenarios dnn_baseline --json").unwrap();
        assert_eq!(
            cmd,
            Command::Scenarios {
                id: Some("dnn_baseline".to_string()),
                point: PointOverrides::default(),
            }
        );
        // `--id` spells the same thing without a positional.
        assert_eq!(parse_cmd("scenarios --id dnn_baseline").unwrap(), cmd);
        // Point overrides stay partial: unset flags keep the cataloged value.
        let cmd = parse_cmd("scenarios dnn_baseline --apps 9").unwrap();
        match cmd {
            Command::Scenarios { point, .. } => {
                assert_eq!(point.apps, Some(9));
                assert_eq!(point.lifetime_years, None);
                assert_eq!(point.volume, None);
                assert!(!point.is_empty());
            }
            other => panic!("unexpected command {other:?}"),
        }
        assert!(parse_cmd("scenarios dnn_baseline extra").is_err());
        assert!(parse_cmd("scenarios dnn_baseline --apps 0").is_err());
        assert!(parse_cmd("scenarios dnn_baseline --lifetime -2").is_err());
    }

    #[test]
    fn replay_requires_an_id_and_parses_its_options() {
        assert!(parse_cmd("replay").is_err());
        let cmd = parse_cmd("replay crypto_fleet_1m_5y").unwrap();
        assert_eq!(
            cmd,
            Command::Replay {
                id: "crypto_fleet_1m_5y".to_string(),
                region: None,
                interpolate: false,
                point: PointOverrides::default(),
                years: 1,
            }
        );
        let cmd = parse_cmd("replay dnn_baseline --region solar_duck --interpolate --volume 5000")
            .unwrap();
        match cmd {
            Command::Replay {
                id,
                region,
                interpolate,
                point,
                years,
            } => {
                assert_eq!(id, "dnn_baseline");
                assert_eq!(region.as_deref(), Some("solar_duck"));
                assert!(interpolate);
                assert_eq!(point.volume, Some(5000));
                assert_eq!(years, 1);
            }
            other => panic!("unexpected command {other:?}"),
        }
        let cmd = parse_cmd("replay crypto_fleet_1m_5y --years 5").unwrap();
        assert!(matches!(cmd, Command::Replay { years: 5, .. }));
        assert!(parse_cmd("replay crypto_fleet_1m_5y --years 0").is_err());
        // Positionals stay rejected everywhere else.
        assert!(parse_cmd("evaluate dnn_baseline").is_err());
    }

    #[test]
    fn optimize_parses_objective_knobs_and_constraints() {
        let cmd =
            parse_cmd("optimize --objective total --knob apps:1:12 --knob lifetime:0.5:4").unwrap();
        match cmd {
            Command::Optimize {
                id,
                domain,
                objective,
                search,
                constraints,
                tolerance,
                max_evals,
                ..
            } => {
                assert_eq!(id, None);
                assert_eq!(domain, Domain::Dnn);
                assert_eq!(objective, Objective::MinTotal(OptPlatform::Fpga));
                assert_eq!(search.len(), 2);
                assert_eq!(search[0].axis, SweepAxis::Applications);
                assert!((search[0].min - 1.0).abs() < 1e-12);
                assert!((search[0].max - 12.0).abs() < 1e-12);
                assert!(!search[0].integer);
                assert_eq!(search[1].axis, SweepAxis::LifetimeYears);
                assert!(constraints.is_empty());
                assert_eq!(tolerance, None);
                assert_eq!(max_evals, None);
            }
            other => panic!("unexpected command {other:?}"),
        }

        let cmd = parse_cmd(
            "optimize dnn_baseline --objective budget --platform asic --budget-kg 5e6 \
             --knob volume:1000:2000000:int --tolerance 1e-4 --max-evals 500",
        )
        .unwrap();
        match cmd {
            Command::Optimize {
                id,
                objective,
                search,
                tolerance,
                max_evals,
                ..
            } => {
                assert_eq!(id.as_deref(), Some("dnn_baseline"));
                assert_eq!(
                    objective,
                    Objective::MeetBudget {
                        platform: OptPlatform::Asic,
                        budget_kg: 5e6,
                    }
                );
                assert!(search[0].integer);
                assert_eq!(tolerance, Some(1e-4));
                assert_eq!(max_evals, Some(500));
            }
            other => panic!("unexpected command {other:?}"),
        }

        let cmd = parse_cmd(
            "optimize --objective ratio --knob apps:1:20 --fpga-wins \
             --cap-kg 1e9 --cap-platform asic",
        )
        .unwrap();
        match cmd {
            Command::Optimize { constraints, .. } => {
                assert_eq!(constraints.len(), 2);
                assert_eq!(constraints[0], Constraint::FpgaWins);
                assert_eq!(
                    constraints[1],
                    Constraint::MaxTotalKg {
                        platform: OptPlatform::Asic,
                        limit_kg: 1e9,
                    }
                );
            }
            other => panic!("unexpected command {other:?}"),
        }

        // Required pieces and conflicts are rejected loudly.
        assert!(parse_cmd("optimize --knob apps:1:12").is_err());
        assert!(parse_cmd("optimize --objective total").is_err());
        assert!(parse_cmd("optimize --objective budget --knob apps:1:12").is_err());
        assert!(parse_cmd("optimize --objective total --budget-kg 5 --knob apps:1:12").is_err());
        assert!(parse_cmd("optimize --objective total --knob apps:1").is_err());
        assert!(parse_cmd("optimize --objective total --knob watts:1:2").is_err());
        assert!(parse_cmd("optimize --objective glory --knob apps:1:12").is_err());
        assert!(parse_cmd("optimize --objective total --knob apps:1:12 --platform gpu").is_err());
        assert!(
            parse_cmd("optimize --objective total --knob apps:1:12 --cap-platform asic").is_err()
        );
        assert!(parse_cmd(
            "optimize dnn_baseline --domain crypto --objective total --knob apps:1:12"
        )
        .is_err());
    }
}

//! A minimal HTTP/1.1 message layer over blocking byte streams.
//!
//! Just enough protocol for a JSON API behind a trusted load balancer (or a
//! benchmark harness): request-line + header parsing, `Content-Length`
//! bodies, keep-alive negotiation and `Expect: 100-continue`. No chunked
//! transfer encoding, no TLS, no pipelining guarantees beyond
//! read-one-write-one. Everything is bounded: header block and body sizes
//! are capped so one connection cannot balloon server memory.

use std::io::{BufRead, Write};

/// Bounds applied while reading one request.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ReadLimits {
    /// Maximum bytes of request line + headers.
    pub max_head_bytes: usize,
    /// Maximum bytes of body (from `Content-Length`).
    pub max_body_bytes: usize,
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Request {
    /// Uppercase method token (`GET`, `POST`, ...).
    pub method: String,
    /// Request target as sent (path, no normalization).
    pub path: String,
    /// Body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// `false` when the client asked for `Connection: close` (or spoke
    /// HTTP/1.0 without `keep-alive`).
    pub keep_alive: bool,
}

/// Why reading a request stopped.
#[derive(Debug)]
pub(crate) enum ReadOutcome {
    /// A complete request was parsed.
    Request(Request),
    /// The peer closed the connection cleanly between requests.
    Closed,
    /// The peer violated the protocol or a limit; the connection must be
    /// answered with `status` (if writable) and dropped.
    Bad {
        /// Response status to send before closing.
        status: u16,
        /// Human-readable reason, returned in the JSON error body.
        message: String,
    },
    /// An I/O error (including read timeouts) ended the connection.
    Io(std::io::Error),
}

/// Reads one request. `writer` is needed for `Expect: 100-continue`
/// interim responses.
pub(crate) fn read_request<R: BufRead, W: Write>(
    reader: &mut R,
    writer: &mut W,
    limits: ReadLimits,
) -> ReadOutcome {
    let mut head = Vec::new();
    // Request line + headers, terminated by an empty line.
    let mut line_start = 0;
    let mut leading_blanks = 0;
    loop {
        // Cap the read *inside* the line scan: read_until would otherwise
        // buffer a newline-free byte stream without bound before the size
        // check ever ran.
        let remaining = (limits.max_head_bytes + 1).saturating_sub(head.len()) as u64;
        let mut limited = std::io::Read::take(&mut *reader, remaining);
        let read = limited.read_until(b'\n', &mut head);
        match read {
            Err(e) => return ReadOutcome::Io(e),
            Ok(_) if head.len() > limits.max_head_bytes => {
                return ReadOutcome::Bad {
                    status: 431,
                    message: "request head too large".into(),
                };
            }
            Ok(0) => {
                return if head.is_empty() {
                    ReadOutcome::Closed
                } else {
                    ReadOutcome::Bad {
                        status: 400,
                        message: "connection closed mid-request".into(),
                    }
                };
            }
            Ok(_) => {}
        }
        let line_end = head.len();
        let line = trim_crlf(&head[line_start..line_end]);
        if line_start > 0 && line.is_empty() {
            break; // end of headers
        }
        if line_start == 0 && line.is_empty() {
            // Tolerate a stray CRLF before the request line (RFC 7230 §3.5)
            // — but only a couple, so a blank-line flood cannot spin here.
            leading_blanks += 1;
            if leading_blanks > 4 {
                return ReadOutcome::Bad {
                    status: 400,
                    message: "expected a request line".into(),
                };
            }
            head.clear();
            continue;
        }
        line_start = line_end;
    }

    let head_text = match std::str::from_utf8(&head) {
        Ok(text) => text,
        Err(_) => {
            return ReadOutcome::Bad {
                status: 400,
                message: "request head is not UTF-8".into(),
            };
        }
    };
    // `str::lines` splits on `\n` and strips a trailing `\r`, matching the
    // framing loop above, which accepts bare-LF line endings too — parsing
    // must see the same lines the framing saw or the connection desyncs.
    let mut lines = head_text.lines().map(str::trim_end);
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return ReadOutcome::Bad {
            status: 400,
            message: format!("malformed request line '{request_line}'"),
        };
    };
    if !matches!(version, "HTTP/1.1" | "HTTP/1.0") {
        return ReadOutcome::Bad {
            status: 505,
            message: format!("unsupported protocol '{version}'"),
        };
    }

    let mut content_length: Option<usize> = None;
    let mut keep_alive = version == "HTTP/1.1";
    let mut expects_continue = false;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue; // the blank terminator (and any malformed header)
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => match value.parse::<usize>() {
                // Conflicting duplicates are a request-smuggling vector
                // (RFC 9112 §6.3): with last-write-wins, this server and an
                // intermediary that picks the first value would frame the
                // stream differently. Repeating the *same* value is legal.
                Ok(n) if content_length.is_some_and(|previous| previous != n) => {
                    return ReadOutcome::Bad {
                        status: 400,
                        message: "conflicting Content-Length headers".into(),
                    };
                }
                Ok(n) => content_length = Some(n),
                Err(_) => {
                    return ReadOutcome::Bad {
                        status: 400,
                        message: "invalid Content-Length".into(),
                    };
                }
            },
            "connection" => {
                let value = value.to_ascii_lowercase();
                if value.contains("close") {
                    keep_alive = false;
                } else if value.contains("keep-alive") {
                    keep_alive = true;
                }
            }
            "expect" => {
                expects_continue = value.eq_ignore_ascii_case("100-continue");
            }
            "transfer-encoding" => {
                return ReadOutcome::Bad {
                    status: 501,
                    message: "transfer encodings are not supported".into(),
                };
            }
            _ => {}
        }
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > limits.max_body_bytes {
        return ReadOutcome::Bad {
            status: 413,
            message: format!("body exceeds {} bytes", limits.max_body_bytes),
        };
    }
    if expects_continue && content_length > 0 {
        if let Err(e) = writer.write_all(b"HTTP/1.1 100 Continue\r\n\r\n") {
            return ReadOutcome::Io(e);
        }
        let _ = writer.flush();
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        if let Err(e) = reader.read_exact(&mut body) {
            return ReadOutcome::Io(e);
        }
    }
    ReadOutcome::Request(Request {
        method: method.to_string(),
        path: path.to_string(),
        body,
        keep_alive,
    })
}

fn trim_crlf(line: &[u8]) -> &[u8] {
    let line = line.strip_suffix(b"\n").unwrap_or(line);
    line.strip_suffix(b"\r").unwrap_or(line)
}

/// Writes one `application/json` response.
pub(crate) fn write_response<W: Write>(
    writer: &mut W,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    write_response_with(writer, status, body, keep_alive, None)
}

/// [`write_response`] with an optional `Retry-After` header (seconds) —
/// the admission-control `503` tells clients when backing off is worth it.
pub(crate) fn write_response_with<W: Write>(
    writer: &mut W,
    status: u16,
    body: &str,
    keep_alive: bool,
    retry_after_secs: Option<u32>,
) -> std::io::Result<()> {
    let reason = reason_phrase(status);
    let connection = if keep_alive { "keep-alive" } else { "close" };
    write!(
        writer,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {connection}\r\n",
        body.len()
    )?;
    if let Some(seconds) = retry_after_secs {
        write!(writer, "Retry-After: {seconds}\r\n")?;
    }
    writer.write_all(b"\r\n")?;
    writer.write_all(body.as_bytes())?;
    writer.flush()
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Response",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    const LIMITS: ReadLimits = ReadLimits {
        max_head_bytes: 1024,
        max_body_bytes: 256,
    };

    fn read(input: &str) -> ReadOutcome {
        let mut reader = Cursor::new(input.as_bytes().to_vec());
        let mut writer = Vec::new();
        read_request(&mut reader, &mut writer, LIMITS)
    }

    #[test]
    fn parses_a_post_with_body() {
        let outcome =
            read("POST /v1/evaluate HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody");
        let ReadOutcome::Request(request) = outcome else {
            panic!("expected a request, got {outcome:?}");
        };
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/v1/evaluate");
        assert_eq!(request.body, b"body");
        assert!(request.keep_alive);
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        let ReadOutcome::Request(request) =
            read("GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
        else {
            panic!()
        };
        assert!(!request.keep_alive);
        let ReadOutcome::Request(request) = read("GET /healthz HTTP/1.0\r\n\r\n") else {
            panic!()
        };
        assert!(!request.keep_alive);
        let ReadOutcome::Request(request) =
            read("GET /healthz HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
        else {
            panic!()
        };
        assert!(request.keep_alive);
    }

    #[test]
    fn clean_eof_is_closed_and_partial_is_bad() {
        assert!(matches!(read(""), ReadOutcome::Closed));
        assert!(matches!(
            read("GET /healthz HTT"),
            ReadOutcome::Bad { status: 400, .. }
        ));
    }

    #[test]
    fn protocol_violations_get_the_right_status() {
        assert!(matches!(
            read("GARBAGE\r\n\r\n"),
            ReadOutcome::Bad { status: 400, .. }
        ));
        assert!(matches!(
            read("GET / SPDY/3\r\n\r\n"),
            ReadOutcome::Bad { status: 505, .. }
        ));
        assert!(matches!(
            read("POST / HTTP/1.1\r\nContent-Length: 999\r\n\r\n"),
            ReadOutcome::Bad { status: 413, .. }
        ));
        assert!(matches!(
            read("POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            ReadOutcome::Bad { status: 400, .. }
        ));
        assert!(matches!(
            read("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            ReadOutcome::Bad { status: 501, .. }
        ));
        let long_header = format!("GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "a".repeat(2048));
        assert!(matches!(
            read(&long_header),
            ReadOutcome::Bad { status: 431, .. }
        ));
    }

    #[test]
    fn conflicting_content_lengths_are_rejected() {
        // The smuggling shape: two headers that frame the body differently.
        assert!(matches!(
            read("POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 11\r\n\r\nbody"),
            ReadOutcome::Bad { status: 400, .. }
        ));
        // Order does not matter.
        assert!(matches!(
            read("POST / HTTP/1.1\r\nContent-Length: 11\r\nContent-Length: 4\r\n\r\nbody"),
            ReadOutcome::Bad { status: 400, .. }
        ));
        // Identical duplicates are legal (RFC 9112 §6.3) and frame once.
        let ReadOutcome::Request(request) =
            read("POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nbody")
        else {
            panic!("identical duplicate Content-Length must parse");
        };
        assert_eq!(request.body, b"body");
    }

    #[test]
    fn retry_after_header_is_emitted_on_demand() {
        let mut out = Vec::new();
        write_response_with(&mut out, 503, "{}", false, Some(2)).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
        let mut out = Vec::new();
        write_response_with(&mut out, 200, "{}", true, None).unwrap();
        assert!(!String::from_utf8(out).unwrap().contains("Retry-After"));
    }

    #[test]
    fn expect_continue_gets_an_interim_response() {
        let mut reader = Cursor::new(
            b"POST / HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 2\r\n\r\nhi".to_vec(),
        );
        let mut writer = Vec::new();
        let outcome = read_request(&mut reader, &mut writer, LIMITS);
        assert!(matches!(outcome, ReadOutcome::Request(_)));
        assert!(String::from_utf8(writer)
            .unwrap()
            .starts_with("HTTP/1.1 100"));
    }

    #[test]
    fn bare_lf_requests_parse_their_headers() {
        // The framing loop accepts bare-LF endings, so header parsing must
        // too — otherwise Content-Length is dropped and the body bytes
        // desync the connection.
        let outcome = read("POST /v1/evaluate HTTP/1.1\nContent-Length: 4\n\nbody");
        let ReadOutcome::Request(request) = outcome else {
            panic!("expected a request, got {outcome:?}");
        };
        assert_eq!(request.body, b"body");
    }

    #[test]
    fn newline_free_floods_are_capped_not_buffered() {
        // A head with no '\n' at all must hit the size limit, not grow the
        // buffer until the peer relents.
        let flood = "G".repeat(64 * 1024);
        assert!(matches!(read(&flood), ReadOutcome::Bad { status: 431, .. }));
    }

    #[test]
    fn leading_crlf_is_tolerated() {
        let ReadOutcome::Request(request) = read("\r\nGET /healthz HTTP/1.1\r\n\r\n") else {
            panic!()
        };
        assert_eq!(request.path, "/healthz");
    }

    #[test]
    fn responses_have_framing_headers() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "{\"ok\":true}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
        let mut out = Vec::new();
        write_response(&mut out, 404, "{}", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("404 Not Found"));
        assert!(text.contains("Connection: close"));
    }
}

//! Monte-Carlo uncertainty analysis: how robust are the paper's conclusions
//! to the Table 1 input ranges?
//!
//! Every knob is sampled uniformly from its published (or calibrated) range
//! and the FPGA:ASIC ratio distribution is reported per domain at the
//! paper's operating point (5 applications, 2-year lifetimes, 1M units).

use gf_bench::paper_estimator;
use greenfpga::{render_table, Domain, MonteCarlo, OperatingPoint};

fn main() -> Result<(), greenfpga::GreenFpgaError> {
    let estimator = paper_estimator();
    let point = OperatingPoint::paper_default();
    let study = MonteCarlo::new(512);

    let mut rows = Vec::new();
    for domain in Domain::ALL {
        let report = study.run(estimator.params(), domain, point)?;
        rows.push(vec![
            domain.to_string(),
            format!("{:.2}", report.quantile(0.05)),
            format!("{:.2}", report.median()),
            format!("{:.2}", report.quantile(0.95)),
            format!("{:.2}", report.mean()),
            format!("{:.0}%", report.fpga_win_probability() * 100.0),
            report.majority_winner().to_string(),
        ]);
    }

    println!(
        "Monte-Carlo study over the Table 1 ranges ({} samples, N_app=5, T=2 y, N_vol=1e6):",
        512
    );
    println!(
        "{}",
        render_table(
            &[
                "Domain",
                "ratio p5",
                "ratio p50",
                "ratio p95",
                "ratio mean",
                "P(FPGA greener)",
                "Majority winner"
            ],
            &rows
        )
    );

    println!("Reading: ratios below 1.0 mean the FPGA platform has the lower total CFP.");
    Ok(())
}

//! One-dimensional parameter sweeps and two-dimensional ratio grids.
//!
//! These drive the paper's Figures 4–8: sweeping the number of applications,
//! the application lifetime and the application volume, and computing the
//! FPGA:ASIC ratio over pairwise grids for the heatmaps.

use serde::{Deserialize, Serialize};

use crate::comparison::crossovers_from_samples;
use crate::{CfpBreakdown, Crossover, Domain, Estimator, GreenFpgaError, ResultBuffer};

/// The workload parameter varied by a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum SweepAxis {
    /// Number of applications `N_app`.
    Applications,
    /// Per-application lifetime `T_i` in years.
    LifetimeYears,
    /// Per-application volume `N_vol` in devices.
    VolumeUnits,
}

impl SweepAxis {
    /// Human-readable axis label (matches the paper's figure axes).
    pub fn label(self) -> &'static str {
        match self {
            SweepAxis::Applications => "Num Apps",
            SweepAxis::LifetimeYears => "App Lifetime (years)",
            SweepAxis::VolumeUnits => "App Volume (units)",
        }
    }
}

/// A fixed operating point; sweeps override one (or two) of its fields.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Number of applications.
    pub applications: u64,
    /// Per-application lifetime in years.
    pub lifetime_years: f64,
    /// Per-application volume in devices.
    pub volume: u64,
}

impl OperatingPoint {
    /// The paper's default operating point: 5 applications × 2 years × 1M
    /// devices.
    pub fn paper_default() -> Self {
        OperatingPoint {
            applications: 5,
            lifetime_years: 2.0,
            volume: 1_000_000,
        }
    }

    pub(crate) fn with_axis(mut self, axis: SweepAxis, value: f64) -> Self {
        match axis {
            SweepAxis::Applications => self.applications = value.round().max(1.0) as u64,
            SweepAxis::LifetimeYears => self.lifetime_years = value,
            SweepAxis::VolumeUnits => self.volume = value.round().max(1.0) as u64,
        }
        self
    }
}

impl Default for OperatingPoint {
    fn default() -> Self {
        OperatingPoint::paper_default()
    }
}

/// One sample of a 1-D sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Value of the swept parameter.
    pub x: f64,
    /// FPGA-platform footprint at this point.
    pub fpga: CfpBreakdown,
    /// ASIC-platform footprint at this point.
    pub asic: CfpBreakdown,
}

impl SweepPoint {
    /// FPGA total divided by ASIC total at this point.
    pub fn ratio(&self) -> f64 {
        self.fpga
            .total()
            .ratio_to(self.asic.total())
            .unwrap_or(f64::INFINITY)
    }
}

/// The result of sweeping one workload parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSeries {
    /// Domain the sweep was evaluated in.
    pub domain: Domain,
    /// Which parameter was swept.
    pub axis: SweepAxis,
    /// Samples in ascending order of the swept parameter.
    pub points: Vec<SweepPoint>,
}

impl SweepSeries {
    /// All crossover points found between consecutive samples (linear
    /// interpolation).
    pub fn crossovers(&self) -> Vec<Crossover> {
        let samples: Vec<(f64, f64, f64)> = self
            .points
            .iter()
            .map(|p| (p.x, p.fpga.total().as_kg(), p.asic.total().as_kg()))
            .collect();
        crossovers_from_samples(&samples)
    }

    /// The sample closest to a given x value. Returns `None` for an empty
    /// series or a `NaN` probe instead of relying on caller invariants.
    pub fn nearest(&self, x: f64) -> Option<&SweepPoint> {
        if x.is_nan() {
            return None;
        }
        self.points
            .iter()
            .min_by(|a, b| (a.x - x).abs().total_cmp(&(b.x - x).abs()))
    }
}

/// A 2-D grid of FPGA:ASIC total-CFP ratios (the paper's Fig. 8 heatmaps).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridSweep {
    /// Domain the grid was evaluated in.
    pub domain: Domain,
    /// Axis swept along the columns.
    pub x_axis: SweepAxis,
    /// Column coordinate values.
    pub x_values: Vec<f64>,
    /// Axis swept along the rows.
    pub y_axis: SweepAxis,
    /// Row coordinate values.
    pub y_values: Vec<f64>,
    /// `ratios[row][col]` = FPGA total / ASIC total at
    /// `(x_values[col], y_values[row])`.
    pub ratios: Vec<Vec<f64>>,
}

impl GridSweep {
    /// Number of grid cells.
    pub fn len(&self) -> usize {
        self.x_values.len() * self.y_values.len()
    }

    /// `true` when the grid has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fraction of grid cells where the FPGA has the lower footprint.
    ///
    /// Counts over the cells actually present in `ratios` (not the
    /// coordinate lists), so a hand-built grid whose `ratios` disagree with
    /// its axes — or an entirely empty one — reports a well-defined value
    /// (`0.0` when there are no cells) instead of a skewed quotient.
    pub fn fpga_winning_fraction(&self) -> f64 {
        let total: usize = self.ratios.iter().map(Vec::len).sum();
        if total == 0 {
            return 0.0;
        }
        let wins = self.ratios.iter().flatten().filter(|&&r| r < 1.0).count();
        wins as f64 / total as f64
    }
}

impl Estimator {
    /// Sweeps one workload parameter over the given values, holding the
    /// other two at `base`.
    ///
    /// The domain is compiled once and the values stream through the SoA
    /// batch kernel ([`crate::CompiledScenario::evaluate_into`]), in
    /// parallel for large sweeps.
    ///
    /// # Errors
    ///
    /// Returns [`GreenFpgaError::InvalidRange`] for an empty value list and
    /// propagates model errors.
    pub fn sweep(
        &self,
        domain: Domain,
        axis: SweepAxis,
        values: &[f64],
        base: OperatingPoint,
    ) -> Result<SweepSeries, GreenFpgaError> {
        self.compile(domain)?.sweep_series(axis, values, base, 0)
    }

    /// Sweeps the number of applications (Fig. 4).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Estimator::sweep`].
    pub fn sweep_applications(
        &self,
        domain: Domain,
        counts: &[u64],
        base: OperatingPoint,
    ) -> Result<SweepSeries, GreenFpgaError> {
        let values: Vec<f64> = counts.iter().map(|&n| n as f64).collect();
        self.sweep(domain, SweepAxis::Applications, &values, base)
    }

    /// Sweeps the per-application lifetime (Fig. 5).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Estimator::sweep`].
    pub fn sweep_lifetime(
        &self,
        domain: Domain,
        lifetimes_years: &[f64],
        base: OperatingPoint,
    ) -> Result<SweepSeries, GreenFpgaError> {
        self.sweep(domain, SweepAxis::LifetimeYears, lifetimes_years, base)
    }

    /// Sweeps the per-application volume (Fig. 6).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Estimator::sweep`].
    pub fn sweep_volume(
        &self,
        domain: Domain,
        volumes: &[u64],
        base: OperatingPoint,
    ) -> Result<SweepSeries, GreenFpgaError> {
        let values: Vec<f64> = volumes.iter().map(|&v| v as f64).collect();
        self.sweep(domain, SweepAxis::VolumeUnits, &values, base)
    }

    /// Evaluates the FPGA:ASIC total-CFP ratio over a 2-D grid (Fig. 8).
    ///
    /// The domain is compiled once and the flattened lattice streams
    /// through the SoA batch kernel
    /// ([`crate::CompiledScenario::evaluate_indexed_into`]) without ever
    /// materializing the operating points; workers each fill a contiguous
    /// slab of the grid.
    ///
    /// When only the *winner* of each cell matters, prefer
    /// [`Estimator::frontier`]: it classifies the same lattice from a small
    /// fraction of the evaluations by refining only the crossover contour.
    ///
    /// # Errors
    ///
    /// Returns [`GreenFpgaError::InvalidRange`] when either value list is
    /// empty and propagates the model error with the lowest cell index.
    pub fn ratio_grid(
        &self,
        domain: Domain,
        x_axis: SweepAxis,
        x_values: &[f64],
        y_axis: SweepAxis,
        y_values: &[f64],
        base: OperatingPoint,
    ) -> Result<GridSweep, GreenFpgaError> {
        self.compile(domain)?
            .ratio_grid(x_axis, x_values, y_axis, y_values, base, 0)
    }
}

impl crate::CompiledScenario {
    /// Sweeps one workload parameter over the given values, holding the
    /// other two at `base` — the compiled body behind [`Estimator::sweep`],
    /// callable off a cached compilation. `threads` follows the batch
    /// kernel's convention (`0` = auto); the result is identical for every
    /// thread count.
    ///
    /// # Errors
    ///
    /// Returns [`GreenFpgaError::InvalidRange`] for an empty value list and
    /// propagates model errors.
    pub fn sweep_series(
        &self,
        axis: SweepAxis,
        values: &[f64],
        base: OperatingPoint,
        threads: usize,
    ) -> Result<SweepSeries, GreenFpgaError> {
        if values.is_empty() {
            return Err(GreenFpgaError::InvalidRange {
                what: "sweep values",
            });
        }
        let mut buffer = ResultBuffer::new();
        self.evaluate_indexed_into(
            values.len(),
            |i| base.with_axis(axis, values[i]),
            &mut buffer,
            threads,
        )?;
        let points = values
            .iter()
            .enumerate()
            .map(|(i, &x)| SweepPoint {
                x,
                fpga: buffer.fpga(i),
                asic: buffer.asic(i),
            })
            .collect();
        Ok(SweepSeries {
            domain: self.domain(),
            axis,
            points,
        })
    }

    /// Evaluates the FPGA:ASIC ratio over a 2-D lattice — the compiled
    /// body behind [`Estimator::ratio_grid`], callable off a cached
    /// compilation. `threads` follows the batch kernel's convention (`0` =
    /// auto); the result is identical for every thread count.
    ///
    /// # Errors
    ///
    /// Returns [`GreenFpgaError::InvalidRange`] when either value list is
    /// empty and propagates the model error with the lowest cell index.
    pub fn ratio_grid(
        &self,
        x_axis: SweepAxis,
        x_values: &[f64],
        y_axis: SweepAxis,
        y_values: &[f64],
        base: OperatingPoint,
        threads: usize,
    ) -> Result<GridSweep, GreenFpgaError> {
        if x_values.is_empty() || y_values.is_empty() {
            return Err(GreenFpgaError::InvalidRange {
                what: "grid values",
            });
        }
        let columns = x_values.len();
        let mut buffer = ResultBuffer::new();
        self.evaluate_indexed_into(
            columns * y_values.len(),
            |i| {
                base.with_axis(y_axis, y_values[i / columns])
                    .with_axis(x_axis, x_values[i % columns])
            },
            &mut buffer,
            threads,
        )?;
        let ratios = (0..y_values.len())
            .map(|row| {
                (0..columns)
                    .map(|col| buffer.ratio(row * columns + col))
                    .collect()
            })
            .collect();
        Ok(GridSweep {
            domain: self.domain(),
            x_axis,
            x_values: x_values.to_vec(),
            y_axis,
            y_values: y_values.to_vec(),
            ratios,
        })
    }

    /// Starts a streaming evaluation of the same lattice as
    /// [`CompiledScenario::ratio_grid`](crate::CompiledScenario::ratio_grid),
    /// yielding row-blocks through one reused [`ResultBuffer`] instead of
    /// materializing the whole grid.
    ///
    /// The peak resident footprint is one block (`block_rows × columns`
    /// cells), so a 1024×1024 — or million-row — grid evaluates in bounded
    /// memory. Every ratio is bit-identical to the buffered path: the same
    /// kernel evaluates the same points in the same order, only the
    /// delivery is chunked.
    ///
    /// # Errors
    ///
    /// Returns [`GreenFpgaError::InvalidRange`] when either value list is
    /// empty; per-point model errors surface from
    /// [`GridStream::next_block`].
    pub fn grid_stream(
        &self,
        x_axis: SweepAxis,
        x_values: Vec<f64>,
        y_axis: SweepAxis,
        y_values: Vec<f64>,
        base: OperatingPoint,
        threads: usize,
    ) -> Result<GridStream, GreenFpgaError> {
        if x_values.is_empty() || y_values.is_empty() {
            return Err(GreenFpgaError::InvalidRange {
                what: "grid values",
            });
        }
        // Aim for ~16K cells per block: big enough to amortize dispatch and
        // saturate the tile kernel, small enough that a wide grid's resident
        // buffer stays tens-of-rows sized.
        let columns = x_values.len();
        let block_rows = (GridStream::TARGET_BLOCK_CELLS / columns).clamp(1, y_values.len());
        Ok(GridStream {
            scenario: *self,
            x_axis,
            x_values,
            y_axis,
            y_values,
            base,
            threads,
            block_rows,
            next_row: 0,
            buffer: ResultBuffer::new(),
            wins: 0,
        })
    }
}

/// A pull-based streaming evaluation of a ratio grid, produced by
/// [`CompiledScenario::grid_stream`](crate::CompiledScenario::grid_stream).
///
/// Call [`GridStream::next_block`] until it returns `None`; each block
/// borrows the stream's internal buffer, so memory stays bounded by one
/// block regardless of grid size. After exhaustion,
/// [`GridStream::fpga_winning_fraction`] reports the same value (bit-exact)
/// as [`GridSweep::fpga_winning_fraction`] on the buffered result.
#[derive(Debug)]
pub struct GridStream {
    scenario: crate::CompiledScenario,
    x_axis: SweepAxis,
    x_values: Vec<f64>,
    y_axis: SweepAxis,
    y_values: Vec<f64>,
    base: OperatingPoint,
    threads: usize,
    block_rows: usize,
    next_row: usize,
    buffer: ResultBuffer,
    wins: usize,
}

impl GridStream {
    const TARGET_BLOCK_CELLS: usize = 16 * 1024;

    /// Domain the grid is evaluated in.
    pub fn domain(&self) -> Domain {
        self.scenario.domain()
    }

    /// Axis swept along the columns.
    pub fn x_axis(&self) -> SweepAxis {
        self.x_axis
    }

    /// Column coordinate values.
    pub fn x_values(&self) -> &[f64] {
        &self.x_values
    }

    /// Axis swept along the rows.
    pub fn y_axis(&self) -> SweepAxis {
        self.y_axis
    }

    /// Row coordinate values.
    pub fn y_values(&self) -> &[f64] {
        &self.y_values
    }

    /// Number of grid columns.
    pub fn columns(&self) -> usize {
        self.x_values.len()
    }

    /// Total number of grid rows.
    pub fn rows(&self) -> usize {
        self.y_values.len()
    }

    /// Rows delivered per block (the last block may be shorter).
    pub fn block_rows(&self) -> usize {
        self.block_rows
    }

    /// Overrides the block height. Clamped to `1..=rows`.
    pub fn with_block_rows(mut self, rows: usize) -> Self {
        self.block_rows = rows.clamp(1, self.rows());
        self
    }

    /// Rows evaluated and delivered so far.
    pub fn rows_delivered(&self) -> usize {
        self.next_row
    }

    /// `true` once every row has been delivered.
    pub fn is_finished(&self) -> bool {
        self.next_row >= self.rows()
    }

    /// Fraction of *delivered* cells where the FPGA has the lower
    /// footprint. Once the stream is exhausted this equals
    /// [`GridSweep::fpga_winning_fraction`] on the buffered grid exactly:
    /// same `< 1.0` predicate over the same ratios, same quotient.
    pub fn fpga_winning_fraction(&self) -> f64 {
        let cells = self.next_row * self.columns();
        if cells == 0 {
            return 0.0;
        }
        self.wins as f64 / cells as f64
    }

    /// Evaluates and returns the next row-block, or `None` when the grid is
    /// exhausted.
    ///
    /// # Errors
    ///
    /// Propagates the model error with the lowest cell index inside the
    /// block; the stream terminates (subsequent calls return `None`).
    pub fn next_block(&mut self) -> Option<Result<GridBlock<'_>, GreenFpgaError>> {
        let rows_total = self.y_values.len();
        if self.next_row >= rows_total {
            return None;
        }
        let start_row = self.next_row;
        let rows = self.block_rows.min(rows_total - start_row);
        let columns = self.x_values.len();
        let result = {
            let (x_values, y_values) = (&self.x_values, &self.y_values);
            let (x_axis, y_axis, base) = (self.x_axis, self.y_axis, self.base);
            self.scenario.evaluate_indexed_into(
                rows * columns,
                |i| {
                    base.with_axis(y_axis, y_values[start_row + i / columns])
                        .with_axis(x_axis, x_values[i % columns])
                },
                &mut self.buffer,
                self.threads,
            )
        };
        if let Err(error) = result {
            self.next_row = rows_total;
            return Some(Err(error));
        }
        self.next_row = start_row + rows;
        self.wins += (0..rows * columns)
            .filter(|&i| self.buffer.ratio(i) < 1.0)
            .count();
        Some(Ok(GridBlock {
            start_row,
            rows,
            columns,
            buffer: &self.buffer,
        }))
    }
}

/// One row-block of a [`GridStream`], borrowing the stream's buffer.
#[derive(Debug)]
pub struct GridBlock<'a> {
    start_row: usize,
    rows: usize,
    columns: usize,
    buffer: &'a ResultBuffer,
}

impl GridBlock<'_> {
    /// Absolute index of the block's first row within the grid.
    pub fn start_row(&self) -> usize {
        self.start_row
    }

    /// Number of rows in this block.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (same for every block).
    pub fn columns(&self) -> usize {
        self.columns
    }

    /// FPGA:ASIC ratio at `(row, col)`, with `row` relative to the block.
    pub fn ratio(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.columns, "cell out of block");
        self.buffer.ratio(row * self.columns + col)
    }

    /// Iterates one block-relative row's ratios in column order.
    pub fn row(&self, row: usize) -> impl Iterator<Item = f64> + '_ {
        (0..self.columns).map(move |col| self.ratio(row, col))
    }
}

/// Builds a geometric (log-spaced) list of volumes between `min` and `max`
/// with up to `steps` samples, inclusive of both ends. Useful for volume
/// sweeps spanning decades (1K → 10M).
///
/// The result is guaranteed strictly increasing and guaranteed to end
/// exactly at `max`: rounding collisions are resolved by bumping to the
/// next integer (dropping samples when the range is too narrow to hold
/// `steps` distinct values), so callers never see duplicate or
/// non-monotonic sweep coordinates.
pub fn log_spaced_volumes(min: u64, max: u64, steps: usize) -> Vec<u64> {
    if steps <= 1 || min >= max {
        return vec![min.max(1)];
    }
    let lo = min.max(1);
    let (lo_f, hi_f) = (lo as f64, max as f64);
    let ratio = (hi_f / lo_f).powf(1.0 / (steps as f64 - 1.0));
    let mut values = Vec::with_capacity(steps);
    let mut previous = 0u64;
    // The last slot is reserved for `max` itself, so interior samples stop
    // at `steps - 1` even when rounding keeps them below `max`.
    for i in 0..steps - 1 {
        let raw = (lo_f * ratio.powi(i as i32)).round() as u64;
        let value = raw.max(previous + 1);
        if value >= max {
            break;
        }
        values.push(value);
        previous = value;
    }
    values.push(max);
    values
}

#[cfg(test)]
mod tests {
    use super::*;

    fn estimator() -> Estimator {
        Estimator::default()
    }

    #[test]
    fn application_sweep_shows_fpga_amortization() {
        let counts: Vec<u64> = (1..=8).collect();
        let series = estimator()
            .sweep_applications(Domain::Dnn, &counts, OperatingPoint::paper_default())
            .unwrap();
        assert_eq!(series.points.len(), 8);
        // The FPGA:ASIC ratio must fall monotonically as apps are added.
        for pair in series.points.windows(2) {
            assert!(pair[1].ratio() < pair[0].ratio());
        }
        // Fig. 4: DNN crossover exists within 8 applications.
        assert_eq!(series.crossovers().len(), 1);
    }

    #[test]
    fn lifetime_sweep_matches_fig5_shapes() {
        let lifetimes: Vec<f64> = (1..=12).map(|i| 0.2 + 0.2 * i as f64).collect();
        let base = OperatingPoint::paper_default();
        // Crypto: FPGA always wins.
        let crypto = estimator()
            .sweep_lifetime(Domain::Crypto, &lifetimes, base)
            .unwrap();
        assert!(crypto.points.iter().all(|p| p.ratio() < 1.0));
        assert!(crypto.crossovers().is_empty());
        // ImgProc: ASIC always wins.
        let img = estimator()
            .sweep_lifetime(Domain::ImageProcessing, &lifetimes, base)
            .unwrap();
        assert!(img.points.iter().all(|p| p.ratio() > 1.0));
        // DNN: one F2A crossover.
        let dnn = estimator()
            .sweep_lifetime(Domain::Dnn, &lifetimes, base)
            .unwrap();
        let crossovers = dnn.crossovers();
        assert_eq!(crossovers.len(), 1);
        assert_eq!(
            crossovers[0].direction,
            crate::CrossoverDirection::FpgaToAsic
        );
    }

    #[test]
    fn volume_sweep_has_f2a_for_dnn_and_none_for_crypto() {
        let volumes = log_spaced_volumes(1_000, 10_000_000, 16);
        let base = OperatingPoint::paper_default();
        let dnn = estimator()
            .sweep_volume(Domain::Dnn, &volumes, base)
            .unwrap();
        let crossovers = dnn.crossovers();
        assert!(!crossovers.is_empty(), "DNN volume sweep must cross over");
        assert_eq!(
            crossovers[0].direction,
            crate::CrossoverDirection::FpgaToAsic
        );
        let crypto = estimator()
            .sweep_volume(Domain::Crypto, &volumes, base)
            .unwrap();
        assert!(crypto.points.iter().all(|p| p.ratio() < 1.0));
    }

    #[test]
    fn sweep_rejects_empty_values() {
        assert!(matches!(
            estimator().sweep(
                Domain::Dnn,
                SweepAxis::Applications,
                &[],
                OperatingPoint::default()
            ),
            Err(GreenFpgaError::InvalidRange { .. })
        ));
    }

    #[test]
    fn nearest_finds_closest_sample() {
        let series = estimator()
            .sweep_applications(Domain::Dnn, &[1, 2, 4, 8], OperatingPoint::paper_default())
            .unwrap();
        assert_eq!(series.nearest(3.4).unwrap().x, 4.0);
        assert_eq!(series.nearest(0.0).unwrap().x, 1.0);
    }

    #[test]
    fn nearest_handles_empty_series_and_nan_probes() {
        let empty = SweepSeries {
            domain: Domain::Dnn,
            axis: SweepAxis::Applications,
            points: Vec::new(),
        };
        assert!(empty.nearest(1.0).is_none());
        assert!(empty.crossovers().is_empty());
        let series = estimator()
            .sweep_applications(Domain::Dnn, &[1, 2], OperatingPoint::paper_default())
            .unwrap();
        assert!(series.nearest(f64::NAN).is_none());
        // All distances to an infinite probe are infinite; ties go to the
        // first sample.
        assert_eq!(series.nearest(f64::INFINITY).unwrap().x, 1.0);
    }

    #[test]
    fn winning_fraction_of_empty_or_inconsistent_grids_is_well_defined() {
        let empty = GridSweep {
            domain: Domain::Dnn,
            x_axis: SweepAxis::Applications,
            x_values: Vec::new(),
            y_axis: SweepAxis::LifetimeYears,
            y_values: Vec::new(),
            ratios: Vec::new(),
        };
        assert_eq!(empty.fpga_winning_fraction(), 0.0);
        assert!(empty.is_empty());
        // A grid whose coordinate lists disagree with its cells counts over
        // the cells actually present.
        let inconsistent = GridSweep {
            domain: Domain::Dnn,
            x_axis: SweepAxis::Applications,
            x_values: vec![1.0, 2.0, 3.0],
            y_axis: SweepAxis::LifetimeYears,
            y_values: vec![0.5, 1.0],
            ratios: vec![vec![0.5, 2.0]],
        };
        assert!((inconsistent.fpga_winning_fraction() - 0.5).abs() < 1e-12);
        let no_cells = GridSweep {
            x_values: vec![1.0],
            y_values: vec![1.0],
            ratios: Vec::new(),
            ..inconsistent
        };
        assert_eq!(no_cells.fpga_winning_fraction(), 0.0);
    }

    #[test]
    fn ratio_grid_is_rectangular_and_finite() {
        let grid = estimator()
            .ratio_grid(
                Domain::Dnn,
                SweepAxis::Applications,
                &[1.0, 4.0, 8.0],
                SweepAxis::LifetimeYears,
                &[0.5, 1.0, 2.0, 2.5],
                OperatingPoint::paper_default(),
            )
            .unwrap();
        assert_eq!(grid.ratios.len(), 4);
        assert!(grid.ratios.iter().all(|row| row.len() == 3));
        assert!(grid
            .ratios
            .iter()
            .flatten()
            .all(|r| r.is_finite() && *r > 0.0));
        assert_eq!(grid.len(), 12);
        assert!(!grid.is_empty());
        let f = grid.fpga_winning_fraction();
        assert!((0.0..=1.0).contains(&f));
        // More apps and shorter lifetimes favour the FPGA: the cell with the
        // most apps and shortest lifetime must have a lower ratio than the
        // cell with the fewest apps and longest lifetime.
        assert!(grid.ratios[0][2] < grid.ratios[3][0]);
    }

    #[test]
    fn grid_stream_matches_buffered_grid_bit_for_bit() {
        let x_values: Vec<f64> = (1..=13).map(|i| i as f64).collect();
        let y_values: Vec<f64> = (1..=7).map(|i| 0.3 * i as f64).collect();
        let base = OperatingPoint::paper_default();
        let compiled = estimator().compile(Domain::Dnn).unwrap();
        let buffered = compiled
            .ratio_grid(
                SweepAxis::Applications,
                &x_values,
                SweepAxis::LifetimeYears,
                &y_values,
                base,
                0,
            )
            .unwrap();
        // Exercise block heights that divide the row count, don't, and
        // exceed it.
        for block_rows in [1usize, 2, 3, 7, 100] {
            let mut stream = compiled
                .grid_stream(
                    SweepAxis::Applications,
                    x_values.clone(),
                    SweepAxis::LifetimeYears,
                    y_values.clone(),
                    base,
                    0,
                )
                .unwrap()
                .with_block_rows(block_rows);
            assert_eq!(stream.columns(), x_values.len());
            assert_eq!(stream.rows(), y_values.len());
            assert_eq!(stream.block_rows(), block_rows.min(y_values.len()));
            let mut next_expected_row = 0;
            while let Some(block) = stream.next_block() {
                let block = block.unwrap();
                assert_eq!(block.start_row(), next_expected_row);
                for r in 0..block.rows() {
                    let absolute = block.start_row() + r;
                    for (c, ratio) in block.row(r).enumerate() {
                        assert_eq!(
                            ratio.to_bits(),
                            buffered.ratios[absolute][c].to_bits(),
                            "cell ({absolute},{c}) diverged at block_rows {block_rows}"
                        );
                    }
                }
                next_expected_row += block.rows();
            }
            assert!(stream.is_finished());
            assert_eq!(stream.rows_delivered(), y_values.len());
            assert_eq!(
                stream.fpga_winning_fraction().to_bits(),
                buffered.fpga_winning_fraction().to_bits()
            );
        }
    }

    #[test]
    fn grid_stream_rejects_empty_axes_and_reports_errors_once() {
        let compiled = estimator().compile(Domain::Dnn).unwrap();
        assert!(matches!(
            compiled.grid_stream(
                SweepAxis::Applications,
                Vec::new(),
                SweepAxis::LifetimeYears,
                vec![1.0],
                OperatingPoint::paper_default(),
                0,
            ),
            Err(GreenFpgaError::InvalidRange { .. })
        ));
        // A non-finite lifetime fails validation inside the block; the
        // stream surfaces the error once and then terminates.
        let mut stream = compiled
            .grid_stream(
                SweepAxis::Applications,
                vec![1.0],
                SweepAxis::LifetimeYears,
                vec![f64::NAN],
                OperatingPoint::paper_default(),
                0,
            )
            .unwrap();
        assert!(stream.next_block().unwrap().is_err());
        assert!(stream.next_block().is_none());
        assert_eq!(stream.fpga_winning_fraction(), 0.0);
    }

    #[test]
    fn grid_stream_default_block_rows_bound_memory() {
        let compiled = estimator().compile(Domain::Dnn).unwrap();
        // A wide grid gets a short block; a narrow one takes all its rows.
        let wide = compiled
            .grid_stream(
                SweepAxis::Applications,
                (1..=8192).map(|i| i as f64).collect(),
                SweepAxis::LifetimeYears,
                vec![0.5; 64],
                OperatingPoint::paper_default(),
                0,
            )
            .unwrap();
        assert_eq!(wide.block_rows(), 2);
        let narrow = compiled
            .grid_stream(
                SweepAxis::Applications,
                vec![1.0, 2.0],
                SweepAxis::LifetimeYears,
                vec![0.5; 10],
                OperatingPoint::paper_default(),
                0,
            )
            .unwrap();
        assert_eq!(narrow.block_rows(), 10);
    }

    #[test]
    fn grid_rejects_empty_axes() {
        assert!(matches!(
            estimator().ratio_grid(
                Domain::Dnn,
                SweepAxis::Applications,
                &[],
                SweepAxis::LifetimeYears,
                &[1.0],
                OperatingPoint::paper_default(),
            ),
            Err(GreenFpgaError::InvalidRange { .. })
        ));
    }

    #[test]
    fn log_spaced_volumes_cover_the_range() {
        let v = log_spaced_volumes(1_000, 1_000_000, 7);
        assert_eq!(*v.first().unwrap(), 1_000);
        assert_eq!(*v.last().unwrap(), 1_000_000);
        assert!(v.windows(2).all(|w| w[1] > w[0]));
        // Roughly one sample per half-decade.
        assert_eq!(v.len(), 7);
        assert_eq!(log_spaced_volumes(10, 5, 4), vec![10]);
        assert_eq!(log_spaced_volumes(0, 100, 1), vec![1]);
    }

    #[test]
    fn log_spaced_volumes_stay_strictly_increasing_in_tight_ranges() {
        // Narrow ranges used to produce non-adjacent duplicates that
        // `dedup` missed; the rebuilt generator bumps collisions instead.
        for (min, max, steps) in [(1u64, 20u64, 12usize), (10, 12, 8), (1, 3, 9)] {
            let v = log_spaced_volumes(min, max, steps);
            assert!(
                v.windows(2).all(|w| w[1] > w[0]),
                "not strictly increasing: {v:?}"
            );
            assert_eq!(*v.last().unwrap(), max);
            assert!(v.len() <= steps);
        }
    }

    #[test]
    fn log_spaced_volumes_end_exactly_at_max() {
        // 9_999_999 is prone to rounding to 10M with the old generator.
        let v = log_spaced_volumes(1_000, 9_999_999, 13);
        assert_eq!(*v.first().unwrap(), 1_000);
        assert_eq!(*v.last().unwrap(), 9_999_999);
        assert!(v.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn log_spaced_volumes_never_exceed_the_requested_count() {
        // Huge ranges where rounding keeps every interior sample below max
        // used to emit steps + 1 values.
        for steps in 2..40 {
            let v = log_spaced_volumes(1, 10u64.pow(15) + 1, steps);
            assert!(v.len() <= steps, "steps {steps} gave {} values", v.len());
            assert_eq!(*v.last().unwrap(), 10u64.pow(15) + 1);
            assert!(v.windows(2).all(|w| w[1] > w[0]));
        }
    }

    #[test]
    fn grid_matches_naive_point_wise_evaluation() {
        let est = estimator();
        let x_values = [1.0, 3.0, 6.0];
        let y_values = [0.5, 1.5];
        let grid = est
            .ratio_grid(
                Domain::Dnn,
                SweepAxis::Applications,
                &x_values,
                SweepAxis::LifetimeYears,
                &y_values,
                OperatingPoint::paper_default(),
            )
            .unwrap();
        for (row, &y) in y_values.iter().enumerate() {
            for (col, &x) in x_values.iter().enumerate() {
                let naive = est
                    .compare_uniform(Domain::Dnn, x as u64, y, 1_000_000)
                    .unwrap()
                    .fpga_to_asic_ratio();
                assert_eq!(grid.ratios[row][col], naive, "cell ({row},{col})");
            }
        }
    }

    #[test]
    fn axis_labels_match_paper_terms() {
        assert_eq!(SweepAxis::Applications.label(), "Num Apps");
        assert_eq!(SweepAxis::LifetimeYears.label(), "App Lifetime (years)");
        assert_eq!(SweepAxis::VolumeUnits.label(), "App Volume (units)");
    }
}

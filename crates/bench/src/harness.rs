//! A minimal timing harness for the workspace's `harness = false` benches.
//!
//! The offline build environment cannot fetch Criterion, so the benches use
//! this small stand-in: automatic iteration-count calibration to a target
//! batch duration, several timed batches, and median-of-batches reporting
//! (robust to scheduler noise). Results can be serialized to a JSON file so
//! CI can track the performance trajectory (`BENCH_eval.json`).

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Timing summary of one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Iterations per timed batch.
    pub iters_per_batch: u64,
    /// Number of timed batches.
    pub batches: usize,
    /// Median per-iteration time in nanoseconds.
    pub median_ns: f64,
    /// Minimum per-iteration time in nanoseconds.
    pub min_ns: f64,
    /// Mean per-iteration time in nanoseconds.
    pub mean_ns: f64,
}

impl BenchResult {
    /// Median per-iteration time in seconds.
    pub fn median_secs(&self) -> f64 {
        self.median_ns / 1e9
    }
}

/// Measures `f`, returning per-iteration statistics.
///
/// Calibrates the iteration count so one batch takes roughly
/// `target_batch`, then times `batches` batches and reports per-iteration
/// medians. The closure's result is passed through [`black_box`] so the
/// optimizer cannot discard the work.
pub fn bench_with<R>(
    name: &str,
    target_batch: Duration,
    batches: usize,
    mut f: impl FnMut() -> R,
) -> BenchResult {
    // Warm up and calibrate: double the batch size until it exceeds ~1/4 of
    // the target, then scale to the target.
    let mut iters: u64 = 1;
    let per_iter = loop {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = start.elapsed();
        if elapsed >= target_batch / 4 || iters >= 1 << 30 {
            break elapsed.as_secs_f64() / iters as f64;
        }
        iters *= 2;
    };
    let iters_per_batch = ((target_batch.as_secs_f64() / per_iter).ceil() as u64).max(1);

    let mut samples: Vec<f64> = (0..batches.max(1))
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters_per_batch {
                black_box(f());
            }
            start.elapsed().as_secs_f64() * 1e9 / iters_per_batch as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);

    BenchResult {
        name: name.to_string(),
        iters_per_batch,
        batches: samples.len(),
        median_ns: samples[samples.len() / 2],
        min_ns: samples[0],
        mean_ns: samples.iter().sum::<f64>() / samples.len() as f64,
    }
}

/// [`bench_with`] using the default budget (100 ms batches × 9 batches) and
/// printing the result in a `cargo bench`-like format.
pub fn bench<R>(name: &str, f: impl FnMut() -> R) -> BenchResult {
    let result = bench_with(name, Duration::from_millis(100), 9, f);
    println!("{result}");
    result
}

impl std::fmt::Display for BenchResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "bench {:<44} {:>14} /iter (min {}, {} iters x {} batches)",
            self.name,
            format_ns(self.median_ns),
            format_ns(self.min_ns),
            self.iters_per_batch,
            self.batches
        )
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Renders `(key, value)` metric pairs as a flat JSON object, for the
/// `BENCH_*.json` artifacts CI tracks. Keys must be plain identifiers (no
/// escaping is performed); values are emitted with full precision.
pub fn metrics_json(metrics: &[(&str, f64)]) -> String {
    let mut out = String::from("{\n");
    for (i, (key, value)) in metrics.iter().enumerate() {
        let comma = if i + 1 == metrics.len() { "" } else { "," };
        let rendered = if value.is_finite() {
            format!("{value}")
        } else {
            "null".to_string()
        };
        let _ = writeln!(out, "  \"{key}\": {rendered}{comma}");
    }
    out.push('}');
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_something_positive() {
        let result = bench_with("spin", Duration::from_millis(2), 3, || {
            (0..100u64).map(black_box).sum::<u64>()
        });
        assert!(result.median_ns > 0.0);
        assert!(result.min_ns <= result.median_ns);
        assert!(result.iters_per_batch >= 1);
        assert_eq!(result.batches, 3);
        assert!(result.to_string().contains("spin"));
    }

    #[test]
    fn json_is_well_formed() {
        let json = metrics_json(&[("a", 1.5), ("b", f64::NAN), ("c", 3.0)]);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"a\": 1.5,"));
        assert!(json.contains("\"b\": null,"));
        assert!(json.contains("\"c\": 3\n"));
    }

    #[test]
    fn format_ns_picks_sensible_units() {
        assert!(format_ns(12.0).contains("ns"));
        assert!(format_ns(12_000.0).contains("us"));
        assert!(format_ns(12_000_000.0).contains("ms"));
        assert!(format_ns(2.5e9).contains(" s"));
    }
}

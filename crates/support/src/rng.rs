//! SplitMix64: a tiny, fast, high-quality pseudo-random generator.
//!
//! SplitMix64 (Steele, Lea & Flood, OOPSLA 2014; Vigna's public-domain
//! reference implementation) passes BigCrush, is a bijection of its 64-bit
//! state, and — crucially for parallel Monte-Carlo — produces decorrelated
//! streams from *sequential* seeds. Seeding trial `i` with `seed + i`
//! therefore gives every trial an independent stream whose output does not
//! depend on which thread evaluates it, which is what makes the batch engine
//! deterministic across thread counts.

/// A deterministic 64-bit pseudo-random generator (SplitMix64).
///
/// # Examples
///
/// ```
/// use gf_support::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x = a.next_f64();
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[low, high)` (`[low, low]` when the bounds meet).
    pub fn gen_range_f64(&mut self, low: f64, high: f64) -> f64 {
        low + (high - low) * self.next_f64()
    }

    /// Uniform `u64` in `[low, high]` (inclusive). The tiny modulo bias is
    /// irrelevant for test-data generation, which is this method's purpose.
    pub fn gen_range_u64(&mut self, low: u64, high: u64) -> u64 {
        debug_assert!(low <= high);
        let span = high - low;
        if span == u64::MAX {
            return self.next_u64();
        }
        low + self.next_u64() % (span + 1)
    }

    /// Uniform `usize` in `[0, len)`; handy for indexing test vectors.
    pub fn gen_index(&mut self, len: usize) -> usize {
        debug_assert!(len > 0);
        (self.next_u64() % len as u64) as usize
    }

    /// A fair coin flip.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn sequential_seeds_decorrelate() {
        // First outputs of seeds 0..64 should all be distinct.
        let mut seen = std::collections::HashSet::new();
        for seed in 0..64u64 {
            assert!(seen.insert(SplitMix64::new(seed).next_u64()));
        }
    }

    #[test]
    fn f64_stays_in_unit_interval_and_covers_it() {
        let mut rng = SplitMix64::new(123);
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            min = min.min(x);
            max = max.max(x);
        }
        assert!(min < 0.01 && max > 0.99);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SplitMix64::new(9);
        for _ in 0..1000 {
            let f = rng.gen_range_f64(-2.5, 7.5);
            assert!((-2.5..7.5).contains(&f));
            let u = rng.gen_range_u64(10, 20);
            assert!((10..=20).contains(&u));
            let i = rng.gen_index(3);
            assert!(i < 3);
        }
        assert_eq!(rng.gen_range_u64(5, 5), 5);
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = SplitMix64::new(2024);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}

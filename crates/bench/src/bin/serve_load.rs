//! `serve_load` — multi-client loopback saturation benchmark for
//! `greenfpga-serve`.
//!
//! Runs one load pass per client count (1, 4 and 8 keep-alive clients),
//! each against a fresh in-process server on an ephemeral port, hammering
//! `/v1/evaluate` and `/v1/batch` plus a scenario-layer mix — named
//! catalog scenarios over `/v1/scenario` (rotating through every
//! cataloged id, so the run exercises the compiled-scenario cache the way
//! real catalog traffic does), full-year time-series replays over
//! `/v1/replay`, and inverse queries over `/v1/optimize` (a search-tier
//! argmin solve per request, so the mix covers the worker-pool offload
//! path the optimizer rides) — then a **soak pass** that parks
//! thousands of idle keep-alive connections on the event loop while active
//! clients keep running traffic, and re-verifies every idle connection
//! still answers afterwards.
//!
//! Every response is golden-matched **byte-for-byte**: a warmup round
//! captures the full wire bytes of each distinct response and verifies them
//! (decoded) against direct engine calls, and the hot loops then compare
//! raw bytes. That is simultaneously a stronger check than per-response
//! JSON decoding (any drifted byte fails, not just decoded fields) and
//! cheap enough that the generator measures the server instead of itself.
//!
//! Results merge into the `BENCH_eval.json` trajectory artifact (override
//! the path with `GF_BENCH_OUT`): existing keys are preserved, `serve_*`
//! keys are replaced. `serve_rps` and the latency percentiles come from
//! the 1-client pass (comparable across baselines); `serve_rps_4` /
//! `serve_rps_8` record the saturation ladder; `serve_connections` records
//! the soak's concurrently-live verified connection count;
//! `trace_overhead` records the traced/untraced throughput ratio of
//! interleaved 1-client passes (tracing is on by default, so this is the
//! cost every production request pays). `bench_gate` gates every
//! `serve_rps*` key downward like the kernel speedups, holds
//! `serve_connections` above an absolute floor, and holds
//! `trace_overhead` above [`gf_bench::TRACE_OVERHEAD_FLOOR`]; the latency
//! keys are tracked but not gated (loopback latency is machine-shaped).
//!
//! Environment knobs:
//!
//! * `GF_SERVE_LOAD_REQUESTS` — `/v1/evaluate` requests per pass (default 50 000)
//! * `GF_SERVE_LOAD_BATCHES` — `/v1/batch` requests per pass (default 500, 64 points each)
//! * `GF_SERVE_LOAD_SCENARIOS` — `/v1/scenario` requests per pass
//!   (default 2 000, rotating through the catalog)
//! * `GF_SERVE_LOAD_REPLAYS` — `/v1/replay` requests per pass
//!   (default 200, 8760 hourly steps each)
//! * `GF_SERVE_LOAD_OPTIMIZE` — `/v1/optimize` requests per pass
//!   (default 200, each a constrained two-knob search-tier solve)
//! * `GF_SERVE_SOAK_CONNECTIONS` — idle keep-alive connections in the soak
//!   pass (default 4096; each costs two fds in-process)
//! * `GF_SERVE_TRACE_REQUESTS` — trace-overhead request budget per
//!   round (default 20 000; five rounds, split into alternating
//!   traced/untraced 500-request slices — the metric is the median
//!   ratio over adjacent slice pairs)
//! * `GF_BENCH_NO_ASSERT` — report only, skip the acceptance assertions

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use gf_bench::harness::parse_metrics_json;
use gf_json::{FromJson, Value};
use gf_server::{Server, ServerConfig};
use greenfpga::api::{
    BatchEvalRequest, BatchEvalResponse, EvaluateRequest, EvaluateResponse, OptimizeRequest,
    OptimizeResponse, Query, QueryKind, ReplayRequest, ReplayResponse, ScenarioRef,
    ScenarioRunRequest, ScenarioRunResponse, SeriesRef,
};
use greenfpga::{
    catalog, CarbonIntensitySeries, Constraint, Domain, Engine, Estimator, Objective,
    OperatingPoint, PlatformComparison, ResultBuffer, ScenarioSpec, SearchKnob, SweepAxis,
};

/// Distinct operating points the clients rotate through — enough variety
/// to exercise real evaluation, few enough to precompute goldens.
fn operating_points() -> Vec<OperatingPoint> {
    let mut points = Vec::new();
    for applications in [1u64, 2, 3, 5, 8, 12, 16, 24] {
        for (lifetime_years, volume) in [
            (0.5, 10_000u64),
            (1.0, 100_000),
            (1.5, 500_000),
            (2.0, 1_000_000),
            (2.5, 2_500_000),
            (3.0, 5_000_000),
            (4.0, 250_000),
            (5.0, 50_000),
        ] {
            points.push(OperatingPoint {
                applications,
                lifetime_years,
                volume,
            });
        }
    }
    points
}

fn env_usize(key: &str, fallback: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(fallback)
}

/// Encodes one full keep-alive request as the exact bytes a client writes.
fn encode_request(path: &str, body: &str) -> Vec<u8> {
    format!(
        "POST {path} HTTP/1.1\r\nHost: loopback\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// The per-request `x-request-id` header: its 16 hex chars are the one
/// place a response legitimately differs between identical requests, so
/// the byte compare treats exactly that span as a wildcard (the id is
/// fixed-width, so the framing around it never moves).
const REQUEST_ID_HEADER: &[u8] = b"x-request-id: ";
const REQUEST_ID_HEX: usize = 16;

/// Byte-compares a response against its golden, masking the request-id
/// hex: every other byte — headers, framing, the whole body — must match
/// exactly, and the masked span must still be 16 hex digits.
fn matches_golden(buf: &[u8], golden: &[u8]) -> bool {
    if buf.len() != golden.len() {
        return false;
    }
    let Some(at) = golden
        .windows(REQUEST_ID_HEADER.len())
        .position(|w| w == REQUEST_ID_HEADER)
    else {
        return buf == golden;
    };
    let id_from = at + REQUEST_ID_HEADER.len();
    let id_to = id_from + REQUEST_ID_HEX;
    buf[..id_from] == golden[..id_from]
        && buf[id_from..id_to].iter().all(u8::is_ascii_hexdigit)
        && buf[id_to..] == golden[id_to..]
}

/// A raw keep-alive connection tuned for the hot loop: one `write` syscall
/// per request, `read_exact` into a reused buffer sized by the known
/// golden, and a byte compare — no per-response parsing or allocation.
struct RawClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl RawClient {
    fn connect(addr: SocketAddr) -> std::io::Result<RawClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        // A response that frames shorter than its golden (an unexpected
        // error body) parks `read_exact`; the timeout turns that into a
        // counted failure instead of a hang.
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        Ok(RawClient {
            stream,
            buf: Vec::new(),
        })
    }

    /// One round-trip, `true` iff the response bytes equal the golden.
    fn round_trip(&mut self, request: &[u8], golden: &[u8]) -> bool {
        if self.stream.write_all(request).is_err() {
            return false;
        }
        self.buf.clear();
        self.buf.resize(golden.len(), 0);
        if self.stream.read_exact(&mut self.buf).is_err() {
            return false;
        }
        matches_golden(&self.buf, golden)
    }

    /// Pipelines the requests at `indices` in one segment, reads the
    /// back-to-back responses, and byte-matches each against its golden.
    /// Returns the number of failed requests.
    fn pipeline(&mut self, workload: &Workload, indices: std::ops::Range<usize>) -> u64 {
        let window: Vec<usize> = indices
            .map(|i| i % workload.evaluate_requests.len())
            .collect();
        let mut wire = Vec::new();
        let mut total = 0usize;
        for &index in &window {
            wire.extend_from_slice(&workload.evaluate_requests[index]);
            total += workload.evaluate_goldens[index].len();
        }
        if self.stream.write_all(&wire).is_err() {
            return window.len() as u64;
        }
        self.buf.clear();
        self.buf.resize(total, 0);
        if self.stream.read_exact(&mut self.buf).is_err() {
            return window.len() as u64;
        }
        let mut errors = 0u64;
        let mut cursor = 0usize;
        for &index in &window {
            let golden = &workload.evaluate_goldens[index];
            if !matches_golden(&self.buf[cursor..cursor + golden.len()], golden) {
                errors += 1;
            }
            cursor += golden.len();
        }
        errors
    }
}

/// Reads one `Content-Length`-framed response (used only while capturing
/// goldens — the hot loops read by known length).
fn read_framed(stream: &mut TcpStream) -> std::io::Result<Vec<u8>> {
    let mut raw = Vec::new();
    let mut chunk = [0u8; 16 << 10];
    let header_end = loop {
        if let Some(pos) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed inside response head",
            ));
        }
        raw.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&raw[..header_end]).to_string();
    let content_length: usize = head
        .lines()
        .find_map(|line| {
            let (name, value) = line.split_once(':')?;
            name.trim()
                .eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse().ok())?
        })
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "missing Content-Length")
        })?;
    while raw.len() < header_end + content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed inside response body",
            ));
        }
        raw.extend_from_slice(&chunk[..n]);
    }
    Ok(raw)
}

fn body_of(raw: &[u8]) -> &str {
    let pos = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("framed");
    std::str::from_utf8(&raw[pos + 4..]).expect("JSON body")
}

struct ClientOutcome {
    evaluate_latencies_ns: Vec<u64>,
    batch_latencies_ns: Vec<u64>,
    scenario_latencies_ns: Vec<u64>,
    replay_latencies_ns: Vec<u64>,
    optimize_latencies_ns: Vec<u64>,
    errors: u64,
}

// One count per traffic phase plus the connection target and rotation
// offset — a parameter object would just restate the phase list.
#[allow(clippy::too_many_arguments)]
fn run_client(
    addr: SocketAddr,
    workload: &Workload,
    evaluate_requests: usize,
    batch_requests: usize,
    scenario_requests: usize,
    replay_requests: usize,
    optimize_requests: usize,
    offset: usize,
) -> ClientOutcome {
    let mut outcome = ClientOutcome {
        evaluate_latencies_ns: Vec::with_capacity(evaluate_requests),
        batch_latencies_ns: Vec::with_capacity(batch_requests),
        scenario_latencies_ns: Vec::with_capacity(scenario_requests),
        replay_latencies_ns: Vec::with_capacity(replay_requests),
        optimize_latencies_ns: Vec::with_capacity(optimize_requests),
        errors: 0,
    };
    let mut client = match RawClient::connect(addr) {
        Ok(client) => client,
        Err(_) => {
            outcome.errors += (evaluate_requests
                + batch_requests
                + scenario_requests
                + replay_requests
                + optimize_requests) as u64;
            return outcome;
        }
    };
    // Evaluate phase: requests go out pipelined (PIPELINE per segment) —
    // the server's keep-alive machinery answers them in order — with a
    // periodic *serial* round-trip so the latency percentiles measure real
    // request latency, not amortized group time.
    const PIPELINE: usize = 32;
    const PROBE_EVERY_GROUPS: usize = 8;
    let mut issued = 0usize;
    let mut groups = 0usize;
    while issued < evaluate_requests {
        if groups.is_multiple_of(PROBE_EVERY_GROUPS) {
            let index = (offset + issued) % workload.evaluate_requests.len();
            let start = Instant::now();
            let ok = client.round_trip(
                &workload.evaluate_requests[index],
                &workload.evaluate_goldens[index],
            );
            outcome
                .evaluate_latencies_ns
                .push(start.elapsed().as_nanos() as u64);
            if !ok {
                outcome.errors += 1;
            }
            issued += 1;
        } else {
            let window = PIPELINE.min(evaluate_requests - issued);
            outcome.errors += client.pipeline(workload, offset + issued..offset + issued + window);
            issued += window;
        }
        groups += 1;
    }
    for _ in 0..batch_requests {
        let start = Instant::now();
        let ok = client.round_trip(&workload.batch_request, &workload.batch_golden);
        outcome
            .batch_latencies_ns
            .push(start.elapsed().as_nanos() as u64);
        if !ok {
            outcome.errors += 1;
        }
    }
    // Scenario phase: rotate through every cataloged id so the server's
    // compiled-scenario cache sees the full catalog, not one hot entry.
    for i in 0..scenario_requests {
        let index = (offset + i) % workload.scenario_requests.len();
        let start = Instant::now();
        let ok = client.round_trip(
            &workload.scenario_requests[index],
            &workload.scenario_goldens[index],
        );
        outcome
            .scenario_latencies_ns
            .push(start.elapsed().as_nanos() as u64);
        if !ok {
            outcome.errors += 1;
        }
    }
    for _ in 0..replay_requests {
        let start = Instant::now();
        let ok = client.round_trip(&workload.replay_request, &workload.replay_golden);
        outcome
            .replay_latencies_ns
            .push(start.elapsed().as_nanos() as u64);
        if !ok {
            outcome.errors += 1;
        }
    }
    for _ in 0..optimize_requests {
        let start = Instant::now();
        let ok = client.round_trip(&workload.optimize_request, &workload.optimize_golden);
        outcome
            .optimize_latencies_ns
            .push(start.elapsed().as_nanos() as u64);
        if !ok {
            outcome.errors += 1;
        }
    }
    outcome
}

fn percentile_us(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return f64::NAN;
    }
    let rank = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[rank] as f64 / 1e3
}

/// Pre-encoded request bytes and their captured golden response bytes,
/// shared by every pass.
struct Workload {
    evaluate_requests: Vec<Vec<u8>>,
    evaluate_goldens: Vec<Vec<u8>>,
    batch_request: Vec<u8>,
    batch_golden: Vec<u8>,
    scenario_requests: Vec<Vec<u8>>,
    scenario_goldens: Vec<Vec<u8>>,
    replay_request: Vec<u8>,
    replay_golden: Vec<u8>,
    optimize_request: Vec<u8>,
    optimize_golden: Vec<u8>,
}

/// Builds the workload: encodes every request, then captures each distinct
/// response's wire bytes from a scratch server and proves them bit-identical
/// to direct engine calls before the hot loops trust them as goldens.
fn build_workload() -> Workload {
    let estimator = Estimator::default();
    let compiled = estimator.compile(Domain::Dnn).expect("compile dnn");
    let points = operating_points();
    // Bodies come from the same `Query` types every other frontend speaks:
    // `Query::request_body()` is exactly what `POST /v1/<kind>` decodes.
    let evaluate_requests: Vec<Vec<u8>> = points
        .iter()
        .map(|&point| {
            let body = Query::Evaluate(EvaluateRequest {
                scenario: ScenarioSpec::baseline(Domain::Dnn),
                point,
            })
            .request_body()
            .to_json_string()
            .expect("request serializes");
            encode_request(QueryKind::Evaluate.path(), &body)
        })
        .collect();
    let batch_points: Vec<OperatingPoint> = points.iter().copied().take(64).collect();
    let batch_body = Query::Batch(BatchEvalRequest {
        scenario: ScenarioSpec::baseline(Domain::Dnn),
        points: batch_points.clone(),
    })
    .request_body()
    .to_json_string()
    .expect("batch request serializes");
    let batch_request = encode_request(QueryKind::Batch.path(), &batch_body);
    // The scenario mix: every cataloged id by reference (the body the CLI
    // and every other catalog client sends), plus one full-year replay.
    let scenario_requests: Vec<Vec<u8>> = catalog()
        .iter()
        .map(|entry| {
            let body = Query::Scenario(ScenarioRunRequest {
                scenario: ScenarioRef::Catalog {
                    id: entry.id.to_string(),
                    knobs: Vec::new(),
                },
                point: None,
            })
            .request_body()
            .to_json_string()
            .expect("scenario request serializes");
            encode_request(QueryKind::Scenario.path(), &body)
        })
        .collect();
    const REPLAY_ID: &str = "dnn_fleet_10k_3y";
    const REPLAY_REGION: &str = "solar_duck";
    let replay_body = Query::Replay(ReplayRequest {
        scenario: ScenarioRef::Catalog {
            id: REPLAY_ID.to_string(),
            knobs: Vec::new(),
        },
        point: None,
        series: SeriesRef::Region(REPLAY_REGION.to_string()),
        interpolate: true,
        years: 1,
    })
    .request_body()
    .to_json_string()
    .expect("replay request serializes");
    let replay_request = encode_request(QueryKind::Replay.path(), &replay_body);
    // The inverse-query mix: a constrained two-knob argmin on a cataloged
    // fleet — non-affine objective, so every request runs the search tier
    // through the worker pool rather than the O(1) analytic shortcut.
    let optimize_query = Query::Optimize(OptimizeRequest {
        scenario: ScenarioRef::Catalog {
            id: REPLAY_ID.to_string(),
            knobs: Vec::new(),
        },
        point: None,
        objective: Objective::MinRatio,
        search: vec![
            SearchKnob {
                axis: SweepAxis::Applications,
                min: 1.0,
                max: 12.0,
                integer: true,
            },
            SearchKnob {
                axis: SweepAxis::LifetimeYears,
                min: 0.5,
                max: 4.0,
                integer: false,
            },
        ],
        constraints: vec![Constraint::FpgaWins],
        tolerance: OptimizeRequest::DEFAULT_TOLERANCE,
        max_evals: OptimizeRequest::DEFAULT_MAX_EVALS,
    });
    let optimize_body = optimize_query
        .request_body()
        .to_json_string()
        .expect("optimize request serializes");
    let optimize_request = encode_request(QueryKind::Optimize.path(), &optimize_body);

    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        ..ServerConfig::default()
    })
    .expect("bind golden-capture server");
    let addr = server.local_addr();
    let handle = server.spawn();
    let mut stream = TcpStream::connect(addr).expect("connect for golden capture");
    stream.set_nodelay(true).expect("nodelay");

    let evaluate_goldens: Vec<Vec<u8>> = points
        .iter()
        .zip(&evaluate_requests)
        .map(|(&point, request)| {
            stream.write_all(request).expect("send capture request");
            let raw = read_framed(&mut stream).expect("capture response");
            let value = gf_json::parse(body_of(&raw)).expect("response is JSON");
            let response = EvaluateResponse::from_json(&value).expect("decode evaluate");
            let expected = compiled.evaluate(point).expect("golden evaluate");
            assert_eq!(
                response.comparison, expected,
                "served evaluate drifted from the direct engine call at {point:?}"
            );
            raw
        })
        .collect();
    stream
        .write_all(&batch_request)
        .expect("send batch capture");
    let batch_golden = read_framed(&mut stream).expect("capture batch response");
    let value = gf_json::parse(body_of(&batch_golden)).expect("batch response is JSON");
    let response = BatchEvalResponse::from_json(&value).expect("decode batch");
    let mut buffer = ResultBuffer::new();
    compiled
        .evaluate_into(&batch_points, &mut buffer)
        .expect("golden batch");
    let expected: Vec<PlatformComparison> = (0..batch_points.len())
        .map(|i| buffer.comparison(i))
        .collect();
    assert_eq!(
        response.comparisons, expected,
        "served batch drifted from the SoA kernel"
    );

    let scenario_goldens: Vec<Vec<u8>> = catalog()
        .iter()
        .zip(&scenario_requests)
        .map(|(entry, request)| {
            stream.write_all(request).expect("send scenario capture");
            let raw = read_framed(&mut stream).expect("capture scenario response");
            let value = gf_json::parse(body_of(&raw)).expect("scenario response is JSON");
            let response = ScenarioRunResponse::from_json(&value).expect("decode scenario");
            let expected = Estimator::new(entry.scenario.params())
                .compile(entry.scenario.domain)
                .expect("compile cataloged scenario")
                .evaluate(entry.point)
                .expect("golden scenario");
            assert_eq!(
                response.comparison, expected,
                "served scenario '{}' drifted from the direct engine call",
                entry.id
            );
            raw
        })
        .collect();

    stream
        .write_all(&replay_request)
        .expect("send replay capture");
    let replay_golden = read_framed(&mut stream).expect("capture replay response");
    let value = gf_json::parse(body_of(&replay_golden)).expect("replay response is JSON");
    let response = ReplayResponse::from_json(&value).expect("decode replay");
    let (_, fleet) = greenfpga::catalog_entry(REPLAY_ID).expect("cataloged fleet");
    let expected = CarbonIntensitySeries::region(REPLAY_REGION)
        .expect("region preset")
        .replay(
            &Estimator::new(fleet.scenario.params())
                .compile(fleet.scenario.domain)
                .expect("compile fleet scenario"),
            fleet.point,
            true,
        )
        .expect("golden replay");
    assert_eq!(
        response.replay, expected,
        "served replay drifted from the direct series replay"
    );

    stream
        .write_all(&optimize_request)
        .expect("send optimize capture");
    let optimize_golden = read_framed(&mut stream).expect("capture optimize response");
    // The served body must be byte-for-byte the engine's own encoding of
    // the same inverse query, and the typed decoder must accept it.
    let engine_body = Engine::with_defaults()
        .expect("engine for optimize golden")
        .run(&optimize_query)
        .expect("golden optimize")
        .result_json()
        .to_json_string()
        .expect("serialize optimize golden");
    assert_eq!(
        body_of(&optimize_golden),
        engine_body,
        "served optimize drifted from the direct engine solve"
    );
    OptimizeResponse::from_json(&gf_json::parse(body_of(&optimize_golden)).expect("optimize JSON"))
        .expect("decode optimize");
    handle.shutdown();

    Workload {
        evaluate_requests,
        evaluate_goldens,
        batch_request,
        batch_golden,
        scenario_requests,
        scenario_goldens,
        replay_request,
        replay_golden,
        optimize_request,
        optimize_golden,
    }
}

/// One pass's aggregate outcome.
struct PassResult {
    clients: usize,
    requests: usize,
    errors: u64,
    rps: f64,
    eval_p50: f64,
    eval_p99: f64,
    batch_p50: f64,
    batch_p99: f64,
    scenario_p50: f64,
    scenario_p99: f64,
    replay_p50: f64,
    replay_p99: f64,
    optimize_p50: f64,
    optimize_p99: f64,
}

/// Runs one load pass: a fresh server sized to `clients`, every client on
/// its own keep-alive connection, every response golden-matched.
fn run_pass(
    workload: &Workload,
    clients: usize,
    evaluate_total: usize,
    batch_total: usize,
    scenario_total: usize,
    replay_total: usize,
    optimize_total: usize,
) -> PassResult {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: clients,
        ..ServerConfig::default()
    })
    .expect("bind loopback server");
    let addr = server.local_addr();
    let handle = server.spawn();
    println!(
        "serve_load: {evaluate_total} evaluate + {batch_total} batch + {scenario_total} scenario + {replay_total} replay + {optimize_total} optimize requests over {clients} client(s) -> http://{addr}"
    );

    let started = Instant::now();
    let outcomes: Vec<ClientOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                // Spread the remainder so every request is issued.
                let evaluate_share =
                    evaluate_total / clients + usize::from(c < evaluate_total % clients);
                let batch_share = batch_total / clients + usize::from(c < batch_total % clients);
                let scenario_share =
                    scenario_total / clients + usize::from(c < scenario_total % clients);
                let replay_share = replay_total / clients + usize::from(c < replay_total % clients);
                let optimize_share =
                    optimize_total / clients + usize::from(c < optimize_total % clients);
                scope.spawn(move || {
                    run_client(
                        addr,
                        workload,
                        evaluate_share,
                        batch_share,
                        scenario_share,
                        replay_share,
                        optimize_share,
                        c * 7, // decorrelate the rotation between clients
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let wall = started.elapsed();
    handle.shutdown();

    let mut evaluate_latencies: Vec<u64> = outcomes
        .iter()
        .flat_map(|o| o.evaluate_latencies_ns.iter().copied())
        .collect();
    let mut batch_latencies: Vec<u64> = outcomes
        .iter()
        .flat_map(|o| o.batch_latencies_ns.iter().copied())
        .collect();
    let mut scenario_latencies: Vec<u64> = outcomes
        .iter()
        .flat_map(|o| o.scenario_latencies_ns.iter().copied())
        .collect();
    let mut replay_latencies: Vec<u64> = outcomes
        .iter()
        .flat_map(|o| o.replay_latencies_ns.iter().copied())
        .collect();
    let mut optimize_latencies: Vec<u64> = outcomes
        .iter()
        .flat_map(|o| o.optimize_latencies_ns.iter().copied())
        .collect();
    evaluate_latencies.sort_unstable();
    batch_latencies.sort_unstable();
    scenario_latencies.sort_unstable();
    replay_latencies.sort_unstable();
    optimize_latencies.sort_unstable();
    let errors: u64 = outcomes.iter().map(|o| o.errors).sum();
    // Every requested round-trip is issued (pipelined or probed), so the
    // pass total is exact even though only probes carry latency samples.
    let requests = evaluate_total + batch_total + scenario_total + replay_total + optimize_total;
    let rps = requests as f64 / wall.as_secs_f64();

    let result = PassResult {
        clients,
        requests,
        errors,
        rps,
        eval_p50: percentile_us(&evaluate_latencies, 0.50),
        eval_p99: percentile_us(&evaluate_latencies, 0.99),
        batch_p50: percentile_us(&batch_latencies, 0.50),
        batch_p99: percentile_us(&batch_latencies, 0.99),
        scenario_p50: percentile_us(&scenario_latencies, 0.50),
        scenario_p99: percentile_us(&scenario_latencies, 0.99),
        replay_p50: percentile_us(&replay_latencies, 0.50),
        replay_p99: percentile_us(&replay_latencies, 0.99),
        optimize_p50: percentile_us(&optimize_latencies, 0.50),
        optimize_p99: percentile_us(&optimize_latencies, 0.99),
    };
    println!(
        "serve_load: {requests} requests in {:.2}s -> {rps:.0} req/s, {errors} errors ({clients} client(s))",
        wall.as_secs_f64()
    );
    println!(
        "  evaluate latency p50 {:.1} us, p99 {:.1} us",
        result.eval_p50, result.eval_p99
    );
    println!(
        "  batch(64) latency p50 {:.1} us, p99 {:.1} us",
        result.batch_p50, result.batch_p99
    );
    println!(
        "  scenario latency p50 {:.1} us, p99 {:.1} us",
        result.scenario_p50, result.scenario_p99
    );
    println!(
        "  replay(8760) latency p50 {:.1} us, p99 {:.1} us",
        result.replay_p50, result.replay_p99
    );
    println!(
        "  optimize latency p50 {:.1} us, p99 {:.1} us",
        result.optimize_p50, result.optimize_p99
    );
    result
}

/// The soak outcome: how many concurrently-live connections were verified.
struct SoakResult {
    connections: usize,
    errors: u64,
}

/// The soak pass: parks `GF_SERVE_SOAK_CONNECTIONS` idle keep-alive
/// connections on one event loop (each verified with a golden round-trip
/// on open), runs active traffic from 8 more clients while they sit, then
/// re-verifies every idle connection still answers — proving idle
/// connections cost the server nothing but an fd and a slab slot, and that
/// traffic does not evict them.
fn run_soak(workload: &Workload, idle_target: usize) -> SoakResult {
    const ACTIVE_CLIENTS: usize = 8;
    const ACTIVE_REQUESTS_EACH: usize = 2_000;
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: ACTIVE_CLIENTS,
        max_connections: idle_target + 64,
        // Idle connections must survive the whole pass; the point is that
        // they are cheap, not that they are reaped.
        idle_timeout: Duration::from_secs(120),
        ..ServerConfig::default()
    })
    .expect("bind soak server");
    let addr = server.local_addr();
    let handle = server.spawn();
    println!(
        "serve_load: soak -> {idle_target} idle keep-alive connections + {ACTIVE_CLIENTS} active clients on http://{addr}"
    );

    let mut errors = 0u64;
    let started = Instant::now();
    let mut idle: Vec<RawClient> = Vec::with_capacity(idle_target);
    for i in 0..idle_target {
        match RawClient::connect(addr) {
            Ok(mut client) => {
                let index = i % workload.evaluate_requests.len();
                if !client.round_trip(
                    &workload.evaluate_requests[index],
                    &workload.evaluate_goldens[index],
                ) {
                    errors += 1;
                }
                idle.push(client);
            }
            Err(_) => errors += 1,
        }
    }
    println!(
        "serve_load: soak opened+verified {} connections in {:.2}s ({errors} errors)",
        idle.len(),
        started.elapsed().as_secs_f64()
    );

    // Active traffic while every idle connection stays parked.
    let active_outcomes: Vec<ClientOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..ACTIVE_CLIENTS)
            .map(|c| {
                scope.spawn(move || {
                    run_client(addr, workload, ACTIVE_REQUESTS_EACH, 0, 0, 0, 0, c * 7)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("soak client panicked"))
            .collect()
    });
    errors += active_outcomes.iter().map(|o| o.errors).sum::<u64>();

    // Every parked connection must still answer, byte-identically.
    for (i, client) in idle.iter_mut().enumerate() {
        let index = i % workload.evaluate_requests.len();
        if !client.round_trip(
            &workload.evaluate_requests[index],
            &workload.evaluate_goldens[index],
        ) {
            errors += 1;
        }
    }
    let connections = idle.len() + ACTIVE_CLIENTS;
    println!(
        "serve_load: soak held {connections} live connections ({} idle + {ACTIVE_CLIENTS} active), {} active requests, {errors} errors, {:.2}s total",
        idle.len(),
        ACTIVE_CLIENTS * ACTIVE_REQUESTS_EACH,
        started.elapsed().as_secs_f64()
    );
    drop(idle);
    handle.shutdown();
    SoakResult {
        connections,
        errors,
    }
}

/// Measures the cost of default-on tracing as a throughput ratio, by
/// paired slices: one server, one pipelined connection, alternating
/// traced/untraced request slices of a few milliseconds each (tracing
/// toggled through the same process-wide switch `GET /v1/trace`
/// reports). Each adjacent slice pair yields one traced÷untraced ratio;
/// the reported number is the median over all pairs, which a scheduling
/// burst on a shared host lands in one pair and the median discards —
/// whole-pass best-of comparisons at this granularity measure which side
/// caught the lucky window, not the tracing tax. Pair order flips each
/// round (ABBA) so linear drift cancels too.
fn run_trace_overhead(workload: &Workload, evaluate_total: usize, rounds: usize) -> f64 {
    /// Requests per timed slice: ~4-6ms of pipelined traffic, small
    /// against machine-noise bursts, large against toggle cost.
    const SLICE: usize = 500;
    let pairs = (evaluate_total * rounds / (2 * SLICE)).max(8);

    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        ..ServerConfig::default()
    })
    .expect("bind loopback server");
    let addr = server.local_addr();
    let handle = server.spawn();
    println!(
        "serve_load: trace overhead over {pairs} paired slices of {SLICE} requests -> http://{addr}"
    );
    let mut client = RawClient::connect(addr).expect("connect trace-overhead client");

    let mut errors = 0u64;
    let mut at = 0usize;
    let mut slice = |client: &mut RawClient, errors: &mut u64, traced: bool| -> f64 {
        gf_trace::set_enabled(traced);
        let start = Instant::now();
        *errors += client.pipeline(workload, at..at + SLICE);
        at += SLICE;
        start.elapsed().as_secs_f64()
    };
    // Untimed warm-up on both settings: connection, scenario cache and
    // branch predictors settle before anything counts.
    let _ = slice(&mut client, &mut errors, false);
    let _ = slice(&mut client, &mut errors, true);

    let mut ratios = Vec::with_capacity(pairs);
    let (mut traced_s, mut untraced_s) = (0.0f64, 0.0f64);
    for pair in 0..pairs {
        let (untraced, traced) = if pair % 2 == 0 {
            let u = slice(&mut client, &mut errors, false);
            let t = slice(&mut client, &mut errors, true);
            (u, t)
        } else {
            let t = slice(&mut client, &mut errors, true);
            let u = slice(&mut client, &mut errors, false);
            (u, t)
        };
        // Equal request counts per side: the throughput ratio is the
        // inverse time ratio.
        ratios.push(untraced / traced);
        traced_s += traced;
        untraced_s += untraced;
    }
    gf_trace::set_enabled(true);
    handle.shutdown();
    assert_eq!(errors, 0, "trace-overhead slices must stay error-free");

    ratios.sort_unstable_by(|a, b| a.partial_cmp(b).expect("slice ratios are finite"));
    let ratio = ratios[ratios.len() / 2];
    println!(
        "serve_load: trace overhead -> traced {:.0} req/s vs untraced {:.0} req/s aggregate, median pair ratio {ratio:.3}x",
        pairs as f64 * SLICE as f64 / traced_s,
        pairs as f64 * SLICE as f64 / untraced_s,
    );
    ratio
}

/// The saturation ladder: single client for the comparable baseline, then
/// moderate and heavy concurrency.
const CLIENT_COUNTS: [usize; 3] = [1, 4, 8];

fn main() {
    let evaluate_total = env_usize("GF_SERVE_LOAD_REQUESTS", 50_000);
    let batch_total = env_usize("GF_SERVE_LOAD_BATCHES", 500);
    let scenario_total = env_usize("GF_SERVE_LOAD_SCENARIOS", 2_000);
    let replay_total = env_usize("GF_SERVE_LOAD_REPLAYS", 200);
    let optimize_total = env_usize("GF_SERVE_LOAD_OPTIMIZE", 200);
    let soak_connections = env_usize("GF_SERVE_SOAK_CONNECTIONS", 4_096);

    let trace_requests = env_usize("GF_SERVE_TRACE_REQUESTS", 20_000);

    let workload = build_workload();
    let passes: Vec<PassResult> = CLIENT_COUNTS
        .iter()
        .map(|&clients| {
            run_pass(
                &workload,
                clients,
                evaluate_total,
                batch_total,
                scenario_total,
                replay_total,
                optimize_total,
            )
        })
        .collect();
    // Overhead before the soak: thousands of just-closed sockets leave
    // the kernel with cleanup work that would bleed into the paired
    // passes and swamp the percent-level signal being measured.
    let trace_overhead = run_trace_overhead(&workload, trace_requests, 5);
    let soak = run_soak(&workload, soak_connections);
    let single = &passes[0];
    let requests: usize = passes.iter().map(|p| p.requests).sum();
    let errors: u64 = passes.iter().map(|p| p.errors).sum::<u64>() + soak.errors;

    // Merge into the trajectory artifact: keep foreign keys, replace ours.
    // `serve_rps` and the latency percentiles are the 1-client pass, so they
    // stay comparable with pre-multi-client baselines; `serve_rps_<N>`
    // records the saturation ladder.
    let out = std::env::var("GF_BENCH_OUT").unwrap_or_else(|_| "BENCH_eval.json".to_string());
    let mut serve_metrics = vec![
        ("serve_requests".to_string(), requests as f64),
        ("serve_errors".to_string(), errors as f64),
        (
            "serve_clients".to_string(),
            *CLIENT_COUNTS.last().unwrap() as f64,
        ),
        ("serve_rps".to_string(), single.rps),
        ("serve_evaluate_p50_us".to_string(), single.eval_p50),
        ("serve_evaluate_p99_us".to_string(), single.eval_p99),
        ("serve_batch64_p50_us".to_string(), single.batch_p50),
        ("serve_batch64_p99_us".to_string(), single.batch_p99),
        ("serve_scenario_p50_us".to_string(), single.scenario_p50),
        ("serve_scenario_p99_us".to_string(), single.scenario_p99),
        ("serve_replay_p50_us".to_string(), single.replay_p50),
        ("serve_replay_p99_us".to_string(), single.replay_p99),
        ("serve_optimize_p50_us".to_string(), single.optimize_p50),
        ("serve_optimize_p99_us".to_string(), single.optimize_p99),
        ("serve_connections".to_string(), soak.connections as f64),
        ("trace_overhead".to_string(), trace_overhead),
    ];
    for pass in &passes {
        serve_metrics.push((format!("serve_rps_{}", pass.clients), pass.rps));
    }
    // A present-but-unparseable artifact must abort, not be silently
    // replaced — in CI that file holds the kernel metrics the bench step
    // just produced, and dropping them would starve the gate.
    let mut merged: Vec<(String, Option<f64>)> = match std::fs::read_to_string(&out) {
        Ok(text) => parse_metrics_json(&text)
            .unwrap_or_else(|e| panic!("existing {out} is not a metrics artifact: {e}")),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => panic!("read {out}: {e}"),
    };
    merged.retain(|(key, _)| !key.starts_with("serve_") && key != "trace_overhead");
    for (key, value) in serve_metrics {
        merged.push((key, Some(value)));
    }
    let members: Vec<(String, Value)> = merged
        .into_iter()
        .map(|(key, value)| {
            let rendered = match value {
                Some(v) if v.is_finite() => Value::Number(v),
                _ => Value::Null,
            };
            (key, rendered)
        })
        .collect();
    let json = Value::Object(members)
        .to_json_string_pretty()
        .expect("metrics serialize");
    std::fs::write(&out, &json).expect("write bench json");
    println!("merged serve metrics into {out}");

    if std::env::var_os("GF_BENCH_NO_ASSERT").is_none() {
        assert_eq!(errors, 0, "load run must complete with zero errors");
        assert!(
            requests >= 50_000,
            "load run issued {requests} requests, below the 50k acceptance bar"
        );
        assert!(
            passes.iter().all(|pass| pass.rps > 0.0),
            "every client count must sustain positive throughput"
        );
        assert!(
            soak.connections >= soak_connections,
            "soak verified {} live connections, below the {} target",
            soak.connections,
            soak_connections
        );
        assert!(
            trace_overhead.is_finite() && trace_overhead > 0.0,
            "trace overhead ratio must be a positive finite number, got {trace_overhead}"
        );
    }
}

//! Strongly-typed quantities for the GreenFPGA carbon-footprint model.
//!
//! Carbon accounting mixes many scalar quantities — kilograms of CO₂
//! equivalent, kilowatt-hours, watts, square millimetres, years, counts of
//! chips and counts of logic gates. Mixing them up silently is the easiest
//! way to produce a plausible-looking but wrong carbon model, so this crate
//! gives each quantity its own newtype and only implements the arithmetic
//! that is physically meaningful:
//!
//! * [`Power`] × [`TimeSpan`] → [`Energy`]
//! * [`Energy`] × [`CarbonIntensity`] → [`Carbon`]
//! * [`Area`] × [`CarbonPerArea`] → [`Carbon`]
//! * [`Mass`] × [`CarbonPerMass`] → [`Carbon`]
//!
//! # Examples
//!
//! ```
//! use gf_units::{Power, TimeSpan, CarbonIntensity};
//!
//! // A 160 W FPGA running one year on a 400 gCO2/kWh grid:
//! let energy = Power::from_watts(160.0) * TimeSpan::from_years(1.0);
//! let carbon = energy * CarbonIntensity::from_grams_per_kwh(400.0);
//! assert!((carbon.as_kg() - 560.64).abs() < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod area;
mod carbon;
mod count;
mod energy;
mod error;
mod fraction;
mod intensity;
mod mass;
mod power;
mod time;

pub use area::{Area, CarbonPerArea};
pub use carbon::Carbon;
pub use count::{ChipCount, GateCount};
pub use energy::Energy;
pub use error::UnitError;
pub use fraction::Fraction;
pub use intensity::CarbonIntensity;
pub use mass::{CarbonPerMass, Mass};
pub use power::Power;
pub use time::TimeSpan;

/// Hours in a Julian year; used consistently for converting yearly durations
/// into operating hours (`365.25 * 24`).
pub const HOURS_PER_YEAR: f64 = 8766.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_times_time_is_energy() {
        let e = Power::from_watts(1000.0) * TimeSpan::from_hours(1.0);
        assert!((e.as_kwh() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn full_chain_dimensional_consistency() {
        // 1 kW for 1000 hours on a 1 kg/kWh grid is exactly 1000 kg CO2e.
        let e = Power::from_kilowatts(1.0) * TimeSpan::from_hours(1000.0);
        let c = e * CarbonIntensity::from_kg_per_kwh(1.0);
        assert!((c.as_kg() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn hours_per_year_matches_timespan() {
        assert!((TimeSpan::from_years(1.0).as_hours() - HOURS_PER_YEAR).abs() < 1e-9);
    }
}

//! Table 2: iso-performance FPGA testcases — area and power normalized to
//! the ASIC implementation for each domain — plus the calibrated absolute
//! reference implementations this reproduction anchors them to.

use greenfpga::{render_table, Domain};

fn main() -> Result<(), greenfpga::GreenFpgaError> {
    let mut ratio_rows = Vec::new();
    let mut calibration_rows = Vec::new();
    for domain in Domain::ALL {
        let ratios = domain.iso_performance_ratios();
        ratio_rows.push(vec![
            domain.to_string(),
            format!("{:.2}", ratios.area),
            format!("{:.2}", ratios.power),
        ]);

        let cal = domain.calibration();
        let asic = cal.asic_spec()?;
        let fpga = cal.fpga_spec()?;
        calibration_rows.push(vec![
            domain.to_string(),
            format!("{}", asic.chip().area()),
            format!("{}", asic.chip().tdp()),
            format!("{}", fpga.chip().area()),
            format!("{}", fpga.chip().tdp()),
            cal.node.to_string(),
        ]);
    }

    println!("Table 2 — FPGA testcases at iso-performance with the ASIC (normalized):");
    println!(
        "{}",
        render_table(
            &["Testcase", "Area (norm. to ASIC)", "Power (norm. to ASIC)"],
            &ratio_rows
        )
    );

    println!("Calibrated absolute reference implementations (see DESIGN.md):");
    println!(
        "{}",
        render_table(
            &[
                "Domain",
                "ASIC area",
                "ASIC power",
                "FPGA area",
                "FPGA power",
                "Node"
            ],
            &calibration_rows
        )
    );
    Ok(())
}

//! Request routing: JSON in, engine call, JSON out.
//!
//! The dispatch table ([`route_table`]) is the single source of route
//! identity: every `POST /v1/<kind>` entry is derived from
//! [`QueryKind::ALL`], the metrics registry builds its labels from the same
//! table, and [`route_index`] positions a request against it — so adding a
//! query kind to the core enum makes it servable *and* metered with no
//! server-side list to update.
//!
//! Every query handler decodes the typed request from [`greenfpga::api`],
//! runs it through the shared [`greenfpga::Engine`] — the **same**
//! facade a library user or the CLI calls — and encodes the typed
//! response, so a served response is bit-identical to a local call by
//! construction. Failures speak the [`ApiError`] taxonomy, mapped to HTTP
//! status via [`ApiError::http_status`].

use std::sync::OnceLock;

use gf_json::{object, ToJson, Value};
use greenfpga::api::QueryKind;
use greenfpga::{ApiError, ResultBuffer};

use crate::http::Request;
use crate::ServerState;

/// What a dispatch-table entry serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Endpoint {
    /// `GET /healthz`: liveness, version, uptime.
    Healthz,
    /// `GET /v1/metrics`: the observability snapshot.
    Metrics,
    /// `POST /v1/<kind>`: one engine query.
    Query(QueryKind),
}

/// One dispatch-table entry.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Route {
    /// HTTP method the entry answers.
    pub method: &'static str,
    /// Exact request path.
    pub path: &'static str,
    /// What it serves.
    pub endpoint: Endpoint,
}

/// The dispatch table: the two `GET` endpoints followed by one `POST`
/// route per [`QueryKind`], in [`QueryKind::ALL`] order. Built once.
pub(crate) fn route_table() -> &'static [Route] {
    static TABLE: OnceLock<Vec<Route>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = vec![
            Route {
                method: "GET",
                path: "/healthz",
                endpoint: Endpoint::Healthz,
            },
            Route {
                method: "GET",
                path: "/v1/metrics",
                endpoint: Endpoint::Metrics,
            },
        ];
        table.extend(QueryKind::ALL.into_iter().map(|kind| Route {
            method: "POST",
            path: kind.path(),
            endpoint: Endpoint::Query(kind),
        }));
        table
    })
}

/// The metrics-registry index of a request — its dispatch-table position,
/// falling back to the trailing bucket for unknown paths and methods.
pub(crate) fn route_index(method: &str, path: &str) -> usize {
    route_table()
        .iter()
        .position(|route| route.method == method && route.path == path)
        .unwrap_or(usize::MAX)
}

/// Whether a request should run on the worker pool instead of inline on
/// the event loop. Point lookups finish in single-digit microseconds —
/// handing them to another thread costs more than answering them — while
/// the fan-out kinds can burn milliseconds and would stall every other
/// connection if they ran on the loop.
pub(crate) fn offloads(method: &str, path: &str) -> bool {
    route_table()
        .iter()
        .find(|route| route.method == method && route.path == path)
        .is_some_and(|route| match route.endpoint {
            Endpoint::Query(kind) => matches!(
                kind,
                QueryKind::Batch
                    | QueryKind::Sweep
                    | QueryKind::Grid
                    | QueryKind::Frontier
                    | QueryKind::Tornado
                    | QueryKind::MonteCarlo
            ),
            Endpoint::Healthz | Endpoint::Metrics => false,
        })
}

/// Routes one request. Returns `(status, body)`; the body is always JSON.
pub(crate) fn handle(
    state: &ServerState,
    buffer: &mut ResultBuffer,
    request: &Request,
) -> (u16, String) {
    match dispatch(state, buffer, request) {
        Ok(value) => match value.to_json_string() {
            Ok(body) => (200, body),
            Err(e) => {
                let error = ApiError::internal(format!("response serialization failed: {e}"));
                (error.http_status(), error_body(&error))
            }
        },
        Err(error) => (error.http_status(), error_body(&error)),
    }
}

/// Finds the dispatch-table entry for a request and runs it.
fn dispatch(
    state: &ServerState,
    buffer: &mut ResultBuffer,
    request: &Request,
) -> Result<Value, ApiError> {
    let entry = route_table()
        .iter()
        .find(|route| route.path == request.path)
        .ok_or_else(|| {
            ApiError::not_found(format!("no route for {} {}", request.method, request.path))
        })?;
    if entry.method != request.method {
        return Err(ApiError::method_not_allowed(format!(
            "{} only supports {}",
            entry.path, entry.method
        )));
    }
    match entry.endpoint {
        Endpoint::Healthz => Ok(healthz(state)),
        Endpoint::Metrics => Ok(metrics(state)),
        Endpoint::Query(kind) => {
            let body = parse_body(state, request)?;
            let query = kind.decode_request(&body)?;
            let outcome = state.engine.run_with_buffer(&query, buffer)?;
            Ok(outcome.result_json())
        }
    }
}

/// Parses the request body (bounded by the transport's body limit, plus
/// the JSON parser's own depth limit).
fn parse_body(state: &ServerState, request: &Request) -> Result<Value, ApiError> {
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| ApiError::bad_request("body is not UTF-8"))?;
    let limits = gf_json::ParseLimits {
        max_bytes: state.config.max_body_bytes,
        ..gf_json::ParseLimits::default()
    };
    Ok(gf_json::parse_with(text, limits)?)
}

/// Encodes an [`ApiError`] as the JSON error body.
pub(crate) fn error_body(error: &ApiError) -> String {
    error
        .to_json()
        .to_json_string()
        .unwrap_or_else(|_| "{\"error\":{\"code\":\"internal\"}}".to_string())
}

/// Builds the error body for a protocol-level rejection raised by the HTTP
/// reader (bad request line, oversized head/body, ...). The transport
/// keeps its specific status (`413`, `431`, ...); the body carries the
/// canonical `protocol` code.
pub(crate) fn protocol_error_body(message: &str) -> String {
    error_body(&ApiError::protocol(message))
}

/// Builds the `503` body the connection governor answers with when the
/// server is at capacity.
pub(crate) fn overload_error_body() -> String {
    error_body(&ApiError::overloaded(
        "server is at capacity; retry after the Retry-After delay",
    ))
}

fn healthz(state: &ServerState) -> Value {
    // Liveness only: cache and request counters live in `/v1/metrics`.
    object([
        ("status", Value::from("ok")),
        ("version", Value::from(env!("CARGO_PKG_VERSION"))),
        (
            "uptime_seconds",
            Value::Number(state.started.elapsed().as_secs_f64()),
        ),
        ("workers", Value::from(state.config.workers_resolved())),
    ])
}

fn metrics(state: &ServerState) -> Value {
    use std::sync::atomic::Ordering;
    greenfpga::api::MetricsResponse {
        requests_served: state.requests.load(Ordering::Relaxed),
        connections_live: state.live_connections.load(Ordering::SeqCst) as u64,
        connections_max: state.config.max_connections as u64,
        connections_rejected: state.metrics.rejected.load(Ordering::Relaxed),
        routes: state.metrics.snapshot_routes(),
        cache_shards: state.engine.cache_shard_metrics(),
    }
    .to_json()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_query_kind_is_in_the_dispatch_table() {
        for kind in QueryKind::ALL {
            let index = route_index("POST", kind.path());
            let entry = &route_table()[index];
            assert_eq!(entry.endpoint, Endpoint::Query(kind), "{kind}");
            assert_eq!(entry.method, "POST");
        }
        assert!(route_index("GET", "/healthz") < route_table().len());
        assert!(route_index("GET", "/v1/metrics") < route_table().len());
        // Unknown requests clamp to the fallback bucket downstream.
        assert_eq!(route_index("GET", "/nope"), usize::MAX);
        assert_eq!(route_index("PATCH", "/healthz"), usize::MAX);
    }
}

//! The batch-evaluation engine: compiled scenarios plus parallel fan-out.
//!
//! Every analysis in this crate — the Figs. 4–6 sweeps, the Fig. 8 heatmap
//! grids, the tornado sensitivity pass and the Monte-Carlo uncertainty study
//! — evaluates the same Eq. (1)–(3) model at thousands to millions of
//! operating points. The naive path ([`Estimator::compare_uniform`]) rebuilds
//! the domain calibration for every point: chip specs (with freshly
//! formatted name strings), the manufacturing model, the design project and
//! a `Vec<Application>` per evaluation. None of that depends on the
//! operating point.
//!
//! [`CompiledScenario::compile`] resolves a domain's calibration against one
//! parameter set **once** — the one-time design carbon, the per-chip
//! (manufacturing, packaging, end-of-life) triple, the deployment power
//! profile and the application-development model for both platforms — after
//! which [`CompiledScenario::evaluate`] costs a handful of multiplies per
//! point. The arithmetic intentionally mirrors the naive path operation for
//! operation (including the per-application accumulation loop), so compiled
//! results are bit-identical to [`Estimator::compare_uniform`] for uniform
//! workloads; golden tests in `tests/` hold the two paths to ≤1e-12
//! relative error.
//!
//! [`Estimator::evaluate_batch`] adds the parallel fan-out: a
//! [`BatchRequest`] is compiled once and its points are spread over the
//! work-stealing pool in [`crate::exec`], deterministically with respect to
//! thread count.

use gf_act::TechnologyNode;
use gf_lifecycle::{AppDevModel, DesignProject, DevelopmentFlow, OperationProfile};
use gf_units::{Area, Carbon, Mass, Power, TimeSpan};

use crate::{
    exec, CfpBreakdown, Domain, Estimator, EstimatorParams, GreenFpgaError, OperatingPoint,
    PlatformComparison,
};

/// One platform of a domain calibration with every point-independent
/// quantity pre-resolved.
///
/// Holds only `Copy` data (precomputed carbons plus the small closed-form
/// operation and app-dev models), so it is free to share across the worker
/// threads of a batch evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompiledPlatform {
    design: Carbon,
    manufacturing_per_chip: Carbon,
    packaging_per_chip: Carbon,
    eol_per_chip: Carbon,
    chips_per_unit: u64,
    profile: OperationProfile,
    appdev: AppDevModel,
    flow: DevelopmentFlow,
}

impl CompiledPlatform {
    /// One-time design carbon (`C_des`, Eq. 4) of this platform's chip.
    pub fn design(&self) -> Carbon {
        self.design
    }

    /// Per-manufactured-chip hardware carbon: manufacturing + packaging +
    /// end-of-life.
    pub fn hardware_per_chip(&self) -> Carbon {
        self.manufacturing_per_chip + self.packaging_per_chip + self.eol_per_chip
    }

    /// Chips needed per deployed unit (`N_FPGA` for the FPGA platform, 1 for
    /// the ASIC).
    pub fn chips_per_unit(&self) -> u64 {
        self.chips_per_unit
    }

    /// Embodied breakdown for a fleet of `chips` devices: the one-time
    /// design carbon plus `chips` × the per-chip triple.
    pub fn embodied(&self, chips: f64) -> CfpBreakdown {
        CfpBreakdown {
            design: self.design,
            manufacturing: self.manufacturing_per_chip * chips,
            packaging: self.packaging_per_chip * chips,
            eol: self.eol_per_chip * chips,
            ..CfpBreakdown::ZERO
        }
    }

    /// Deployment breakdown of one application living `lifetime` on
    /// `devices` devices: field operation plus application development.
    pub fn deployment(&self, lifetime: TimeSpan, devices: u64) -> CfpBreakdown {
        CfpBreakdown {
            operation: self.profile.carbon_over(lifetime) * devices as f64,
            app_dev: self.appdev.carbon(self.flow, 1, devices),
            ..CfpBreakdown::ZERO
        }
    }

    /// Average draw of one deployed device in kilowatts: peak power ×
    /// duty cycle. The time-series replay path multiplies this by each
    /// step's energy-weighted grid intensity where the scalar path uses
    /// the compiled `usage_grid` constant.
    pub fn average_power_kw(&self) -> f64 {
        self.profile.average_power().as_kilowatts()
    }

    /// Field-operation carbon of one deployed device per year of lifetime
    /// (kg CO₂e / device·year). Operation is linear in the lifetime, so this
    /// single rate determines the whole operational term — the slope the
    /// closed-form crossover solver ([`CompiledScenario::totals_affine`])
    /// builds on.
    pub fn operation_kg_per_device_year(&self) -> f64 {
        self.profile.carbon_over(TimeSpan::from_years(1.0)).as_kg()
    }

    /// Per-application application-development carbon excluding the
    /// per-device configuration term (kg CO₂e): the `N_app × (T_FE + T_BE)`
    /// share of Eq. (7). Zero for the ASIC's software flow.
    pub fn appdev_per_application_kg(&self) -> f64 {
        self.appdev.carbon(self.flow, 1, 0).as_kg()
    }

    /// Per-device configuration carbon of one application deployment
    /// (kg CO₂e): the `N_vol × T_config` share of Eq. (7). Zero for the
    /// ASIC's software flow.
    pub fn appdev_per_device_kg(&self) -> f64 {
        self.appdev.carbon(self.flow, 0, 1).as_kg()
    }
}

/// The parameter-independent half of a domain compilation: everything the
/// calibration determines on its own (chip geometry, design projects, fleet
/// sizing), with the name-string allocation of spec construction already
/// paid.
///
/// Analyses that re-evaluate the model under *many different parameter
/// sets* — Monte-Carlo trials, tornado probes — build one template per
/// domain and call [`ScenarioTemplate::compile`] per parameter set, which
/// is pure arithmetic: no strings, no vectors, no spec rebuilding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioTemplate {
    domain: Domain,
    fpga: PlatformTemplate,
    asic: PlatformTemplate,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct PlatformTemplate {
    project: DesignProject,
    node: TechnologyNode,
    area: Area,
    tdp: Power,
    packaged_mass: Mass,
    chips_per_unit: u64,
    /// `Some` for the FPGA flow (per-device reconfiguration applies).
    config_time: Option<TimeSpan>,
    flow: DevelopmentFlow,
}

impl ScenarioTemplate {
    /// Resolves the parameter-independent half of `domain`'s calibration.
    ///
    /// # Errors
    ///
    /// Propagates calibration errors (degenerate staffing or geometry); the
    /// built-in calibrations never trigger them.
    pub fn new(domain: Domain) -> Result<Self, GreenFpgaError> {
        let calibration = domain.calibration();
        let fpga_spec = calibration.fpga_spec()?;
        let asic_spec = calibration.asic_spec()?;
        Ok(ScenarioTemplate {
            domain,
            fpga: PlatformTemplate {
                project: calibration.fpga_staffing.project_for(fpga_spec.chip())?,
                node: fpga_spec.chip().node(),
                area: fpga_spec.chip().area(),
                tdp: fpga_spec.chip().tdp(),
                packaged_mass: fpga_spec.chip().packaged_mass(),
                chips_per_unit: fpga_spec.fpgas_for_application(calibration.reference_asic_gates()),
                config_time: Some(fpga_spec.configuration_time()),
                flow: DevelopmentFlow::FpgaHardware,
            },
            asic: PlatformTemplate {
                project: calibration.asic_staffing.project_for(asic_spec.chip())?,
                node: asic_spec.chip().node(),
                area: asic_spec.chip().area(),
                tdp: asic_spec.chip().tdp(),
                packaged_mass: asic_spec.chip().packaged_mass(),
                chips_per_unit: 1,
                config_time: None,
                flow: DevelopmentFlow::AsicSoftware,
            },
        })
    }

    /// The templated domain.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// Finishes the compilation against one parameter set. Pure arithmetic
    /// — this is the only per-trial cost a Monte-Carlo run pays besides the
    /// model evaluation itself.
    ///
    /// # Errors
    ///
    /// Propagates manufacturing-model errors (degenerate die area); the
    /// built-in calibrations never trigger them.
    pub fn compile(&self, params: &EstimatorParams) -> Result<CompiledScenario, GreenFpgaError> {
        let compile_platform = |t: &PlatformTemplate| -> Result<CompiledPlatform, GreenFpgaError> {
            let appdev = match t.config_time {
                Some(config_time) => params.appdev().with_config_time(config_time),
                None => *params.appdev(),
            };
            Ok(CompiledPlatform {
                design: params.design_house().design_carbon(&t.project),
                manufacturing_per_chip: params
                    .manufacturing_model(t.node)
                    .carbon_per_die(t.area)?,
                packaging_per_chip: params.packaging().carbon_for_die(t.area),
                eol_per_chip: params.eol_model().carbon_per_chip(t.packaged_mass),
                chips_per_unit: t.chips_per_unit,
                profile: OperationProfile::new(
                    t.tdp,
                    params.deployment().duty_cycle,
                    params.deployment().usage_grid,
                ),
                appdev,
                flow: t.flow,
            })
        };
        Ok(CompiledScenario {
            domain: self.domain,
            fpga: compile_platform(&self.fpga)?,
            asic: compile_platform(&self.asic)?,
        })
    }
}

/// A domain calibration compiled against one [`EstimatorParams`], ready for
/// cheap repeated evaluation at arbitrary operating points.
///
/// # Examples
///
/// ```
/// use greenfpga::{CompiledScenario, Domain, Estimator, OperatingPoint};
///
/// let estimator = Estimator::default();
/// let compiled = estimator.compile(Domain::Dnn)?;
/// let point = OperatingPoint::paper_default();
/// let fast = compiled.evaluate(point)?;
/// let slow = estimator.compare_uniform(
///     Domain::Dnn, point.applications, point.lifetime_years, point.volume)?;
/// assert_eq!(fast.fpga.total(), slow.fpga.total());
/// assert_eq!(fast.asic.total(), slow.asic.total());
/// # Ok::<(), greenfpga::GreenFpgaError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompiledScenario {
    domain: Domain,
    fpga: CompiledPlatform,
    asic: CompiledPlatform,
}

impl CompiledScenario {
    /// Resolves `domain`'s calibration against `params`.
    ///
    /// This is the only expensive step of the batch engine: it builds the
    /// chip specs, design projects and manufacturing models exactly once,
    /// where the naive path rebuilds them for every operating point.
    ///
    /// # Errors
    ///
    /// Propagates calibration and model errors (degenerate staffing or die
    /// area); the built-in calibrations never trigger them.
    pub fn compile(params: &EstimatorParams, domain: Domain) -> Result<Self, GreenFpgaError> {
        ScenarioTemplate::new(domain)?.compile(params)
    }

    /// The compiled domain.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// The compiled FPGA platform.
    pub fn fpga(&self) -> &CompiledPlatform {
        &self.fpga
    }

    /// The compiled ASIC platform.
    pub fn asic(&self) -> &CompiledPlatform {
        &self.asic
    }

    /// Evaluates the uniform-workload comparison at one operating point.
    ///
    /// Mirrors [`Estimator::compare_uniform`] operation for operation —
    /// including the per-application accumulation loop — so the result is
    /// bit-identical to the naive path.
    ///
    /// # Errors
    ///
    /// Returns the same validation errors as [`crate::Workload::uniform`]:
    /// [`GreenFpgaError::EmptyWorkload`] for zero applications and
    /// [`GreenFpgaError::InvalidApplication`] for a negative / non-finite
    /// lifetime or zero volume.
    pub fn evaluate(&self, point: OperatingPoint) -> Result<PlatformComparison, GreenFpgaError> {
        let lifetime = self.validate(point)?;
        let (fpga, asic) = self.totals(point, lifetime);
        Ok(PlatformComparison::new(self.domain, fpga, asic))
    }

    /// Validates an operating point, returning its lifetime as a
    /// [`TimeSpan`] on success.
    fn validate(&self, point: OperatingPoint) -> Result<TimeSpan, GreenFpgaError> {
        if point.applications == 0 {
            return Err(GreenFpgaError::EmptyWorkload);
        }
        let lifetime = TimeSpan::from_years(point.lifetime_years);
        if lifetime.is_negative() || !lifetime.is_finite() {
            return Err(GreenFpgaError::InvalidApplication {
                field: "lifetime",
                reason: format!("lifetime must be non-negative and finite, got {lifetime}"),
            });
        }
        if point.volume == 0 {
            return Err(GreenFpgaError::InvalidApplication {
                field: "volume",
                reason: "application volume must be at least one device".to_string(),
            });
        }
        Ok(lifetime)
    }

    /// The model arithmetic shared by [`CompiledScenario::evaluate`] and the
    /// SoA kernel ([`CompiledScenario::evaluate_into`]); `point` must have
    /// passed [`CompiledScenario::validate`]. One function so every batch
    /// path is bit-identical to the naive estimator by construction.
    fn totals(&self, point: OperatingPoint, lifetime: TimeSpan) -> (CfpBreakdown, CfpBreakdown) {
        // FPGA (Eq. 2): embodied once for a fleet sized to the (uniform)
        // applications, then one deployment term per application.
        let fpga_devices = point.volume * self.fpga.chips_per_unit;
        let mut fpga = self.fpga.embodied(fpga_devices as f64);
        let fpga_deployment = self.fpga.deployment(lifetime, fpga_devices);
        for _ in 0..point.applications {
            fpga += fpga_deployment;
        }

        // ASIC (Eq. 1): every application pays a fresh embodied cost plus
        // its own deployment.
        let asic_embodied = self.asic.embodied(point.volume as f64);
        let asic_deployment = self.asic.deployment(lifetime, point.volume);
        let mut asic = CfpBreakdown::ZERO;
        for _ in 0..point.applications {
            asic += asic_embodied;
            asic += asic_deployment;
        }

        (fpga, asic)
    }

    /// The fused per-application schedule of [`CompiledScenario::totals`]
    /// — the two accumulation loops interleaved — kept as the scalar
    /// reference the kernel property tests compare the tile kernel
    /// against, byte for byte. Bit-identical to the reference schedule:
    /// every accumulator component still sees exactly the same additions
    /// in the same order.
    #[cfg(test)]
    fn totals_kernel(
        &self,
        point: OperatingPoint,
        lifetime: TimeSpan,
    ) -> (CfpBreakdown, CfpBreakdown) {
        let fpga_devices = point.volume * self.fpga.chips_per_unit;
        let mut fpga = self.fpga.embodied(fpga_devices as f64);
        let fpga_deployment = self.fpga.deployment(lifetime, fpga_devices);
        let asic_embodied = self.asic.embodied(point.volume as f64);
        let asic_deployment = self.asic.deployment(lifetime, point.volume);
        let mut asic = CfpBreakdown::ZERO;
        for _ in 0..point.applications {
            fpga += fpga_deployment;
            asic += asic_embodied;
            asic += asic_deployment;
        }
        (fpga, asic)
    }

    /// FPGA:ASIC total-CFP ratio at one operating point.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CompiledScenario::evaluate`].
    pub fn ratio(&self, point: OperatingPoint) -> Result<f64, GreenFpgaError> {
        Ok(self.evaluate(point)?.fpga_to_asic_ratio())
    }

    /// Evaluates a slice of operating points into a reusable
    /// structure-of-arrays buffer — the zero-allocation batch kernel.
    ///
    /// After the buffer's first use at a given size, repeated calls perform
    /// **no heap allocation at all**: no per-point `Vec`, no
    /// `PlatformComparison` collection, no index-keyed reassembly. Workers
    /// write their contiguous chunk of every column in place. Results are
    /// bit-identical to [`CompiledScenario::evaluate`] point by point and
    /// independent of the thread count.
    ///
    /// # Errors
    ///
    /// Returns the point-validation error with the lowest index (same
    /// conditions as [`CompiledScenario::evaluate`]); the buffer's contents
    /// are unspecified in that case.
    pub fn evaluate_into(
        &self,
        points: &[OperatingPoint],
        out: &mut ResultBuffer,
    ) -> Result<(), GreenFpgaError> {
        let tile = soa_tile().clamp(1, SOA_TILE_MAX);
        // One span per batch call (aux = point count), not per tile: a
        // million-point batch would otherwise overwrite the whole ring
        // with 64-point tile entries.
        let batch_from = if gf_trace::enabled() {
            gf_trace::now_ticks()
        } else {
            0
        };
        out.prepare(self.domain, points.len());
        let (fpga_cols, asic_cols) = out.columns_mut();
        let result = exec::try_fill_chunked(
            points.len(),
            0,
            (fpga_cols, asic_cols),
            &|start,
              len,
              (mut fpga_chunk, mut asic_chunk): (SoaChunksMut<'_>, SoaChunksMut<'_>)| {
                // Same tiling as `evaluate_indexed_into_with_tile`, minus the
                // per-point gather: tiles borrow the caller's slice directly.
                let mut scratch = TileScratch::new();
                let mut at = 0;
                while at < len {
                    let tile_len = tile.min(len - at);
                    let (mut fpga_tile, fpga_rest) = fpga_chunk.split_at_mut(tile_len);
                    let (mut asic_tile, asic_rest) = asic_chunk.split_at_mut(tile_len);
                    fpga_chunk = fpga_rest;
                    asic_chunk = asic_rest;
                    if let Err((t, e)) = self.evaluate_tile(
                        &points[start + at..start + at + tile_len],
                        &mut scratch,
                        &mut fpga_tile,
                        &mut asic_tile,
                    ) {
                        return Some((start + at + t, e));
                    }
                    at += tile_len;
                }
                None
            },
        );
        if batch_from != 0 {
            gf_trace::record_span_at(
                gf_trace::SpanName::TileBatch,
                batch_from,
                gf_trace::now_ticks().saturating_sub(batch_from),
                points.len() as u64,
            );
        }
        result
    }

    /// [`CompiledScenario::evaluate_into`] with the points produced by an
    /// index function instead of a slice, so grid-shaped batches need not
    /// materialize their lattice, plus an explicit worker-thread count
    /// (`0` = auto).
    ///
    /// # Errors
    ///
    /// Same conditions as [`CompiledScenario::evaluate_into`].
    pub fn evaluate_indexed_into(
        &self,
        n: usize,
        point_of: impl Fn(usize) -> OperatingPoint + Sync,
        out: &mut ResultBuffer,
        threads: usize,
    ) -> Result<(), GreenFpgaError> {
        self.evaluate_indexed_into_with_tile(n, point_of, out, threads, soa_tile())
    }

    /// [`CompiledScenario::evaluate_indexed_into`] with an explicit tile
    /// size, the hook the autotuner and the tile-size property tests use.
    /// Results are bit-identical for every tile size: grouping changes
    /// which points share a lane group, never the per-point add sequence.
    fn evaluate_indexed_into_with_tile(
        &self,
        n: usize,
        point_of: impl Fn(usize) -> OperatingPoint + Sync,
        out: &mut ResultBuffer,
        threads: usize,
        tile: usize,
    ) -> Result<(), GreenFpgaError> {
        let tile = tile.clamp(1, SOA_TILE_MAX);
        let batch_from = if gf_trace::enabled() {
            gf_trace::now_ticks()
        } else {
            0
        };
        out.prepare(self.domain, n);
        let (fpga_cols, asic_cols) = out.columns_mut();
        let result = exec::try_fill_chunked(n, threads, (fpga_cols, asic_cols), &|start,
                                                                                  len,
                                                                                  (
            mut fpga_chunk,
            mut asic_chunk,
        ): (
            SoaChunksMut<'_>,
            SoaChunksMut<'_>,
        )| {
            // The chunk is processed in tiles: gather the points, run
            // the hot evaluation loop in [`CompiledScenario::evaluate_tile`]
            // (a plain method, so its codegen is as tight as the scalar
            // `evaluate` path instead of being pessimized inside this
            // generic closure), then flush each staged column with one
            // contiguous copy. Writing the 12 output columns
            // point-by-point interleaved 12 strided, bounds-checked
            // store streams — the regression `bench eval` caught as
            // `soa_speedup < 1`.
            let mut points = [OperatingPoint::paper_default(); SOA_TILE_MAX];
            let mut scratch = TileScratch::new();
            let mut at = 0;
            while at < len {
                let tile_len = tile.min(len - at);
                for (t, slot) in points[..tile_len].iter_mut().enumerate() {
                    *slot = point_of(start + at + t);
                }
                let (mut fpga_tile, fpga_rest) = fpga_chunk.split_at_mut(tile_len);
                let (mut asic_tile, asic_rest) = asic_chunk.split_at_mut(tile_len);
                fpga_chunk = fpga_rest;
                asic_chunk = asic_rest;
                if let Err((t, e)) = self.evaluate_tile(
                    &points[..tile_len],
                    &mut scratch,
                    &mut fpga_tile,
                    &mut asic_tile,
                ) {
                    return Some((start + at + t, e));
                }
                at += tile_len;
            }
            None
        });
        if batch_from != 0 {
            gf_trace::record_span_at(
                gf_trace::SpanName::TileBatch,
                batch_from,
                gf_trace::now_ticks().saturating_sub(batch_from),
                n as u64,
            );
        }
        result
    }

    /// Evaluates `n` indexed points in bounded memory: the index space is
    /// processed in `chunk`-point blocks through the reusable `buffer`, and
    /// each filled block is handed to `sink(start, buffer)` before the next
    /// one overwrites it — the streaming form of
    /// [`CompiledScenario::evaluate_indexed_into`] behind `GridStream` and
    /// the million-point bench workloads.
    ///
    /// `sink` returns `false` to cancel the run early (`Ok(false)`);
    /// `Ok(true)` means every block was evaluated and delivered. Peak
    /// memory is one block's 12 columns, independent of `n`.
    ///
    /// # Errors
    ///
    /// Returns the point-validation error with the globally lowest index:
    /// blocks run in ascending order and a failing block surfaces its own
    /// lowest-index error (same conditions as
    /// [`CompiledScenario::evaluate`]). Blocks before the failing one have
    /// already been delivered to `sink` in that case.
    pub fn evaluate_chunked(
        &self,
        n: usize,
        point_of: impl Fn(usize) -> OperatingPoint + Sync,
        chunk: usize,
        threads: usize,
        buffer: &mut ResultBuffer,
        mut sink: impl FnMut(usize, &ResultBuffer) -> bool,
    ) -> Result<bool, GreenFpgaError> {
        let chunk = chunk.max(1);
        let mut start = 0;
        while start < n {
            let len = chunk.min(n - start);
            self.evaluate_indexed_into(len, |i| point_of(start + i), buffer, threads)?;
            if !sink(start, buffer) {
                return Ok(false);
            }
            start += len;
        }
        Ok(true)
    }
}

impl CompiledScenario {
    /// The SoA kernel's hot loop: evaluates one tile of points into the
    /// staged column tiles. Dispatches to the AVX2 build of
    /// [`CompiledScenario::tile_kernel`] when the `simd` feature is on and
    /// the CPU supports it, and to the portable build otherwise; the two
    /// are the same generic body and bit-identical by construction.
    ///
    /// On a validation failure returns the offset *within the tile* and the
    /// error; staged contents are unspecified in that case.
    fn evaluate_tile(
        &self,
        points: &[OperatingPoint],
        scratch: &mut TileScratch,
        fpga_cols: &mut SoaChunksMut<'_>,
        asic_cols: &mut SoaChunksMut<'_>,
    ) -> Result<(), (usize, GreenFpgaError)> {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if simd::avx2_available() {
            return simd::evaluate_tile_avx2(self, points, scratch, fpga_cols, asic_cols);
        }
        self.tile_kernel::<PORTABLE_LANES>(points, scratch, fpga_cols, asic_cols)
    }

    /// The lane-structured tile kernel, in two phases over one tile.
    ///
    /// **Phase A** validates every point and computes its twelve invariant
    /// values (see [`TileScratch`]) into component-major rows, memoizing
    /// on `(lifetime bits, volume)` — grid-shaped batches repeat the same
    /// pair across a whole axis, and the application count never enters
    /// the invariants. Keeping this a separate pass matters more than it
    /// looks: phase B reads the rows as whole lane groups, and
    /// interleaving scalar stores with vector reloads of the same bytes
    /// would stall on failed store-to-load forwarding — by the time
    /// phase B starts, the stores have long drained to L1.
    ///
    /// **Phase B** walks the tile in groups of `LANES` consecutive points
    /// with no per-lane branches in the hot loop: each group copies its
    /// addend rows into fixed-size locals (constant indices after
    /// unrolling — a bounds check on `rows[k][base + l]` could not be
    /// hoisted past a possibly zero-trip loop and would block
    /// vectorization), runs the eight live accumulator chains elementwise
    /// over the lanes up to the group's *smallest* application count,
    /// stages the rows with contiguous stores, and only then finishes
    /// ragged lanes scalar, directly on the staged output columns. The
    /// sub-group remainder of the tile runs through the same scalar
    /// finisher from zero.
    ///
    /// # Bit-identity
    ///
    /// Identical output bits to the scalar `totals_kernel` reference
    /// schedule, by construction, for every lane width, tile size and
    /// group boundary:
    ///
    /// * Each `(platform, component, point)` accumulator is an independent
    ///   `f64` chain; vectorizing across lanes and splitting a lane's
    ///   applications between the vector loop and its scalar tail never
    ///   reorders or merges an individual chain.
    /// * The ten structurally-zero additions per application — the
    ///   [`CfpBreakdown::ZERO`] components of
    ///   [`CompiledPlatform::embodied`] / [`CompiledPlatform::deployment`]
    ///   are the literal `+0.0` — are elided exactly. `x + 0.0` is the
    ///   bitwise identity unless `x` is `-0.0` (then it yields `+0.0`,
    ///   a fixed point), and an accumulator chain that starts at `+0.0`
    ///   can never reach `-0.0` (an IEEE sum is `-0.0` only when both
    ///   addends are), so interleaved `+0.0` additions drop out of the
    ///   live chains entirely, and the four FPGA embodied components —
    ///   whose chains consist *only* of `+0.0` additions — collapse to
    ///   the single addition `embodied + 0.0` phase A stores.
    ///
    /// `#[inline(always)]` so the `#[target_feature]` wrapper in [`simd`]
    /// monomorphizes the whole body under AVX2 codegen.
    ///
    /// On a validation failure returns the offset *within the tile* and
    /// the error (phase A scans ascending, so it is the lowest offset).
    #[inline(always)]
    fn tile_kernel<const LANES: usize>(
        &self,
        points: &[OperatingPoint],
        scratch: &mut TileScratch,
        fpga_cols: &mut SoaChunksMut<'_>,
        asic_cols: &mut SoaChunksMut<'_>,
    ) -> Result<(), (usize, GreenFpgaError)> {
        let n = points.len();
        debug_assert!(n <= SOA_TILE_MAX);
        let mut memo_key = None;
        let mut inv = [0.0f64; INVARIANTS];
        // `uniform` — the whole tile (so far) shares one invariant set, so
        // the scratch columns stay untouched and phase B broadcasts `inv`
        // instead of loading per-lane addends. Grid batches with the
        // application count as the inner axis hit this path tile after
        // tile. On the first key change the constant prefix is backfilled
        // into the columns and the tile degrades to the general path.
        let mut uniform = true;
        for (t, &point) in points.iter().enumerate() {
            let lifetime = self.validate(point).map_err(|e| (t, e))?;
            scratch.apps[t] = point.applications;
            let key = Some((point.lifetime_years.to_bits(), point.volume));
            if key != memo_key {
                if memo_key.is_some() && uniform {
                    for (k, &value) in inv.iter().enumerate() {
                        scratch.inv[k][..t].fill(value);
                    }
                    uniform = false;
                }
                memo_key = key;
                inv = self.invariants(point, lifetime);
            }
            if !uniform {
                for (k, &value) in inv.iter().enumerate() {
                    scratch.inv[k][t] = value;
                }
            }
        }

        // Monomorphize phase B per mode: with `UNIFORM` a const, the
        // broadcast addend rows and fill values are provably
        // loop-invariant and hoist out of the group loop.
        if uniform {
            Self::tile_groups::<LANES, true>(n, &inv, scratch, fpga_cols, asic_cols);
        } else {
            Self::tile_groups::<LANES, false>(n, &inv, scratch, fpga_cols, asic_cols);
        }
        Ok(())
    }

    /// Phase B of [`CompiledScenario::tile_kernel`]: the lane-group sweep
    /// over one tile whose invariants are already in `scratch` (or, with
    /// `UNIFORM`, entirely in `inv`).
    #[inline(always)]
    fn tile_groups<const LANES: usize, const UNIFORM: bool>(
        n: usize,
        inv: &[f64; INVARIANTS],
        scratch: &TileScratch,
        fpga_cols: &mut SoaChunksMut<'_>,
        asic_cols: &mut SoaChunksMut<'_>,
    ) {
        let uniform_add: [[f64; LANES]; CHAINS] =
            core::array::from_fn(|k| [inv[INV_CHAIN + k]; LANES]);
        let mut base = 0;
        while n - base >= LANES {
            let group = &scratch.apps[base..base + LANES];
            let floor = group.iter().copied().min().unwrap_or(0);
            let ragged = group.iter().any(|&a| a != floor);
            let mut acc = [[0.0f64; LANES]; CHAINS];
            let mut add = uniform_add;
            if !UNIFORM {
                for (k, lanes) in add.iter_mut().enumerate() {
                    lanes.copy_from_slice(&scratch.inv[INV_CHAIN + k][base..base + LANES]);
                }
            }
            for _ in 0..floor {
                for k in 0..CHAINS {
                    for l in 0..LANES {
                        acc[k][l] += add[k][l];
                    }
                }
            }
            if ragged {
                // Branch-free ragged tail: keep the vector loop running to
                // the group's *largest* count, with exhausted lanes
                // selecting a literal `+0.0` addend. Exact by the same
                // lemma as the structural-zero elision — a chain that
                // starts at `+0.0` can never hold `-0.0`, so its trailing
                // `+ 0.0` steps are bitwise no-ops.
                let ceil = group.iter().copied().max().unwrap_or(0);
                let mut apps_lane = [0u64; LANES];
                apps_lane.copy_from_slice(group);
                for i in floor..ceil {
                    for k in 0..CHAINS {
                        for l in 0..LANES {
                            let a = if apps_lane[l] > i { add[k][l] } else { 0.0 };
                            acc[k][l] += a;
                        }
                    }
                }
            }
            for (k, col) in FPGA_BASE_COLUMNS.iter().enumerate() {
                let out = &mut fpga_cols.column_mut(*col)[base..base + LANES];
                if UNIFORM {
                    out.fill(inv[k]);
                } else {
                    out.copy_from_slice(&scratch.inv[k][base..base + LANES]);
                }
            }
            for (k, acc_row) in acc.iter().enumerate() {
                chain_column(fpga_cols, asic_cols, k)[base..base + LANES].copy_from_slice(acc_row);
            }
            base += LANES;
        }

        for t in base..n {
            let lane_add: [f64; CHAINS] = core::array::from_fn(|k| {
                if UNIFORM {
                    inv[INV_CHAIN + k]
                } else {
                    scratch.inv[INV_CHAIN + k][t]
                }
            });
            for (k, col) in FPGA_BASE_COLUMNS.iter().enumerate() {
                fpga_cols.column_mut(*col)[t] = if UNIFORM { inv[k] } else { scratch.inv[k][t] };
            }
            for k in 0..CHAINS {
                chain_column(fpga_cols, asic_cols, k)[t] = 0.0;
            }
            finish_lane(fpga_cols, asic_cols, t, 0, scratch.apps[t], &lane_add);
        }
    }

    /// The twelve per-point invariant values of the tile kernel, in
    /// [`TileScratch::inv`] row order; `point` must have passed
    /// [`CompiledScenario::validate`].
    #[inline(always)]
    fn invariants(&self, point: OperatingPoint, lifetime: TimeSpan) -> [f64; INVARIANTS] {
        let fpga_devices = point.volume * self.fpga.chips_per_unit;
        let fpga_emb = self.fpga.embodied(fpga_devices as f64);
        let fpga_dep = self.fpga.deployment(lifetime, fpga_devices);
        let asic_emb = self.asic.embodied(point.volume as f64);
        let asic_dep = self.asic.deployment(lifetime, point.volume);
        [
            // The final FPGA embodied components: one `+ 0.0` for the
            // first application's zero deployment add, a fixed point
            // thereafter (validated points have at least one application).
            fpga_emb.design.as_kg() + 0.0,
            fpga_emb.manufacturing.as_kg() + 0.0,
            fpga_emb.packaging.as_kg() + 0.0,
            fpga_emb.eol.as_kg() + 0.0,
            // The eight live chain addends, in chain order.
            fpga_dep.operation.as_kg(),
            fpga_dep.app_dev.as_kg(),
            asic_emb.design.as_kg(),
            asic_emb.manufacturing.as_kg(),
            asic_emb.packaging.as_kg(),
            asic_emb.eol.as_kg(),
            asic_dep.operation.as_kg(),
            asic_dep.app_dev.as_kg(),
        ]
    }
}

/// Lifecycle components per platform — the six [`CfpBreakdown`] fields,
/// always ordered design, manufacturing, packaging, end-of-life,
/// operation, app-dev (the staged column order).
const COMPONENTS: usize = 6;

/// Live accumulator chains per point: of the eighteen `f64` additions the
/// scalar schedule performs per application (three breakdowns × six
/// components), ten add a structural [`CfpBreakdown::ZERO`] component —
/// [`CompiledPlatform::embodied`] has zero operation/app-dev,
/// [`CompiledPlatform::deployment`] zero design/manufacturing/packaging/
/// end-of-life. Eliding them exactly (see the bit-identity notes on
/// [`CompiledScenario::tile_kernel`]) leaves eight live chains: FPGA
/// operation and app-dev, then all six ASIC components.
const CHAINS: usize = 8;

/// Row index in [`TileScratch::inv`] of chain 0's addend; rows
/// `INV_CHAIN..INV_CHAIN + CHAINS` are the eight per-application addends
/// in chain order, rows `0..INV_CHAIN` the four precomputed FPGA embodied
/// components ([`FPGA_BASE_COLUMNS`]).
const INV_CHAIN: usize = 4;

/// Invariant rows per point: four FPGA base values plus eight chain
/// addends.
const INVARIANTS: usize = INV_CHAIN + CHAINS;

/// Output columns of the four FPGA base rows `0..INV_CHAIN`: design,
/// manufacturing, packaging, end-of-life.
const FPGA_BASE_COLUMNS: [usize; INV_CHAIN] = [0, 1, 2, 3];

/// The output column accumulator chain `k` feeds: chains 0–1 are FPGA
/// operation and app-dev, chains 2–7 the six ASIC components in staged
/// column order.
#[inline(always)]
fn chain_column<'a>(
    fpga_cols: &'a mut SoaChunksMut<'_>,
    asic_cols: &'a mut SoaChunksMut<'_>,
    k: usize,
) -> &'a mut [f64] {
    if k < 2 {
        fpga_cols.column_mut(4 + k)
    } else {
        asic_cols.column_mut(k - 2)
    }
}

/// Lane width of the portable tile kernel: two `f64` fill one baseline
/// 128-bit vector register (SSE2 / NEON), keeping the eight accumulator
/// rows and their addends inside the sixteen-register file.
const PORTABLE_LANES: usize = 2;

/// Length of one [`TileScratch::inv`] row: the largest tile plus one cache
/// line of padding. The padding is load-bearing — unpadded rows sit
/// exactly 2 KiB apart, so one point's scatter targets fold into a couple
/// of L1 sets (4 KiB stride aliasing) and every phase-A store thrashes
/// the cache; 8 extra lanes skew the rows across the sets.
const SOA_ROW: usize = SOA_TILE_MAX + 8;

/// Per-chunk working memory of the tile kernel: each point's application
/// count and twelve invariant values, component-major ([`INV_CHAIN`] — a
/// lane group's addends are `LANES` consecutive `f64`, one unaligned
/// vector load per row). Sized for the largest tile (~26 KiB) and
/// allocated once per worker chunk, so its zero-initialization amortizes
/// across every tile in the chunk.
struct TileScratch {
    apps: [u64; SOA_TILE_MAX],
    inv: [[f64; SOA_ROW]; INVARIANTS],
}

impl TileScratch {
    fn new() -> Self {
        TileScratch {
            apps: [0; SOA_TILE_MAX],
            inv: [[0.0; SOA_ROW]; INVARIANTS],
        }
    }
}

/// Runs point `t`'s applications `done..apps` scalar — the ragged-lane
/// tail (and, with `done == 0`, the whole sub-group remainder) of
/// [`CompiledScenario::tile_kernel`]. `add` holds the point's eight chain
/// addends in chain order.
///
/// The staged column values round-trip through locals so the loop body is
/// branch-free (no per-add column dispatch) and the eight independent
/// chains vectorize; loading a chain's accumulator once, extending it,
/// and storing it back performs the identical additions in the identical
/// order.
#[inline(always)]
fn finish_lane(
    fpga_cols: &mut SoaChunksMut<'_>,
    asic_cols: &mut SoaChunksMut<'_>,
    t: usize,
    done: u64,
    apps: u64,
    add: &[f64; CHAINS],
) {
    let mut acc = [0.0f64; CHAINS];
    for (k, slot) in acc.iter_mut().enumerate() {
        *slot = chain_column(fpga_cols, asic_cols, k)[t];
    }
    for _ in done..apps {
        for k in 0..CHAINS {
            acc[k] += add[k];
        }
    }
    for (k, &value) in acc.iter().enumerate() {
        chain_column(fpga_cols, asic_cols, k)[t] = value;
    }
}

/// The runtime-dispatched AVX2 build of the tile kernel, behind the `simd`
/// cargo feature.
///
/// No intrinsics: the module monomorphizes the same safe generic
/// [`CompiledScenario::tile_kernel`] body inside a
/// `#[target_feature(enable = "avx2")]` function, which lets LLVM use
/// 256-bit vectors (four-lane groups, twelve ymm accumulators). The one
/// `unsafe` block is the call into that function, gated on runtime CPU
/// detection — the crate denies `unsafe_code` everywhere else.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[allow(unsafe_code)]
mod simd {
    use super::{CompiledScenario, GreenFpgaError, OperatingPoint, SoaChunksMut, TileScratch};

    /// Lane width under AVX2: four `f64` per 256-bit register; the twelve
    /// accumulator rows fit the sixteen ymm registers with room for the
    /// streamed addends.
    const AVX2_LANES: usize = 4;

    /// `true` when the running CPU supports AVX2 (detection is cached by
    /// the standard library).
    pub(super) fn avx2_available() -> bool {
        std::is_x86_feature_detected!("avx2")
    }

    /// Runs the tile kernel with AVX2 codegen. Callers must have checked
    /// [`avx2_available`]; results are bit-identical to the portable build
    /// (same generic body — vectorizing independent per-lane `f64` chains
    /// is exact, and no FMA contraction is enabled).
    pub(super) fn evaluate_tile_avx2(
        scenario: &CompiledScenario,
        points: &[OperatingPoint],
        scratch: &mut TileScratch,
        fpga_cols: &mut SoaChunksMut<'_>,
        asic_cols: &mut SoaChunksMut<'_>,
    ) -> Result<(), (usize, GreenFpgaError)> {
        #[target_feature(enable = "avx2")]
        unsafe fn inner(
            scenario: &CompiledScenario,
            points: &[OperatingPoint],
            scratch: &mut TileScratch,
            fpga_cols: &mut SoaChunksMut<'_>,
            asic_cols: &mut SoaChunksMut<'_>,
        ) -> Result<(), (usize, GreenFpgaError)> {
            scenario.tile_kernel::<AVX2_LANES>(points, scratch, fpga_cols, asic_cols)
        }
        debug_assert!(avx2_available());
        // SAFETY: the only precondition of the `target_feature` function
        // is that the CPU supports AVX2, which the dispatch in
        // `evaluate_tile` checked; the body is safe code (no intrinsics,
        // no raw pointers).
        unsafe { inner(scenario, points, scratch, fpga_cols, asic_cols) }
    }
}

/// Hard cap on the staged tile (the gather buffer's size); the working
/// tile size is resolved once per process by [`soa_tile`].
pub(crate) const SOA_TILE_MAX: usize = 256;

/// Default tile when autotuning is unavailable: 64 points keeps one tile
/// (two platforms × six columns × 64 points = 6 KiB) comfortably in L1.
const SOA_TILE_DEFAULT: usize = 64;

/// Points staged per SoA flush, resolved **once per process** (like
/// [`exec::default_threads`]): the `GF_SOA_TILE` environment variable if
/// set and valid (clamped to `1..=`[`SOA_TILE_MAX`]), otherwise a short
/// self-measurement over the candidate sizes on a synthetic ragged batch.
/// The tile size only affects throughput — results are bit-identical for
/// every setting.
pub(crate) fn soa_tile() -> usize {
    static TILE: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *TILE.get_or_init(|| {
        let pinned = std::env::var("GF_SOA_TILE")
            .ok()
            .and_then(|value| value.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .map(|n| n.min(SOA_TILE_MAX));
        let tile = pinned.unwrap_or_else(|| autotune_tile().unwrap_or(SOA_TILE_DEFAULT));
        // Once-per-process: the decision (pinned or probed) lands in the
        // trace ring so a slow batch can be correlated with an unlucky
        // autotune pass. aux = chosen tile size.
        gf_trace::record_event(gf_trace::SpanName::Autotune, tile as u64);
        tile
    })
}

/// Times the candidate tile sizes on a small grid-shaped ragged batch
/// (serial, best of three fills each) and picks the fastest. The probe
/// mirrors the canonical bulk workload — a parameter grid with the
/// application count as the inner axis, so the memoized invariants repeat
/// in 64-point runs (see [`CompiledScenario::tile_kernel`]'s uniform fast
/// path) — rather than a worst-case batch where every point differs.
/// Total cost is a fraction of a millisecond, paid once per process on
/// the first batch evaluation.
fn autotune_tile() -> Option<usize> {
    let compiled =
        CompiledScenario::compile(&EstimatorParams::paper_defaults(), Domain::Dnn).ok()?;
    let point_of = |i: usize| OperatingPoint {
        applications: (i % 64 + 1) as u64,
        lifetime_years: 0.5 + 0.1 * ((i / 64) % 7) as f64,
        volume: 1_000_000,
    };
    const PROBE_POINTS: usize = 1024;
    const CANDIDATES: [usize; 4] = [32, 64, 128, 256];
    let mut buffer = ResultBuffer::new();
    // Round-robin the candidates and keep each one's fastest fill, so a
    // load spike on a shared machine degrades every candidate's worst
    // pass instead of condemning whichever one it landed on.
    let mut fastest = [f64::INFINITY; CANDIDATES.len()];
    for _ in 0..3 {
        for (slot, &tile) in fastest.iter_mut().zip(&CANDIDATES) {
            let start = std::time::Instant::now();
            compiled
                .evaluate_indexed_into_with_tile(PROBE_POINTS, point_of, &mut buffer, 1, tile)
                .ok()?;
            *slot = slot.min(start.elapsed().as_secs_f64());
        }
    }
    let mut best = (f64::INFINITY, SOA_TILE_DEFAULT);
    for (&ns, &tile) in fastest.iter().zip(&CANDIDATES) {
        if ns < best.0 {
            best = (ns, tile);
        }
    }
    Some(best.1)
}

/// One platform's lifecycle components as structure-of-arrays columns
/// (kilograms CO₂e), one `Vec<f64>` per [`CfpBreakdown`] field.
#[derive(Debug, Clone, Default, PartialEq)]
struct SoaBreakdown {
    design: Vec<f64>,
    manufacturing: Vec<f64>,
    packaging: Vec<f64>,
    eol: Vec<f64>,
    operation: Vec<f64>,
    app_dev: Vec<f64>,
}

impl SoaBreakdown {
    fn resize(&mut self, n: usize) {
        self.design.resize(n, 0.0);
        self.manufacturing.resize(n, 0.0);
        self.packaging.resize(n, 0.0);
        self.eol.resize(n, 0.0);
        self.operation.resize(n, 0.0);
        self.app_dev.resize(n, 0.0);
    }

    /// Heap bytes currently reserved across all six columns.
    fn capacity_bytes(&self) -> usize {
        core::mem::size_of::<f64>()
            * (self.design.capacity()
                + self.manufacturing.capacity()
                + self.packaging.capacity()
                + self.eol.capacity()
                + self.operation.capacity()
                + self.app_dev.capacity())
    }

    /// Drops column capacity beyond `cap` elements per column.
    fn shrink_to(&mut self, cap: usize) {
        self.design.shrink_to(cap);
        self.manufacturing.shrink_to(cap);
        self.packaging.shrink_to(cap);
        self.eol.shrink_to(cap);
        self.operation.shrink_to(cap);
        self.app_dev.shrink_to(cap);
    }

    fn get(&self, i: usize) -> CfpBreakdown {
        CfpBreakdown {
            design: Carbon::from_kg(self.design[i]),
            manufacturing: Carbon::from_kg(self.manufacturing[i]),
            packaging: Carbon::from_kg(self.packaging[i]),
            eol: Carbon::from_kg(self.eol[i]),
            operation: Carbon::from_kg(self.operation[i]),
            app_dev: Carbon::from_kg(self.app_dev[i]),
        }
    }

    fn chunks_mut(&mut self) -> SoaChunksMut<'_> {
        SoaChunksMut {
            design: &mut self.design,
            manufacturing: &mut self.manufacturing,
            packaging: &mut self.packaging,
            eol: &mut self.eol,
            operation: &mut self.operation,
            app_dev: &mut self.app_dev,
        }
    }
}

/// Mutable views of one contiguous index range of every column of a
/// [`SoaBreakdown`]; split recursively to hand each batch worker a disjoint
/// chunk it can write without synchronization (and without `unsafe`).
struct SoaChunksMut<'a> {
    design: &'a mut [f64],
    manufacturing: &'a mut [f64],
    packaging: &'a mut [f64],
    eol: &'a mut [f64],
    operation: &'a mut [f64],
    app_dev: &'a mut [f64],
}

impl<'a> exec::SplitAtMut for (SoaChunksMut<'a>, SoaChunksMut<'a>) {
    fn split_at_mut(self, mid: usize) -> (Self, Self) {
        let (fpga_head, fpga_tail) = self.0.split_at_mut(mid);
        let (asic_head, asic_tail) = self.1.split_at_mut(mid);
        ((fpga_head, asic_head), (fpga_tail, asic_tail))
    }
}

impl<'a> SoaChunksMut<'a> {
    fn split_at_mut(self, mid: usize) -> (SoaChunksMut<'a>, SoaChunksMut<'a>) {
        let (design, design_tail) = self.design.split_at_mut(mid);
        let (manufacturing, manufacturing_tail) = self.manufacturing.split_at_mut(mid);
        let (packaging, packaging_tail) = self.packaging.split_at_mut(mid);
        let (eol, eol_tail) = self.eol.split_at_mut(mid);
        let (operation, operation_tail) = self.operation.split_at_mut(mid);
        let (app_dev, app_dev_tail) = self.app_dev.split_at_mut(mid);
        (
            SoaChunksMut {
                design,
                manufacturing,
                packaging,
                eol,
                operation,
                app_dev,
            },
            SoaChunksMut {
                design: design_tail,
                manufacturing: manufacturing_tail,
                packaging: packaging_tail,
                eol: eol_tail,
                operation: operation_tail,
                app_dev: app_dev_tail,
            },
        )
    }

    /// Writes one breakdown at position `t` — the store path of the
    /// property tests' scalar reference.
    #[cfg(test)]
    fn stage(&mut self, t: usize, breakdown: &CfpBreakdown) {
        self.design[t] = breakdown.design.as_kg();
        self.manufacturing[t] = breakdown.manufacturing.as_kg();
        self.packaging[t] = breakdown.packaging.as_kg();
        self.eol[t] = breakdown.eol.as_kg();
        self.operation[t] = breakdown.operation.as_kg();
        self.app_dev[t] = breakdown.app_dev.as_kg();
    }

    /// One column as a mutable slice, by component index in the staged
    /// order (design, manufacturing, packaging, eol, operation, app-dev) —
    /// the scalar access path of [`finish_lane`].
    ///
    /// # Panics
    ///
    /// Panics if `c >= COMPONENTS` (callers iterate `0..COMPONENTS`).
    #[inline(always)]
    fn column_mut(&mut self, c: usize) -> &mut [f64] {
        match c {
            0 => self.design,
            1 => self.manufacturing,
            2 => self.packaging,
            3 => self.eol,
            4 => self.operation,
            _ => {
                assert!(c == COMPONENTS - 1, "component index out of range");
                self.app_dev
            }
        }
    }
}

/// Reusable structure-of-arrays output of the zero-allocation batch kernel
/// ([`CompiledScenario::evaluate_into`]).
///
/// A batch of `n` points is stored as 12 contiguous `f64` columns (six
/// lifecycle components × two platforms) instead of `n` scattered
/// [`PlatformComparison`] values: ratio and total reductions stream through
/// cache-friendly arrays, and refilling the buffer allocates only when a
/// batch outgrows every previous one.
///
/// # Examples
///
/// ```
/// use greenfpga::{Domain, Estimator, OperatingPoint, ResultBuffer};
///
/// let compiled = Estimator::default().compile(Domain::Dnn)?;
/// let points = vec![OperatingPoint::paper_default(); 256];
/// let mut buffer = ResultBuffer::new();
/// compiled.evaluate_into(&points, &mut buffer)?;            // allocates once
/// compiled.evaluate_into(&points, &mut buffer)?;            // zero-alloc refill
/// assert_eq!(buffer.len(), 256);
/// assert_eq!(
///     buffer.comparison(0),
///     compiled.evaluate(OperatingPoint::paper_default())?,
/// );
/// # Ok::<(), greenfpga::GreenFpgaError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResultBuffer {
    domain: Option<Domain>,
    len: usize,
    fpga: SoaBreakdown,
    asic: SoaBreakdown,
}

impl ResultBuffer {
    /// Creates an empty buffer; the first fill sizes it.
    pub fn new() -> Self {
        ResultBuffer::default()
    }

    /// Number of evaluated points currently held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the buffer holds no results.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Domain of the last fill, if any.
    pub fn domain(&self) -> Option<Domain> {
        self.domain
    }

    /// FPGA-platform breakdown of point `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i >= len()`.
    pub fn fpga(&self, i: usize) -> CfpBreakdown {
        assert!(i < self.len, "result index {i} out of range {}", self.len);
        self.fpga.get(i)
    }

    /// ASIC-platform breakdown of point `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i >= len()`.
    pub fn asic(&self, i: usize) -> CfpBreakdown {
        assert!(i < self.len, "result index {i} out of range {}", self.len);
        self.asic.get(i)
    }

    /// Full comparison of point `i`, reconstructed from the columns —
    /// bit-identical to what [`CompiledScenario::evaluate`] returns.
    ///
    /// # Panics
    ///
    /// Panics when `i >= len()` or the buffer was never filled.
    pub fn comparison(&self, i: usize) -> PlatformComparison {
        PlatformComparison::new(
            self.domain.expect("result buffer never filled"),
            self.fpga(i),
            self.asic(i),
        )
    }

    /// FPGA:ASIC total-CFP ratio of point `i` (`f64::INFINITY` when the
    /// ASIC total is zero, like [`PlatformComparison::fpga_to_asic_ratio`]).
    ///
    /// # Panics
    ///
    /// Panics when `i >= len()`.
    pub fn ratio(&self, i: usize) -> f64 {
        self.fpga(i)
            .total()
            .ratio_to(self.asic(i).total())
            .unwrap_or(f64::INFINITY)
    }

    /// Iterates the buffer as reconstructed [`PlatformComparison`] values.
    pub fn comparisons(&self) -> impl Iterator<Item = PlatformComparison> + '_ {
        (0..self.len).map(|i| self.comparison(i))
    }

    /// Empties the buffer, keeping its column capacity for the next fill.
    pub fn clear(&mut self) {
        self.len = 0;
        self.domain = None;
        self.fpga.resize(0);
        self.asic.resize(0);
    }

    /// Heap bytes currently reserved across all twelve columns.
    pub fn capacity_bytes(&self) -> usize {
        self.fpga.capacity_bytes() + self.asic.capacity_bytes()
    }

    /// Clears the buffer and releases column capacity beyond `max_bytes`
    /// total — the shrink-after-use policy for long-lived buffers (the
    /// engine's worker-thread-local scratch), so one huge batch does not
    /// pin its high-water footprint forever. Capacity at or under
    /// `max_bytes` is kept so steady-state serving stays zero-allocation.
    pub fn shrink_retained(&mut self, max_bytes: usize) {
        self.clear();
        if self.capacity_bytes() <= max_bytes {
            return;
        }
        // Split the byte budget evenly over the 12 columns; `Vec::shrink_to`
        // keeps at most that many elements per column.
        let per_column = max_bytes / (2 * COMPONENTS) / core::mem::size_of::<f64>();
        self.fpga.shrink_to(per_column);
        self.asic.shrink_to(per_column);
    }

    /// Sizes the columns for a fill of `n` points in `domain`, reusing
    /// existing capacity.
    fn prepare(&mut self, domain: Domain, n: usize) {
        self.domain = Some(domain);
        self.len = n;
        self.fpga.resize(n);
        self.asic.resize(n);
    }

    /// Full-range mutable column views for the kernel workers.
    fn columns_mut(&mut self) -> (SoaChunksMut<'_>, SoaChunksMut<'_>) {
        (self.fpga.chunks_mut(), self.asic.chunks_mut())
    }
}

/// A batch of operating points to evaluate in one domain.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRequest {
    /// Domain every point is evaluated in.
    pub domain: Domain,
    /// The operating points.
    pub points: Vec<OperatingPoint>,
    /// Worker threads (`0` = auto; see [`exec::default_threads`]).
    pub threads: usize,
}

impl BatchRequest {
    /// Creates a batch request with automatic thread selection.
    pub fn new(domain: Domain, points: Vec<OperatingPoint>) -> Self {
        BatchRequest {
            domain,
            points,
            threads: 0,
        }
    }

    /// Overrides the worker-thread count (`0` = auto). Results are
    /// identical for every setting; this only controls resource usage.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

impl Estimator {
    /// Compiles one domain's calibration against this estimator's
    /// parameters for cheap repeated evaluation.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CompiledScenario::compile`].
    pub fn compile(&self, domain: Domain) -> Result<CompiledScenario, GreenFpgaError> {
        CompiledScenario::compile(self.params(), domain)
    }

    /// Evaluates every point of a [`BatchRequest`] in parallel.
    ///
    /// The scenario is compiled once and the points stream through the SoA
    /// kernel ([`CompiledScenario::evaluate_into`]); results come back in
    /// request order and are deterministic for every thread count. Callers
    /// that evaluate many batches should hold a [`ResultBuffer`] and call
    /// [`Estimator::evaluate_batch_into`] instead to skip the per-call
    /// output allocation.
    ///
    /// # Errors
    ///
    /// Propagates compile errors and the point-validation error with the
    /// lowest index.
    pub fn evaluate_batch(
        &self,
        request: &BatchRequest,
    ) -> Result<Vec<PlatformComparison>, GreenFpgaError> {
        let mut buffer = ResultBuffer::new();
        self.evaluate_batch_into(request, &mut buffer)?;
        Ok(buffer.comparisons().collect())
    }

    /// [`Estimator::evaluate_batch`] into a caller-provided reusable buffer:
    /// after the first fill at a given size, repeated batches allocate
    /// nothing.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Estimator::evaluate_batch`].
    pub fn evaluate_batch_into(
        &self,
        request: &BatchRequest,
        out: &mut ResultBuffer,
    ) -> Result<(), GreenFpgaError> {
        let compiled = self.compile(request.domain)?;
        compiled.evaluate_indexed_into(
            request.points.len(),
            |i| request.points[i],
            out,
            request.threads,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn estimator() -> Estimator {
        Estimator::default()
    }

    fn points() -> Vec<OperatingPoint> {
        let mut out = Vec::new();
        for applications in [1u64, 3, 8] {
            for lifetime_years in [0.5, 2.0] {
                for volume in [10_000u64, 1_000_000] {
                    out.push(OperatingPoint {
                        applications,
                        lifetime_years,
                        volume,
                    });
                }
            }
        }
        out
    }

    /// Byte-for-byte comparison of all 12 columns of two buffers.
    fn assert_buffers_bit_identical(reference: &ResultBuffer, out: &ResultBuffer, ctx: &str) {
        assert_eq!(reference.len(), out.len(), "{ctx}: length");
        for i in 0..reference.len() {
            for (expected, got, platform) in [
                (reference.fpga(i), out.fpga(i), "fpga"),
                (reference.asic(i), out.asic(i), "asic"),
            ] {
                for (e, g, component) in [
                    (expected.design, got.design, "design"),
                    (expected.manufacturing, got.manufacturing, "manufacturing"),
                    (expected.packaging, got.packaging, "packaging"),
                    (expected.eol, got.eol, "eol"),
                    (expected.operation, got.operation, "operation"),
                    (expected.app_dev, got.app_dev, "app_dev"),
                ] {
                    assert_eq!(
                        e.as_kg().to_bits(),
                        g.as_kg().to_bits(),
                        "{ctx}: point {i} {platform} {component}: {} != {}",
                        e.as_kg(),
                        g.as_kg()
                    );
                }
            }
        }
    }

    #[test]
    fn shrink_retained_caps_capacity_but_keeps_small_buffers() {
        let compiled = estimator().compile(Domain::Dnn).unwrap();
        let cap = 64 << 10;
        let big = vec![OperatingPoint::paper_default(); 20_000];
        let mut buffer = ResultBuffer::new();
        compiled.evaluate_into(&big, &mut buffer).unwrap();
        // 20_000 points × 12 columns × 8 bytes ≈ 1.9 MiB resident.
        assert!(buffer.capacity_bytes() >= 12 * 20_000 * 8);
        buffer.shrink_retained(cap);
        assert!(buffer.is_empty());
        assert!(
            buffer.capacity_bytes() <= cap,
            "retained {} bytes > cap {cap}",
            buffer.capacity_bytes()
        );
        // A buffer already under the cap keeps its capacity untouched.
        let small = points();
        compiled.evaluate_into(&small, &mut buffer).unwrap();
        let before = buffer.capacity_bytes();
        assert!(before <= cap);
        buffer.shrink_retained(cap);
        assert_eq!(buffer.capacity_bytes(), before);
        // And the buffer stays fully usable after shrinking.
        let mut reference = ResultBuffer::new();
        compiled.evaluate_into(&small, &mut reference).unwrap();
        compiled.evaluate_into(&small, &mut buffer).unwrap();
        assert_buffers_bit_identical(&reference, &buffer, "post-shrink refill");
    }

    /// The tile kernel (every lane width the build dispatches to, every
    /// tile size, ragged tails, uniform and non-uniform invariant runs,
    /// randomized knob overrides) is bit-identical to the scalar
    /// `totals_kernel` reference schedule on all 12 output columns.
    #[test]
    fn tile_kernel_matches_scalar_reference_bit_for_bit() {
        use crate::Knob;

        let mut rng = gf_support::SplitMix64::new(0x711E_5EED_0000_0007);
        for case in 0..24 {
            let mut params = EstimatorParams::paper_defaults();
            for knob in Knob::ALL {
                if rng.gen_bool() {
                    let range = knob.range();
                    knob.apply_mut(&mut params, rng.gen_range_f64(range.low, range.high));
                }
            }
            let domain = Domain::ALL[rng.gen_index(Domain::ALL.len())];
            let compiled = CompiledScenario::compile(&params, domain).expect("compile");

            let n = [1usize, 2, 3, 5, 63, 64, 65, 127, 130, 257][rng.gen_index(10)];
            // Alternate run-structured batches (shared lifetime/volume in
            // runs, like a grid with the application count as the inner
            // axis — exercises the uniform fast path and its mid-tile
            // backfill) with fully random ones.
            let run = [1usize, 5, 48, 64][rng.gen_index(4)];
            let structured = rng.gen_bool();
            let mut points = Vec::with_capacity(n);
            let mut lifetime = 0.0;
            let mut volume = 1;
            for i in 0..n {
                if !structured || i % run == 0 {
                    lifetime = if rng.gen_bool() {
                        rng.gen_range_f64(0.0, 10.0)
                    } else {
                        0.0
                    };
                    volume = rng.gen_range_u64(1, 2_000_000);
                }
                points.push(OperatingPoint {
                    applications: rng.gen_range_u64(1, 70),
                    lifetime_years: lifetime,
                    volume,
                });
            }

            let mut reference = ResultBuffer::new();
            reference.prepare(domain, n);
            {
                let (mut fpga_cols, mut asic_cols) = reference.columns_mut();
                for (t, &p) in points.iter().enumerate() {
                    let lifetime = compiled.validate(p).expect("validate");
                    let (fpga, asic) = compiled.totals_kernel(p, lifetime);
                    fpga_cols.stage(t, &fpga);
                    asic_cols.stage(t, &asic);
                }
            }

            let mut out = ResultBuffer::new();
            for tile in [1usize, 2, 3, 5, 31, 64, SOA_TILE_MAX] {
                compiled
                    .evaluate_indexed_into_with_tile(n, |i| points[i], &mut out, 1, tile)
                    .expect("evaluate");
                assert_buffers_bit_identical(
                    &reference,
                    &out,
                    &format!("case {case} ({domain}, n={n}, tile={tile})"),
                );
            }
            compiled.evaluate_into(&points, &mut out).expect("evaluate");
            assert_buffers_bit_identical(
                &reference,
                &out,
                &format!("case {case} ({domain}, n={n}, slice path)"),
            );
        }
    }

    #[test]
    fn compiled_matches_naive_bit_for_bit() {
        for domain in Domain::ALL {
            let est = estimator();
            let compiled = est.compile(domain).unwrap();
            for point in points() {
                let fast = compiled.evaluate(point).unwrap();
                let slow = est
                    .compare_uniform(
                        domain,
                        point.applications,
                        point.lifetime_years,
                        point.volume,
                    )
                    .unwrap();
                assert_eq!(fast.fpga, slow.fpga, "{domain} {point:?}");
                assert_eq!(fast.asic, slow.asic, "{domain} {point:?}");
            }
        }
    }

    #[test]
    fn evaluate_batch_matches_point_wise_evaluation() {
        let est = estimator();
        let request = BatchRequest::new(Domain::ImageProcessing, points());
        let batch = est.evaluate_batch(&request).unwrap();
        assert_eq!(batch.len(), request.points.len());
        let compiled = est.compile(Domain::ImageProcessing).unwrap();
        for (comparison, point) in batch.iter().zip(&request.points) {
            assert_eq!(*comparison, compiled.evaluate(*point).unwrap());
        }
    }

    #[test]
    fn batch_is_thread_count_independent() {
        let est = estimator();
        let serial = est
            .evaluate_batch(&BatchRequest::new(Domain::Dnn, points()).with_threads(1))
            .unwrap();
        for threads in [2, 4, 13] {
            let parallel = est
                .evaluate_batch(&BatchRequest::new(Domain::Dnn, points()).with_threads(threads))
                .unwrap();
            assert_eq!(serial, parallel, "{threads} threads");
        }
    }

    #[test]
    fn evaluate_validates_points() {
        let compiled = estimator().compile(Domain::Dnn).unwrap();
        let base = OperatingPoint::paper_default();
        assert!(matches!(
            compiled.evaluate(OperatingPoint {
                applications: 0,
                ..base
            }),
            Err(GreenFpgaError::EmptyWorkload)
        ));
        assert!(matches!(
            compiled.evaluate(OperatingPoint { volume: 0, ..base }),
            Err(GreenFpgaError::InvalidApplication {
                field: "volume",
                ..
            })
        ));
        assert!(matches!(
            compiled.evaluate(OperatingPoint {
                lifetime_years: -1.0,
                ..base
            }),
            Err(GreenFpgaError::InvalidApplication {
                field: "lifetime",
                ..
            })
        ));
    }

    #[test]
    fn batch_surfaces_the_lowest_index_error() {
        let mut pts = points();
        pts.insert(
            2,
            OperatingPoint {
                applications: 0,
                ..OperatingPoint::paper_default()
            },
        );
        pts.push(OperatingPoint {
            volume: 0,
            ..OperatingPoint::paper_default()
        });
        let err = estimator()
            .evaluate_batch(&BatchRequest::new(Domain::Dnn, pts))
            .unwrap_err();
        assert!(matches!(err, GreenFpgaError::EmptyWorkload));
    }

    #[test]
    fn compiled_platform_accessors_are_consistent() {
        let compiled = estimator().compile(Domain::Crypto).unwrap();
        assert_eq!(compiled.domain(), Domain::Crypto);
        let fpga = compiled.fpga();
        assert!(fpga.design().as_kg() > 0.0);
        assert!(fpga.hardware_per_chip().as_kg() > 0.0);
        assert_eq!(fpga.chips_per_unit(), 1);
        assert_eq!(compiled.asic().chips_per_unit(), 1);
        let embodied = fpga.embodied(100.0);
        assert_eq!(embodied.design, fpga.design());
        assert!(embodied.operation.as_kg() == 0.0);
    }

    #[test]
    fn ratio_matches_evaluate() {
        let compiled = estimator().compile(Domain::Dnn).unwrap();
        let point = OperatingPoint::paper_default();
        assert_eq!(
            compiled.ratio(point).unwrap(),
            compiled.evaluate(point).unwrap().fpga_to_asic_ratio()
        );
    }

    #[test]
    fn evaluate_into_matches_evaluate_bit_for_bit() {
        let compiled = estimator().compile(Domain::Dnn).unwrap();
        let pts = points();
        let mut buffer = ResultBuffer::new();
        compiled.evaluate_into(&pts, &mut buffer).unwrap();
        assert_eq!(buffer.len(), pts.len());
        assert_eq!(buffer.domain(), Some(Domain::Dnn));
        for (i, point) in pts.iter().enumerate() {
            let direct = compiled.evaluate(*point).unwrap();
            assert_eq!(buffer.comparison(i), direct, "point {i}");
            assert_eq!(buffer.ratio(i), direct.fpga_to_asic_ratio(), "point {i}");
        }
    }

    #[test]
    fn evaluate_into_is_thread_count_independent_and_reusable() {
        let compiled = estimator().compile(Domain::Crypto).unwrap();
        let pts = points();
        let mut serial = ResultBuffer::new();
        compiled
            .evaluate_indexed_into(pts.len(), |i| pts[i], &mut serial, 1)
            .unwrap();
        let mut buffer = ResultBuffer::new();
        for threads in [2, 3, 16] {
            // Reuse the same buffer across fills of different sizes.
            compiled
                .evaluate_indexed_into(3, |i| pts[i], &mut buffer, threads)
                .unwrap();
            assert_eq!(buffer.len(), 3);
            compiled
                .evaluate_indexed_into(pts.len(), |i| pts[i], &mut buffer, threads)
                .unwrap();
            assert_eq!(serial, buffer, "{threads} threads");
        }
        buffer.clear();
        assert!(buffer.is_empty());
        assert_eq!(buffer.domain(), None);
    }

    #[test]
    fn evaluate_into_surfaces_the_lowest_index_error() {
        let compiled = estimator().compile(Domain::Dnn).unwrap();
        let mut pts = points();
        pts.insert(
            2,
            OperatingPoint {
                applications: 0,
                ..OperatingPoint::paper_default()
            },
        );
        pts.push(OperatingPoint {
            volume: 0,
            ..OperatingPoint::paper_default()
        });
        for threads in [1, 4] {
            let mut buffer = ResultBuffer::new();
            let err = compiled
                .evaluate_indexed_into(pts.len(), |i| pts[i], &mut buffer, threads)
                .unwrap_err();
            assert!(matches!(err, GreenFpgaError::EmptyWorkload), "{threads}");
        }
    }

    #[test]
    fn platform_coefficient_accessors_are_consistent() {
        let compiled = estimator().compile(Domain::Dnn).unwrap();
        let fpga = compiled.fpga();
        // Operation rate: carbon over one year for one device.
        assert!(fpga.operation_kg_per_device_year() > 0.0);
        // FPGA pays hardware app-dev; the ASIC's software flow is free.
        assert!(fpga.appdev_per_application_kg() > 0.0);
        assert!(fpga.appdev_per_device_kg() > 0.0);
        assert_eq!(compiled.asic().appdev_per_application_kg(), 0.0);
        assert_eq!(compiled.asic().appdev_per_device_kg(), 0.0);
    }
}

//! Ablation: how the choice of die-yield model (Poisson, Murphy,
//! negative-binomial) shifts the manufacturing CFP and the DNN crossover
//! points.
//!
//! The yield model determines how heavily the FPGA's larger die is penalised
//! — large dies at a pessimistic yield model make the FPGA's embodied cost
//! harder to amortize, pushing the A2F crossover to more applications.

use gf_bench::paper_estimator;
use greenfpga::act::YieldModel;
use greenfpga::units::Area;
use greenfpga::{render_table, Domain, Estimator, EstimatorParams};

fn main() -> Result<(), greenfpga::GreenFpgaError> {
    let models: [(&str, YieldModel); 4] = [
        ("Murphy (default)", YieldModel::Murphy),
        ("Poisson", YieldModel::Poisson),
        (
            "Neg. binomial (a=3)",
            YieldModel::NegativeBinomial { alpha: 3.0 },
        ),
        ("Perfect yield", YieldModel::Fixed { value: 1.0 }),
    ];

    // Per-die manufacturing footprint of the DNN-domain FPGA under each
    // yield model.
    let cal = Domain::Dnn.calibration();
    let fpga_area: Area = cal.fpga_spec()?.chip().area();
    let mut mfg_rows = Vec::new();
    for (name, model) in models {
        let params = EstimatorParams::paper_defaults().with_yield_model(model);
        let mfg = params
            .manufacturing_model(cal.node)
            .carbon_per_die(fpga_area)?;
        let yield_value = params.manufacturing_model(cal.node).die_yield(fpga_area);
        mfg_rows.push(vec![
            name.to_string(),
            format!("{:.3}", yield_value),
            format!("{:.2}", mfg.as_kg()),
        ]);
    }
    println!("DNN-domain FPGA die ({fpga_area}) manufacturing CFP by yield model:");
    println!(
        "{}",
        render_table(
            &["Yield model", "Die yield", "C_mfg per good die (kg)"],
            &mfg_rows
        )
    );

    // Crossover sensitivity.
    let mut crossover_rows = Vec::new();
    for (name, model) in models {
        let estimator = Estimator::new(EstimatorParams::paper_defaults().with_yield_model(model));
        let apps = estimator.crossover_in_applications(Domain::Dnn, 20, 2.0, 1_000_000)?;
        let lifetime = estimator.crossover_in_lifetime(Domain::Dnn, 5, 1_000_000, 0.05, 3.0)?;
        crossover_rows.push(vec![
            name.to_string(),
            apps.map_or("none".into(), |n| format!("{n}")),
            lifetime.map_or("none".into(), |c| format!("{:.2} y", c.at)),
        ]);
    }
    println!("DNN crossovers by yield model (T=2 y, N_vol=1e6 / N_app=5):");
    println!(
        "{}",
        render_table(
            &[
                "Yield model",
                "A2F crossover (apps)",
                "F2A crossover (lifetime)"
            ],
            &crossover_rows
        )
    );

    println!("Baseline (paper defaults) for reference:");
    let default_est = paper_estimator();
    println!(
        "  A2F at {:?} applications",
        default_est.crossover_in_applications(Domain::Dnn, 20, 2.0, 1_000_000)?
    );
    Ok(())
}

//! A minimal HTTP/1.1 message layer for a non-blocking transport.
//!
//! Just enough protocol for a JSON API behind a trusted load balancer (or a
//! benchmark harness): request-line + header parsing, `Content-Length`
//! bodies, keep-alive negotiation, pipelining and `Expect: 100-continue`.
//! No chunked transfer encoding, no TLS. Everything is bounded: header
//! block and body sizes are capped so one connection cannot balloon server
//! memory.
//!
//! The parser is **incremental**: [`RequestAssembler::step`] consumes
//! whatever bytes have arrived so far and either produces a complete
//! [`Request`], asks for more, or rejects the stream — so the event loop
//! can resume parsing exactly where a partial TCP segment left off, one
//! byte at a time if that is how the peer delivers them. Responses are
//! encoded into an owned buffer ([`encode_response`]) that the transport
//! drains across however many writable-readiness rounds it takes.

/// Bounds applied while reading one request.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ReadLimits {
    /// Maximum bytes of request line + headers.
    pub max_head_bytes: usize,
    /// Maximum bytes of body (from `Content-Length`).
    pub max_body_bytes: usize,
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Request {
    /// Uppercase method token (`GET`, `POST`, ...).
    pub method: String,
    /// Request target as sent (path, no normalization).
    pub path: String,
    /// Body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// `false` when the client asked for `Connection: close` (or spoke
    /// HTTP/1.0 without `keep-alive`).
    pub keep_alive: bool,
}

/// What one [`RequestAssembler::step`] call produced.
#[derive(Debug)]
pub(crate) enum Step {
    /// The buffered bytes do not yet hold a complete request.
    NeedMore,
    /// A complete request was parsed (and its bytes consumed).
    Request(Request),
    /// The peer violated the protocol or a limit; the connection must be
    /// answered with `status` (if writable) and dropped.
    Bad {
        /// Response status to send before closing.
        status: u16,
        /// Human-readable reason, returned in the JSON error body.
        message: String,
    },
}

/// The head fields carried between the head-complete and body-complete
/// phases of one request.
#[derive(Debug)]
struct Head {
    method: String,
    path: String,
    content_length: usize,
    keep_alive: bool,
}

/// Incremental request parser: feed it the connection's receive buffer
/// whenever bytes arrive, get back requests as they complete.
///
/// State between calls is exactly the progress that must survive a partial
/// read: how far the head-terminator scan got (so a trickled head is never
/// rescanned from byte zero), the parsed head while its body is still in
/// flight, and how many leading blank lines were already tolerated.
#[derive(Debug, Default)]
pub(crate) struct RequestAssembler {
    /// Byte offset the head-terminator scan resumes from.
    scan: usize,
    /// Parsed head awaiting `content_length` body bytes.
    head: Option<Head>,
    /// Stray leading CRLFs tolerated so far for the current request.
    leading_blanks: u32,
    /// Set when a parsed head asked for `Expect: 100-continue`; the
    /// transport takes it once and queues the interim response.
    interim_due: bool,
}

impl RequestAssembler {
    /// True when the stream holds a partially received request, so an EOF
    /// or deadline now is a mid-request abort rather than a clean close.
    pub fn mid_request(&self, inbuf: &[u8]) -> bool {
        self.head.is_some() || !inbuf.is_empty()
    }

    /// Takes (and clears) the pending `100 Continue` obligation.
    pub fn take_interim_due(&mut self) -> bool {
        std::mem::take(&mut self.interim_due)
    }

    /// Consumes as much of `inbuf` as a complete request needs. Parsed
    /// bytes are drained from the front of `inbuf`; pipelined followers
    /// stay buffered for the next call.
    pub fn step(&mut self, inbuf: &mut Vec<u8>, limits: ReadLimits) -> Step {
        if self.head.is_none() {
            // Tolerate a stray CRLF before the request line (RFC 7230 §3.5)
            // — but only a couple, so a blank-line flood cannot spin here.
            while self.scan == 0 {
                let drop = if inbuf.starts_with(b"\r\n") {
                    2
                } else if inbuf.first() == Some(&b'\n') {
                    1
                } else {
                    break;
                };
                self.leading_blanks += 1;
                if self.leading_blanks > 4 {
                    return Step::Bad {
                        status: 400,
                        message: "expected a request line".into(),
                    };
                }
                inbuf.drain(..drop);
            }
            let Some(head_end) = self.find_head_end(inbuf) else {
                if inbuf.len() > limits.max_head_bytes {
                    return Step::Bad {
                        status: 431,
                        message: "request head too large".into(),
                    };
                }
                return Step::NeedMore;
            };
            if head_end > limits.max_head_bytes {
                return Step::Bad {
                    status: 431,
                    message: "request head too large".into(),
                };
            }
            let head = match std::str::from_utf8(&inbuf[..head_end]) {
                Ok(text) => match parse_head_text(text) {
                    Ok(head) => head,
                    Err((status, message)) => return Step::Bad { status, message },
                },
                Err(_) => {
                    return Step::Bad {
                        status: 400,
                        message: "request head is not UTF-8".into(),
                    };
                }
            };
            if head.1 > limits.max_body_bytes {
                return Step::Bad {
                    status: 413,
                    message: format!("body exceeds {} bytes", limits.max_body_bytes),
                };
            }
            let (fields, content_length, expects_continue) = head;
            inbuf.drain(..head_end);
            self.scan = 0;
            if expects_continue && content_length > 0 {
                self.interim_due = true;
            }
            self.head = Some(Head {
                method: fields.0,
                path: fields.1,
                content_length,
                keep_alive: fields.2,
            });
        }

        let content_length = self.head.as_ref().map_or(0, |head| head.content_length);
        if inbuf.len() < content_length {
            return Step::NeedMore;
        }
        let head = self.head.take().expect("head parsed above");
        let body: Vec<u8> = inbuf.drain(..content_length).collect();
        self.leading_blanks = 0;
        self.interim_due = false;
        Step::Request(Request {
            method: head.method,
            path: head.path,
            body,
            keep_alive: head.keep_alive,
        })
    }

    /// Finds the end of the head (the byte after the blank line),
    /// remembering scan progress so trickled bytes are not rescanned.
    fn find_head_end(&mut self, inbuf: &[u8]) -> Option<usize> {
        let mut i = self.scan;
        while i < inbuf.len() {
            if inbuf[i] == b'\n' {
                match inbuf.get(i + 1) {
                    Some(b'\n') => return Some(i + 2),
                    Some(b'\r') if inbuf.get(i + 2) == Some(&b'\n') => return Some(i + 3),
                    _ => {}
                }
            }
            i += 1;
        }
        // Resume two bytes back: a terminator split across segments has at
        // most two of its bytes ("\n\r") already buffered.
        self.scan = inbuf.len().saturating_sub(2);
        None
    }
}

type ParsedHead = ((String, String, bool), usize, bool);

/// Parses the UTF-8 head text: request line + headers up to and including
/// the blank line. Returns `((method, path, keep_alive), content_length,
/// expects_continue)` or the `(status, message)` to reject with.
fn parse_head_text(head_text: &str) -> Result<ParsedHead, (u16, String)> {
    // `str::lines` splits on `\n` and strips a trailing `\r`, matching the
    // framing scan, which accepts bare-LF line endings too — parsing must
    // see the same lines the framing saw or the connection desyncs.
    let mut lines = head_text.lines().map(str::trim_end);
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err((400, format!("malformed request line '{request_line}'")));
    };
    if !matches!(version, "HTTP/1.1" | "HTTP/1.0") {
        return Err((505, format!("unsupported protocol '{version}'")));
    }

    let mut content_length: Option<usize> = None;
    let mut keep_alive = version == "HTTP/1.1";
    let mut expects_continue = false;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue; // the blank terminator (and any malformed header)
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => match value.parse::<usize>() {
                // Conflicting duplicates are a request-smuggling vector
                // (RFC 9112 §6.3): with last-write-wins, this server and an
                // intermediary that picks the first value would frame the
                // stream differently. Repeating the *same* value is legal.
                Ok(n) if content_length.is_some_and(|previous| previous != n) => {
                    return Err((400, "conflicting Content-Length headers".into()));
                }
                Ok(n) => content_length = Some(n),
                Err(_) => return Err((400, "invalid Content-Length".into())),
            },
            "connection" => {
                let value = value.to_ascii_lowercase();
                if value.contains("close") {
                    keep_alive = false;
                } else if value.contains("keep-alive") {
                    keep_alive = true;
                }
            }
            "expect" => {
                expects_continue = value.eq_ignore_ascii_case("100-continue");
            }
            "transfer-encoding" => {
                return Err((501, "transfer encodings are not supported".into()));
            }
            _ => {}
        }
    }
    Ok((
        (method.to_string(), path.to_string(), keep_alive),
        content_length.unwrap_or(0),
        expects_continue,
    ))
}

/// The interim response owed after a head with `Expect: 100-continue`.
pub(crate) const CONTINUE_RESPONSE: &[u8] = b"HTTP/1.1 100 Continue\r\n\r\n";

/// Appends one `application/json` response to `out`, with an optional
/// `Retry-After` header (seconds) — the admission-control `503` tells
/// clients when backing off is worth it.
///
/// Every response echoes the request's trace id as `x-request-id`, printed
/// as fixed-width hex so response byte lengths do not vary with the id.
pub(crate) fn encode_response(
    out: &mut Vec<u8>,
    status: u16,
    body: &str,
    keep_alive: bool,
    retry_after_secs: Option<u32>,
    request_id: u64,
) {
    use std::io::Write;
    let reason = reason_phrase(status);
    let connection = if keep_alive { "keep-alive" } else { "close" };
    // Writes into a Vec cannot fail.
    let _ = write!(
        out,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {connection}\r\nx-request-id: {request_id:016x}\r\n",
        body.len()
    );
    if let Some(seconds) = retry_after_secs {
        let _ = write!(out, "Retry-After: {seconds}\r\n");
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(body.as_bytes());
}

/// Appends one `text/plain` response to `out` — the Prometheus exposition
/// endpoint is the only non-JSON route, so it gets its own encoder rather
/// than a content-type knob on every JSON call site.
pub(crate) fn encode_text_response(
    out: &mut Vec<u8>,
    status: u16,
    body: &str,
    keep_alive: bool,
    request_id: u64,
) {
    use std::io::Write;
    let reason = reason_phrase(status);
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let _ = write!(
        out,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: {connection}\r\nx-request-id: {request_id:016x}\r\n\r\n",
        body.len()
    );
    out.extend_from_slice(body.as_bytes());
}

/// Appends the head of a streamed `application/json` response: status line
/// and headers with `Transfer-Encoding: chunked` instead of a
/// `Content-Length` — the body follows as [`encode_chunk`] pieces finished
/// by [`encode_last_chunk`], so the transport never needs to know the full
/// body size up front.
pub(crate) fn encode_stream_head(
    out: &mut Vec<u8>,
    status: u16,
    keep_alive: bool,
    request_id: u64,
) {
    use std::io::Write;
    let reason = reason_phrase(status);
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let _ = write!(
        out,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nTransfer-Encoding: chunked\r\nConnection: {connection}\r\nx-request-id: {request_id:016x}\r\n\r\n",
    );
}

/// Appends one chunk of a streamed body (hex size line, data, CRLF). An
/// empty slice is skipped entirely: a zero-length chunk would terminate
/// the body early ([`encode_last_chunk`] owns that lexeme).
pub(crate) fn encode_chunk(out: &mut Vec<u8>, data: &[u8]) {
    use std::io::Write;
    if data.is_empty() {
        return;
    }
    let _ = write!(out, "{:x}\r\n", data.len());
    out.extend_from_slice(data);
    out.extend_from_slice(b"\r\n");
}

/// Appends the chunked-body terminator (no trailers).
pub(crate) fn encode_last_chunk(out: &mut Vec<u8>) {
    out.extend_from_slice(b"0\r\n\r\n");
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Response",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIMITS: ReadLimits = ReadLimits {
        max_head_bytes: 1024,
        max_body_bytes: 256,
    };

    /// Feeds the whole input at once and steps once.
    fn read(input: &str) -> Step {
        let mut assembler = RequestAssembler::default();
        let mut inbuf = input.as_bytes().to_vec();
        assembler.step(&mut inbuf, LIMITS)
    }

    #[test]
    fn parses_a_post_with_body() {
        let outcome =
            read("POST /v1/evaluate HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody");
        let Step::Request(request) = outcome else {
            panic!("expected a request, got {outcome:?}");
        };
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/v1/evaluate");
        assert_eq!(request.body, b"body");
        assert!(request.keep_alive);
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        let Step::Request(request) = read("GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
        else {
            panic!()
        };
        assert!(!request.keep_alive);
        let Step::Request(request) = read("GET /healthz HTTP/1.0\r\n\r\n") else {
            panic!()
        };
        assert!(!request.keep_alive);
        let Step::Request(request) =
            read("GET /healthz HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
        else {
            panic!()
        };
        assert!(request.keep_alive);
    }

    #[test]
    fn incomplete_requests_ask_for_more() {
        assert!(matches!(read(""), Step::NeedMore));
        assert!(matches!(read("GET /healthz HTT"), Step::NeedMore));
        assert!(matches!(
            read("POST / HTTP/1.1\r\nContent-Length: 4\r\n\r\nbo"),
            Step::NeedMore
        ));
        // `mid_request` distinguishes a clean idle close from an abort.
        let mut assembler = RequestAssembler::default();
        let mut inbuf = b"GET /he".to_vec();
        assert!(matches!(assembler.step(&mut inbuf, LIMITS), Step::NeedMore));
        assert!(assembler.mid_request(&inbuf));
        assert!(!RequestAssembler::default().mid_request(&[]));
    }

    #[test]
    fn one_byte_at_a_time_parses_identically() {
        let wire = "POST /v1/evaluate HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody";
        let mut assembler = RequestAssembler::default();
        let mut inbuf = Vec::new();
        let mut parsed = None;
        for (i, byte) in wire.bytes().enumerate() {
            inbuf.push(byte);
            match assembler.step(&mut inbuf, LIMITS) {
                Step::NeedMore => assert!(i + 1 < wire.len(), "must finish on the last byte"),
                Step::Request(request) => parsed = Some(request),
                bad => panic!("unexpected {bad:?}"),
            }
        }
        let request = parsed.expect("request completes");
        assert_eq!(request.path, "/v1/evaluate");
        assert_eq!(request.body, b"body");
        assert!(inbuf.is_empty(), "all bytes consumed");
    }

    #[test]
    fn pipelined_requests_are_consumed_one_at_a_time() {
        let wire = "GET /healthz HTTP/1.1\r\n\r\nPOST /v1/evaluate HTTP/1.1\r\nContent-Length: 2\r\n\r\nhiGET /v1/metrics HTTP/1.1\r\n\r\n";
        let mut assembler = RequestAssembler::default();
        let mut inbuf = wire.as_bytes().to_vec();
        let mut paths = Vec::new();
        loop {
            match assembler.step(&mut inbuf, LIMITS) {
                Step::Request(request) => paths.push(request.path),
                Step::NeedMore => break,
                bad => panic!("unexpected {bad:?}"),
            }
        }
        assert_eq!(paths, ["/healthz", "/v1/evaluate", "/v1/metrics"]);
        assert!(inbuf.is_empty());
    }

    #[test]
    fn protocol_violations_get_the_right_status() {
        assert!(matches!(
            read("GARBAGE\r\n\r\n"),
            Step::Bad { status: 400, .. }
        ));
        assert!(matches!(
            read("GET / SPDY/3\r\n\r\n"),
            Step::Bad { status: 505, .. }
        ));
        assert!(matches!(
            read("POST / HTTP/1.1\r\nContent-Length: 999\r\n\r\n"),
            Step::Bad { status: 413, .. }
        ));
        assert!(matches!(
            read("POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Step::Bad { status: 400, .. }
        ));
        assert!(matches!(
            read("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Step::Bad { status: 501, .. }
        ));
        let long_header = format!("GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "a".repeat(2048));
        assert!(matches!(read(&long_header), Step::Bad { status: 431, .. }));
    }

    #[test]
    fn conflicting_content_lengths_are_rejected() {
        // The smuggling shape: two headers that frame the body differently.
        assert!(matches!(
            read("POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 11\r\n\r\nbody"),
            Step::Bad { status: 400, .. }
        ));
        // Order does not matter.
        assert!(matches!(
            read("POST / HTTP/1.1\r\nContent-Length: 11\r\nContent-Length: 4\r\n\r\nbody"),
            Step::Bad { status: 400, .. }
        ));
        // Identical duplicates are legal (RFC 9112 §6.3) and frame once.
        let Step::Request(request) =
            read("POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nbody")
        else {
            panic!("identical duplicate Content-Length must parse");
        };
        assert_eq!(request.body, b"body");
    }

    #[test]
    fn retry_after_header_is_emitted_on_demand() {
        let mut out = Vec::new();
        encode_response(&mut out, 503, "{}", false, Some(2), 0);
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
        let mut out = Vec::new();
        encode_response(&mut out, 200, "{}", true, None, 0);
        assert!(!String::from_utf8(out).unwrap().contains("Retry-After"));
    }

    #[test]
    fn request_id_header_is_fixed_width_hex() {
        // Fixed width keeps response byte lengths independent of the id, so
        // byte-exact transport tests only have to mask, never re-measure.
        let mut short = Vec::new();
        encode_response(&mut short, 200, "{}", true, None, 0x2a);
        let text = String::from_utf8(short.clone()).unwrap();
        assert!(text.contains("x-request-id: 000000000000002a\r\n"));
        let mut long = Vec::new();
        encode_response(&mut long, 200, "{}", true, None, u64::MAX);
        assert!(String::from_utf8(long.clone())
            .unwrap()
            .contains("x-request-id: ffffffffffffffff\r\n"));
        assert_eq!(short.len(), long.len());
        let mut stream = Vec::new();
        encode_stream_head(&mut stream, 200, true, 7);
        assert!(String::from_utf8(stream)
            .unwrap()
            .contains("x-request-id: 0000000000000007\r\n"));
    }

    #[test]
    fn text_responses_carry_the_prometheus_content_type() {
        let mut out = Vec::new();
        encode_text_response(&mut out, 200, "gf_up 1\n", true, 1);
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"));
        assert!(text.contains("Content-Length: 8\r\n"));
        assert!(text.contains("x-request-id: 0000000000000001\r\n"));
        assert!(text.ends_with("\r\n\r\ngf_up 1\n"));
    }

    #[test]
    fn expect_continue_flags_an_interim_response() {
        let mut assembler = RequestAssembler::default();
        let mut inbuf =
            b"POST / HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 2\r\n\r\n".to_vec();
        // Head complete, body not: the interim obligation is raised so the
        // transport can answer before the peer sends the body.
        assert!(matches!(assembler.step(&mut inbuf, LIMITS), Step::NeedMore));
        assert!(assembler.take_interim_due());
        assert!(!assembler.take_interim_due(), "taken once");
        inbuf.extend_from_slice(b"hi");
        let Step::Request(request) = assembler.step(&mut inbuf, LIMITS) else {
            panic!("body completes the request");
        };
        assert_eq!(request.body, b"hi");
    }

    #[test]
    fn bare_lf_requests_parse_their_headers() {
        // The framing scan accepts bare-LF endings, so header parsing must
        // too — otherwise Content-Length is dropped and the body bytes
        // desync the connection.
        let outcome = read("POST /v1/evaluate HTTP/1.1\nContent-Length: 4\n\nbody");
        let Step::Request(request) = outcome else {
            panic!("expected a request, got {outcome:?}");
        };
        assert_eq!(request.body, b"body");
    }

    #[test]
    fn newline_free_floods_are_capped_not_buffered() {
        // A head with no '\n' at all must hit the size limit, not grow the
        // buffer until the peer relents.
        let flood = "G".repeat(64 * 1024);
        assert!(matches!(read(&flood), Step::Bad { status: 431, .. }));
    }

    #[test]
    fn leading_crlf_is_tolerated_but_floods_are_not() {
        let Step::Request(request) = read("\r\nGET /healthz HTTP/1.1\r\n\r\n") else {
            panic!()
        };
        assert_eq!(request.path, "/healthz");
        assert!(matches!(
            read("\r\n\r\n\r\n\r\n\r\n\r\nGET /healthz HTTP/1.1\r\n\r\n"),
            Step::Bad { status: 400, .. }
        ));
    }

    #[test]
    fn chunked_responses_frame_each_piece() {
        let mut out = Vec::new();
        encode_stream_head(&mut out, 200, true, 0);
        encode_chunk(&mut out, b"{\"ratios\":[");
        encode_chunk(&mut out, b""); // skipped: must not terminate the body
        encode_chunk(&mut out, b"[1.0]]}");
        encode_last_chunk(&mut out);
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Transfer-Encoding: chunked\r\n"));
        assert!(!text.contains("Content-Length"));
        assert!(text.contains("\r\n\r\nb\r\n{\"ratios\":[\r\n"));
        assert!(text.ends_with("7\r\n[1.0]]}\r\n0\r\n\r\n"));
    }

    #[test]
    fn responses_have_framing_headers() {
        let mut out = Vec::new();
        encode_response(&mut out, 200, "{\"ok\":true}", true, None, 0);
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
        let mut out = Vec::new();
        encode_response(&mut out, 404, "{}", false, None, 0);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("404 Not Found"));
        assert!(text.contains("Connection: close"));
        let mut out = Vec::new();
        encode_response(&mut out, 408, "{}", false, None, 0);
        assert!(String::from_utf8(out)
            .unwrap()
            .starts_with("HTTP/1.1 408 Request Timeout\r\n"));
    }
}

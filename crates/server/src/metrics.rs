//! In-process serving metrics: lock-free counters behind `GET /v1/metrics`.
//!
//! Every counter is a relaxed atomic — recording a request costs a handful
//! of uncontended atomic adds, never a lock, so observability does not
//! serialize the serving path it observes. Snapshots read the counters
//! route by route; the combined view is not one atomic cut, which is the
//! normal contract for monitoring counters.
//!
//! The per-route registry is **derived from the dispatch table** in
//! [`crate::routes`]: one [`RouteStats`] per table entry plus the trailing
//! fallback bucket, with labels built from the same `(method, path)` pairs
//! the dispatcher matches on. An endpoint added to the table can therefore
//! never silently miss its metrics — there is no second list to keep in
//! sync.

use std::sync::atomic::{AtomicU64, Ordering};

use greenfpga::api::{LatencyHistogram, RouteMetrics};

use crate::routes::route_table;

/// Histogram bucket upper bounds in microseconds (inclusive), ascending.
/// Everything above the last bound lands in the implicit overflow bucket,
/// so a snapshot has `LATENCY_BOUNDS_US.len() + 1` counts. The 10µs and
/// 25µs bounds exist because the inline fast path really is that fast
/// (evaluate p50 ≈ 14µs) — a ≤50µs first bucket would hide all of it.
pub(crate) const LATENCY_BOUNDS_US: [f64; 13] = [
    10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1_000.0, 2_500.0, 5_000.0, 10_000.0, 25_000.0, 50_000.0,
    100_000.0,
];

/// Label of the fallback bucket for unknown routes and protocol-level
/// rejections.
const OTHER_LABEL: &str = "other";

/// One route's counters.
pub(crate) struct RouteStats {
    requests: AtomicU64,
    /// Client-fault responses (4xx statuses).
    errors_4xx: AtomicU64,
    /// Server-fault responses (everything non-2xx that is not 4xx).
    errors_5xx: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    /// Sum of observed latencies in nanoseconds, for Prometheus `_sum`.
    sum_ns: AtomicU64,
    buckets: [AtomicU64; LATENCY_BOUNDS_US.len() + 1],
}

impl RouteStats {
    fn new() -> Self {
        RouteStats {
            requests: AtomicU64::new(0),
            errors_4xx: AtomicU64::new(0),
            errors_5xx: AtomicU64::new(0),
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn record(&self, status: u16, elapsed_us: f64, bytes_in: u64, bytes_out: u64) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        // Split client mistakes from server faults; the snapshot keeps
        // the legacy `errors` field as the sum of both classes.
        if (400..500).contains(&status) {
            self.errors_4xx.fetch_add(1, Ordering::Relaxed);
        } else if !(200..300).contains(&status) {
            self.errors_5xx.fetch_add(1, Ordering::Relaxed);
        }
        self.bytes_in.fetch_add(bytes_in, Ordering::Relaxed);
        self.bytes_out.fetch_add(bytes_out, Ordering::Relaxed);
        self.sum_ns
            .fetch_add((elapsed_us * 1e3) as u64, Ordering::Relaxed);
        let bucket = LATENCY_BOUNDS_US
            .iter()
            .position(|&bound| elapsed_us <= bound)
            .unwrap_or(LATENCY_BOUNDS_US.len());
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Latency sum in microseconds, for the Prometheus `_sum` series.
    pub fn sum_us(&self) -> f64 {
        self.sum_ns.load(Ordering::Relaxed) as f64 / 1e3
    }

    fn snapshot(&self, route: &str) -> RouteMetrics {
        let errors_4xx = self.errors_4xx.load(Ordering::Relaxed);
        let errors_5xx = self.errors_5xx.load(Ordering::Relaxed);
        RouteMetrics {
            route: route.to_string(),
            requests: self.requests.load(Ordering::Relaxed),
            errors: errors_4xx + errors_5xx,
            errors_4xx,
            errors_5xx,
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            latency: LatencyHistogram {
                bounds_us: LATENCY_BOUNDS_US.to_vec(),
                counts: self
                    .buckets
                    .iter()
                    .map(|bucket| bucket.load(Ordering::Relaxed))
                    .collect(),
            },
        }
    }
}

/// The server's metrics registry: one [`RouteStats`] per dispatch-table
/// entry (plus the fallback bucket) and the admission-control rejection
/// counter.
pub(crate) struct Metrics {
    /// `labels.len() == routes.len()`; the last entry is the fallback.
    labels: Vec<String>,
    routes: Vec<RouteStats>,
    /// Connections rejected with `503` by the governor.
    pub rejected: AtomicU64,
}

impl Metrics {
    /// Builds the registry from the dispatch table — the single source of
    /// route identity.
    pub fn new() -> Self {
        let mut labels: Vec<String> = route_table()
            .iter()
            .map(|route| format!("{} {}", route.method, route.path))
            .collect();
        labels.push(OTHER_LABEL.to_string());
        let routes = (0..labels.len()).map(|_| RouteStats::new()).collect();
        Metrics {
            labels,
            routes,
            rejected: AtomicU64::new(0),
        }
    }

    /// Index of the fallback bucket.
    pub fn other_index(&self) -> usize {
        self.routes.len() - 1
    }

    /// Records one answered request. `route` is an index into the dispatch
    /// table; out-of-range indices count against the fallback bucket.
    pub fn record(
        &self,
        route: usize,
        status: u16,
        elapsed_us: f64,
        bytes_in: u64,
        bytes_out: u64,
    ) {
        let index = route.min(self.other_index());
        self.routes[index].record(status, elapsed_us, bytes_in, bytes_out);
    }

    /// Per-route snapshots in dispatch-table order (fallback last).
    pub fn snapshot_routes(&self) -> Vec<RouteMetrics> {
        self.labels
            .iter()
            .zip(&self.routes)
            .map(|(route, stats)| stats.snapshot(route))
            .collect()
    }

    /// Per-route latency sums in microseconds, in [`Self::snapshot_routes`]
    /// order — the Prometheus histogram `_sum` series.
    pub fn sums_us(&self) -> Vec<f64> {
        self.routes.iter().map(RouteStats::sum_us).collect()
    }
}

/// Event-loop iteration-duration bucket bounds in microseconds
/// (inclusive), ascending; one implicit overflow bucket follows.
pub(crate) const LOOP_BOUNDS_US: [f64; 8] = [
    10.0, 50.0, 100.0, 500.0, 1_000.0, 5_000.0, 20_000.0, 100_000.0,
];

/// Connection-state census slots, in [`crate::conn::ConnState`] order.
pub(crate) const CONN_STATES: [&str; 5] = ["read", "dispatched", "stream", "write", "drain"];

/// Event-loop health counters and gauges, written by the loop thread and
/// read by the Prometheus exposition. All relaxed atomics: the loop pays
/// a handful of uncontended adds per iteration, never a lock.
pub(crate) struct LoopStats {
    /// Loop iterations completed.
    pub iterations: AtomicU64,
    /// Total iteration time (driver wait excluded), nanoseconds.
    pub iter_ns_sum: AtomicU64,
    /// Iteration-duration histogram over [`LOOP_BOUNDS_US`].
    pub iter_buckets: [AtomicU64; LOOP_BOUNDS_US.len() + 1],
    /// Total time blocked in the readiness driver, nanoseconds.
    pub wait_ns_sum: AtomicU64,
    /// Wakeup pokes received (bytes drained from the wakeup pipe).
    pub wakeups_received: AtomicU64,
    /// Wakeup readiness events handled; `received - events` pokes were
    /// coalesced by the pipe before the loop saw them.
    pub wakeup_events: AtomicU64,
    /// Timer-heap entries (gauge, sampled each iteration).
    pub timer_heap: AtomicU64,
    /// Connection-state census (gauges, sampled periodically), in
    /// [`CONN_STATES`] order.
    pub conn_states: [AtomicU64; CONN_STATES.len()],
}

impl LoopStats {
    pub fn new() -> Self {
        LoopStats {
            iterations: AtomicU64::new(0),
            iter_ns_sum: AtomicU64::new(0),
            iter_buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            wait_ns_sum: AtomicU64::new(0),
            wakeups_received: AtomicU64::new(0),
            wakeup_events: AtomicU64::new(0),
            timer_heap: AtomicU64::new(0),
            conn_states: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Records one completed loop iteration.
    pub fn record_iteration(&self, iter_ns: u64, wait_ns: u64, timer_heap: usize) {
        self.iterations.fetch_add(1, Ordering::Relaxed);
        self.iter_ns_sum.fetch_add(iter_ns, Ordering::Relaxed);
        self.wait_ns_sum.fetch_add(wait_ns, Ordering::Relaxed);
        self.timer_heap.store(timer_heap as u64, Ordering::Relaxed);
        let us = iter_ns as f64 / 1e3;
        let bucket = LOOP_BOUNDS_US
            .iter()
            .position(|&bound| us <= bound)
            .unwrap_or(LOOP_BOUNDS_US.len());
        self.iter_buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table index of `POST /v1/evaluate` (healthz and metrics precede the
    /// query routes).
    fn evaluate_index() -> usize {
        route_table()
            .iter()
            .position(|route| route.path == "/v1/evaluate")
            .expect("evaluate is routed")
    }

    #[test]
    fn records_land_in_the_right_route_and_bucket() {
        let metrics = Metrics::new();
        let evaluate = evaluate_index();
        metrics.record(evaluate, 200, 60.0, 100, 900); // ≤100µs bucket
        metrics.record(evaluate, 422, 60.0, 50, 80); // client error
        metrics.record(evaluate, 500, 60.0, 10, 80); // server error
        metrics.record(evaluate, 200, 1e9, 100, 900); // overflow bucket
        metrics.record(usize::MAX, 404, 10.0, 0, 40); // clamped to "other"
        let routes = metrics.snapshot_routes();
        assert_eq!(routes.len(), route_table().len() + 1);
        let stats = &routes[evaluate];
        assert_eq!(stats.route, "POST /v1/evaluate");
        assert_eq!(stats.requests, 4);
        assert_eq!(stats.errors, 2, "errors stays the sum of both classes");
        assert_eq!(stats.errors_4xx, 1);
        assert_eq!(stats.errors_5xx, 1);
        assert_eq!(stats.bytes_in, 260);
        assert_eq!(stats.bytes_out, 1960);
        assert_eq!(stats.latency.counts[3], 3, "three 60us observations");
        assert_eq!(*stats.latency.counts.last().unwrap(), 1, "overflow bucket");
        assert_eq!(
            stats.latency.counts.len(),
            stats.latency.bounds_us.len() + 1
        );
        assert!(
            metrics.sums_us()[evaluate] >= 1e9,
            "the sum series tracks observed latency"
        );
        let other = &routes[metrics.other_index()];
        assert_eq!(other.route, "other");
        assert_eq!(other.requests, 1);
        assert_eq!(other.errors, 1);
        assert_eq!(other.errors_4xx, 1);
        assert_eq!(other.errors_5xx, 0);
        assert_eq!(other.bytes_out, 40);
    }

    #[test]
    fn boundary_observations_are_inclusive_and_fast_path_is_visible() {
        let metrics = Metrics::new();
        metrics.record(0, 200, 10.0, 0, 0); // exactly the first bound
        metrics.record(0, 200, 14.0, 0, 0); // the evaluate p50 regime
        metrics.record(0, 200, 30.0, 0, 0);
        let routes = metrics.snapshot_routes();
        assert_eq!(routes[0].latency.bounds_us[0], 10.0);
        assert_eq!(routes[0].latency.bounds_us[1], 25.0);
        assert_eq!(routes[0].latency.counts[0], 1);
        assert_eq!(routes[0].latency.counts[1], 1, "14µs is distinguishable");
        assert_eq!(routes[0].latency.counts[2], 1);
    }

    #[test]
    fn every_dispatch_table_entry_has_a_metrics_bucket() {
        // The drift this registry is designed out of: a route reachable
        // through the dispatcher without a counter. Labels come from the
        // same table the dispatcher matches on, so this holds trivially —
        // the test pins the derivation.
        let metrics = Metrics::new();
        let routes = metrics.snapshot_routes();
        for (i, route) in route_table().iter().enumerate() {
            assert_eq!(routes[i].route, format!("{} {}", route.method, route.path));
        }
        assert_eq!(routes.last().unwrap().route, "other");
    }
}

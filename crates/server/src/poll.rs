//! Readiness drivers: how the event loop learns that a socket wants
//! attention.
//!
//! Two implementations sit behind one [`Driver`] enum:
//!
//! * **`epoll`** (Linux): level-triggered readiness from the kernel via the
//!   raw-syscall wrappers in [`crate::sys`]. One `epoll_wait` call parks
//!   the loop until any of 10k+ sockets (or the worker wakeup pipe) has
//!   bytes, with the next timer deadline as the timeout.
//! * **`portable`** (anywhere `std` compiles): a speculative sweep that
//!   reports *every* registered fd as ready for whatever it is interested
//!   in. Non-blocking I/O makes that correct — a not-actually-ready socket
//!   just returns `WouldBlock` — at the cost of O(connections) syscalls per
//!   sweep, so the event loop sleeps between sweeps whenever a full pass
//!   makes no progress. Correctness-equivalent, throughput-inferior: it
//!   exists so the suite runs on platforms without `epoll` and as a
//!   differential check that the server's behavior does not depend on
//!   kernel readiness semantics.
//!
//! Both drivers are level-triggered by contract: an event is a *hint* that
//! progress may be possible, never a guarantee, and a consumer that does
//! not drain a socket will simply see the event again.

use std::collections::HashMap;
use std::io;
use std::time::Duration;

#[cfg(unix)]
use std::os::unix::io::RawFd;
#[cfg(not(unix))]
type RawFd = i32;

/// Which events a registered fd wants reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Interest {
    /// Report when reading may make progress.
    pub readable: bool,
    /// Report when writing may make progress.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest — the steady state of an idle keep-alive
    /// connection.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
}

/// One readiness report.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// Reading may make progress (includes hangup/error so EOF is seen).
    pub readable: bool,
    /// Writing may make progress.
    pub writable: bool,
}

/// Which driver to run the event loop on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DriverKind {
    /// Platform default (`epoll` on Linux, `portable` elsewhere), unless
    /// the `GF_SERVE_DRIVER` environment variable says otherwise.
    #[default]
    Auto,
    /// The raw-`epoll` readiness loop (Linux only).
    Epoll,
    /// The speculative-sweep fallback (any platform).
    Portable,
}

impl DriverKind {
    /// Resolves `Auto` against `GF_SERVE_DRIVER` and the platform.
    ///
    /// # Errors
    ///
    /// `InvalidInput` for an unrecognized environment value or for `Epoll`
    /// requested on a platform without epoll.
    pub(crate) fn resolve(self) -> io::Result<DriverKind> {
        let kind = match self {
            DriverKind::Auto => match std::env::var("GF_SERVE_DRIVER") {
                Ok(name) => match name.as_str() {
                    "epoll" => DriverKind::Epoll,
                    "portable" => DriverKind::Portable,
                    "" | "auto" => platform_default(),
                    other => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidInput,
                            format!("GF_SERVE_DRIVER must be epoll|portable|auto, got '{other}'"),
                        ));
                    }
                },
                Err(_) => platform_default(),
            },
            explicit => explicit,
        };
        if kind == DriverKind::Epoll && !cfg!(target_os = "linux") {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "the epoll driver requires Linux; use --driver portable",
            ));
        }
        Ok(kind)
    }

    /// The flag/env spelling of the kind (`"epoll"`, `"portable"`,
    /// `"auto"`).
    pub fn name(self) -> &'static str {
        match self {
            DriverKind::Auto => "auto",
            DriverKind::Epoll => "epoll",
            DriverKind::Portable => "portable",
        }
    }
}

fn platform_default() -> DriverKind {
    if cfg!(target_os = "linux") {
        DriverKind::Epoll
    } else {
        DriverKind::Portable
    }
}

/// A readiness source the event loop polls.
pub(crate) enum Driver {
    /// Kernel readiness via `epoll`.
    #[cfg(target_os = "linux")]
    Epoll(EpollDriver),
    /// Speculative sweep over every registered fd.
    Portable(PortableDriver),
}

impl Driver {
    /// Builds the driver for a **resolved** kind (`Auto` is a logic error).
    pub fn new(kind: DriverKind) -> io::Result<Driver> {
        match kind {
            #[cfg(target_os = "linux")]
            DriverKind::Epoll => Ok(Driver::Epoll(EpollDriver {
                epoll: crate::sys::linux::Epoll::new()?,
                buf: vec![crate::sys::linux::EpollEvent { events: 0, data: 0 }; 1024],
            })),
            #[cfg(not(target_os = "linux"))]
            DriverKind::Epoll => Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "epoll driver is Linux-only",
            )),
            DriverKind::Portable => Ok(Driver::Portable(PortableDriver {
                registered: HashMap::new(),
            })),
            DriverKind::Auto => Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "driver kind must be resolved before construction",
            )),
        }
    }

    /// True when `wait` never blocks, so the event loop must pace itself
    /// between sweeps.
    pub fn is_speculative(&self) -> bool {
        matches!(self, Driver::Portable(_))
    }

    /// Starts reporting `interest` for `fd` under `token`.
    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Driver::Epoll(d) => d.epoll.add(fd, epoll_mask(interest), token),
            Driver::Portable(d) => {
                d.registered.insert(token, interest);
                Ok(())
            }
        }
    }

    /// Changes the interest set of a registered fd.
    pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Driver::Epoll(d) => d.epoll.modify(fd, epoll_mask(interest), token),
            Driver::Portable(d) => {
                d.registered.insert(token, interest);
                Ok(())
            }
        }
    }

    /// Stops reporting `fd`/`token`. Best-effort.
    pub fn deregister(&mut self, fd: RawFd, token: u64) {
        match self {
            #[cfg(target_os = "linux")]
            Driver::Epoll(d) => d.epoll.delete(fd),
            Driver::Portable(d) => {
                d.registered.remove(&token);
            }
        }
        #[cfg(not(target_os = "linux"))]
        let _ = fd;
        #[cfg(target_os = "linux")]
        let _ = token;
    }

    /// Fills `out` with readiness reports. The epoll driver blocks up to
    /// `timeout` (forever when `None`); the portable driver returns a
    /// speculative report for every registered fd without blocking.
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        out.clear();
        match self {
            #[cfg(target_os = "linux")]
            Driver::Epoll(d) => {
                use crate::sys::linux::{EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
                let timeout_ms = match timeout {
                    // Round up so a 100µs deadline does not spin at 0ms.
                    Some(t) => {
                        t.as_millis().min(i32::MAX as u128 - 1) as i32
                            + i32::from(t.subsec_nanos() % 1_000_000 != 0)
                    }
                    None => -1,
                };
                let n = d.epoll.wait(&mut d.buf, timeout_ms)?;
                for event in &d.buf[..n] {
                    let bits = event.events;
                    let token = event.data;
                    out.push(Event {
                        token,
                        readable: bits & (EPOLLIN | EPOLLHUP | EPOLLERR | EPOLLRDHUP) != 0,
                        writable: bits & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
                    });
                }
                Ok(())
            }
            Driver::Portable(d) => {
                for (&token, &interest) in &d.registered {
                    if interest.readable || interest.writable {
                        out.push(Event {
                            token,
                            readable: interest.readable,
                            writable: interest.writable,
                        });
                    }
                }
                Ok(())
            }
        }
    }
}

/// State of the epoll driver.
#[cfg(target_os = "linux")]
pub(crate) struct EpollDriver {
    epoll: crate::sys::linux::Epoll,
    buf: Vec<crate::sys::linux::EpollEvent>,
}

/// State of the portable speculative driver.
pub(crate) struct PortableDriver {
    registered: HashMap<u64, Interest>,
}

#[cfg(target_os = "linux")]
fn epoll_mask(interest: Interest) -> u32 {
    use crate::sys::linux::{EPOLLIN, EPOLLOUT, EPOLLRDHUP};
    let mut mask = 0;
    if interest.readable {
        mask |= EPOLLIN | EPOLLRDHUP;
    }
    if interest.writable {
        mask |= EPOLLOUT;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn driver_kind_resolves_explicit_values() {
        assert_eq!(
            DriverKind::Portable.resolve().unwrap(),
            DriverKind::Portable
        );
        #[cfg(target_os = "linux")]
        assert_eq!(DriverKind::Epoll.resolve().unwrap(), DriverKind::Epoll);
    }

    #[test]
    fn portable_driver_reports_every_registered_fd() {
        let mut driver = Driver::new(DriverKind::Portable).unwrap();
        driver.register(3, 1, Interest::READ).unwrap();
        driver
            .register(
                4,
                2,
                Interest {
                    readable: false,
                    writable: true,
                },
            )
            .unwrap();
        let mut events = Vec::new();
        driver.wait(&mut events, Some(Duration::ZERO)).unwrap();
        assert_eq!(events.len(), 2);
        driver.deregister(3, 1);
        driver.wait(&mut events, Some(Duration::ZERO)).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 2);
        assert!(events[0].writable && !events[0].readable);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_driver_reports_real_readiness() {
        use std::io::Write;
        use std::os::unix::io::AsRawFd;
        use std::os::unix::net::UnixStream;
        let mut driver = Driver::new(DriverKind::Epoll).unwrap();
        let (mut tx, rx) = UnixStream::pair().unwrap();
        driver.register(rx.as_raw_fd(), 9, Interest::READ).unwrap();
        let mut events = Vec::new();
        driver.wait(&mut events, Some(Duration::ZERO)).unwrap();
        assert!(events.is_empty(), "no bytes, no events");
        tx.write_all(b"!").unwrap();
        driver
            .wait(&mut events, Some(Duration::from_secs(1)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 9);
        assert!(events[0].readable);
    }
}

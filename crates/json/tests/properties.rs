//! Property-based tests for the JSON subsystem.
//!
//! Written as deterministic sampling loops over [`gf_support::SplitMix64`]
//! (the offline build cannot fetch proptest): random value trees round-trip
//! through the writer and parser, random `f64` bit patterns round-trip
//! bit-for-bit, and random mutations of valid documents never panic the
//! parser.

use gf_json::{parse, parse_with, JsonError, ParseLimits, Value};
use gf_support::SplitMix64;

const CASES: usize = 256;

fn rng(test_id: u64) -> SplitMix64 {
    SplitMix64::new(0x5EED_0000_0000_0000 ^ test_id)
}

/// Draws a random value tree of bounded depth: scalars at the leaves,
/// arrays/objects (with occasionally exotic keys) in between.
fn gen_value(rng: &mut SplitMix64, depth: usize) -> Value {
    let choice = if depth == 0 {
        rng.gen_index(5)
    } else {
        rng.gen_index(7)
    };
    match choice {
        0 => Value::Null,
        1 => Value::Bool(rng.gen_bool()),
        2 => Value::Number(gen_finite_f64(rng)),
        3 => Value::String(gen_string(rng)),
        4 => Value::Number(rng.gen_range_u64(0, 1 << 53) as f64),
        5 => {
            let n = rng.gen_index(5);
            Value::Array((0..n).map(|_| gen_value(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.gen_index(5);
            Value::Object(
                (0..n)
                    .map(|_| (gen_string(rng), gen_value(rng, depth - 1)))
                    .collect(),
            )
        }
    }
}

/// A finite f64 drawn from raw bit patterns, spanning the full exponent
/// range including subnormals and signed zero.
fn gen_finite_f64(rng: &mut SplitMix64) -> f64 {
    loop {
        let candidate = f64::from_bits(rng.next_u64());
        if candidate.is_finite() {
            return candidate;
        }
    }
}

fn gen_string(rng: &mut SplitMix64) -> String {
    let exotic = [
        '"',
        '\\',
        '\n',
        '\t',
        '\u{0}',
        '\u{7}',
        '\u{1f}',
        'é',
        '→',
        '\u{1f600}',
        '\u{fffd}',
    ];
    let len = rng.gen_index(12);
    (0..len)
        .map(|_| {
            if rng.gen_bool() {
                exotic[rng.gen_index(exotic.len())]
            } else {
                (b'a' + rng.gen_index(26) as u8) as char
            }
        })
        .collect()
}

/// Bitwise equality on trees: `Value`'s derived `PartialEq` compares f64 by
/// value (so `-0.0 == 0.0` and NaN never equals itself); round-trip checks
/// need bits.
fn bit_equal(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Number(x), Value::Number(y)) => x.to_bits() == y.to_bits(),
        (Value::Array(xs), Value::Array(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| bit_equal(x, y))
        }
        (Value::Object(xs), Value::Object(ys)) => {
            xs.len() == ys.len()
                && xs
                    .iter()
                    .zip(ys)
                    .all(|((ka, va), (kb, vb))| ka == kb && bit_equal(va, vb))
        }
        _ => a == b,
    }
}

#[test]
fn random_trees_round_trip_compact_and_pretty() {
    let mut rng = rng(1);
    for case in 0..CASES {
        let value = gen_value(&mut rng, 4);
        let compact = value.to_json_string().unwrap();
        let parsed = parse(&compact).unwrap();
        assert!(bit_equal(&parsed, &value), "case {case}: {compact}");
        let pretty = value.to_json_string_pretty().unwrap();
        let parsed = parse(&pretty).unwrap();
        assert!(bit_equal(&parsed, &value), "case {case} (pretty)");
    }
}

#[test]
fn random_f64_bit_patterns_round_trip_exactly() {
    let mut rng = rng(2);
    for _ in 0..4 * CASES {
        let n = gen_finite_f64(&mut rng);
        let text = Value::Number(n).to_json_string().unwrap();
        let back = parse(&text).unwrap().as_f64().unwrap();
        assert_eq!(back.to_bits(), n.to_bits(), "{n:?} -> {text}");
    }
}

#[test]
fn f64_edge_cases_round_trip_or_reject() {
    // Signed zero survives the trip with its sign bit.
    let neg_zero = parse(&Value::Number(-0.0).to_json_string().unwrap())
        .unwrap()
        .as_f64()
        .unwrap();
    assert_eq!(neg_zero.to_bits(), (-0.0f64).to_bits());
    // 1e-9-scale precision is exact, not approximate.
    let tiny = 1e-9;
    let back = parse(&Value::Number(tiny).to_json_string().unwrap())
        .unwrap()
        .as_f64()
        .unwrap();
    assert_eq!(back.to_bits(), tiny.to_bits());
    // Non-finite numbers are rejected by the writer...
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        assert_eq!(
            Value::Number(bad).to_json_string().unwrap_err(),
            JsonError::NonFinite
        );
    }
    // ...and by the parser, as literals and as overflow.
    for bad in [
        "NaN",
        "nan",
        "Infinity",
        "-Infinity",
        "inf",
        "1e999",
        "-1e999",
    ] {
        assert!(parse(bad).is_err(), "accepted {bad}");
    }
}

#[test]
fn mutated_documents_never_panic_the_parser() {
    let mut rng = rng(3);
    for _ in 0..CASES {
        let value = gen_value(&mut rng, 3);
        let mut text = value.to_json_string().unwrap().into_bytes();
        // Apply a few random byte mutations (overwrite, truncate, extend).
        for _ in 0..1 + rng.gen_index(3) {
            if text.is_empty() {
                break;
            }
            match rng.gen_index(3) {
                0 => {
                    let i = rng.gen_index(text.len());
                    text[i] = (rng.next_u64() & 0x7f) as u8;
                }
                1 => {
                    text.truncate(rng.gen_index(text.len()));
                }
                _ => {
                    text.push(b"{}[],:\"0"[rng.gen_index(8)]);
                }
            }
        }
        // Mutations may produce invalid UTF-8; the parser takes &str, so
        // only check the lossy re-decoding — the point is "no panic".
        let text = String::from_utf8_lossy(&text);
        let _ = parse(&text);
    }
}

#[test]
fn depth_limit_is_enforced_at_every_level() {
    let mut rng = rng(4);
    for _ in 0..32 {
        let limit = 1 + rng.gen_index(12);
        let limits = ParseLimits {
            max_depth: limit,
            max_bytes: 1 << 20,
        };
        // Alternate array/object nesting to the exact limit: accepted.
        let mut doc = String::from("0");
        for level in 0..limit {
            doc = if level % 2 == 0 {
                format!("[{doc}]")
            } else {
                format!("{{\"k\":{doc}}}")
            };
        }
        assert!(parse_with(&doc, limits).is_ok(), "depth {limit}");
        // One level deeper: rejected with DepthLimit, not a stack overflow.
        let deeper = format!("[{doc}]");
        assert_eq!(
            parse_with(&deeper, limits).unwrap_err(),
            JsonError::DepthLimit { limit },
        );
    }
}

#[test]
fn nested_round_trip_preserves_structure_through_reserialization() {
    // Serialize → parse → serialize must be a fixed point (the writer is
    // deterministic and the parser preserves order).
    let mut rng = rng(5);
    for _ in 0..CASES {
        let value = gen_value(&mut rng, 4);
        let first = value.to_json_string().unwrap();
        let second = parse(&first).unwrap().to_json_string().unwrap();
        assert_eq!(first, second);
    }
}

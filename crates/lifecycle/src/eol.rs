//! End-of-life carbon model (Eq. 6 of the paper).
//!
//! `C_EOL = (1 − δ)·C_dis − δ·C_recycle`: the fraction `δ` of a retired chip
//! that is recycled earns a carbon *credit*, the rest pays the discard
//! (landfill / incineration) footprint. The per-ton factors come from the
//! EPA WARM ranges quoted in Table 1 of the paper.

use serde::{Deserialize, Serialize};

use gf_units::{Carbon, CarbonPerMass, Fraction, Mass};

/// End-of-life (discard + recycling) carbon model for one packaged chip.
///
/// # Examples
///
/// ```
/// use gf_lifecycle::EolModel;
/// use gf_units::{Fraction, Mass};
///
/// let eol = EolModel::default_warm().with_recycled_fraction(Fraction::new(0.8)?);
/// let cfp = eol.carbon_per_chip(Mass::from_grams(60.0));
/// assert!(cfp.is_credit()); // aggressive recycling earns a net credit
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EolModel {
    discard_factor: CarbonPerMass,
    recycle_credit_factor: CarbonPerMass,
    recycled_fraction: Fraction,
}

impl EolModel {
    /// EPA WARM range for the discard factor (MTCO₂e per ton of e-waste),
    /// as quoted in Table 1 of the paper.
    pub const DISCARD_RANGE_TONS_PER_TON: (f64, f64) = (0.03, 2.08);
    /// EPA WARM range for the recycling credit (MTCO₂e per ton of e-waste),
    /// as quoted in Table 1 of the paper.
    pub const RECYCLE_RANGE_TONS_PER_TON: (f64, f64) = (7.65, 29.83);

    /// Creates an end-of-life model from explicit factors.
    pub fn new(
        discard_factor: CarbonPerMass,
        recycle_credit_factor: CarbonPerMass,
        recycled_fraction: Fraction,
    ) -> Self {
        EolModel {
            discard_factor,
            recycle_credit_factor,
            recycled_fraction,
        }
    }

    /// Mid-range EPA WARM defaults with no recycling (δ = 0).
    pub fn default_warm() -> Self {
        EolModel {
            discard_factor: CarbonPerMass::from_tons_co2_per_ton(1.0),
            recycle_credit_factor: CarbonPerMass::from_tons_co2_per_ton(15.0),
            recycled_fraction: Fraction::ZERO,
        }
    }

    /// Sets the recycled fraction `δ`.
    pub fn with_recycled_fraction(mut self, delta: Fraction) -> Self {
        self.recycled_fraction = delta;
        self
    }

    /// Sets the discard factor (`C_dis`).
    pub fn with_discard_factor(mut self, factor: CarbonPerMass) -> Self {
        self.discard_factor = factor;
        self
    }

    /// Sets the recycling credit factor (`C_recycle`).
    pub fn with_recycle_credit_factor(mut self, factor: CarbonPerMass) -> Self {
        self.recycle_credit_factor = factor;
        self
    }

    /// The recycled fraction `δ` currently configured.
    pub fn recycled_fraction(&self) -> Fraction {
        self.recycled_fraction
    }

    /// End-of-life footprint of one chip of the given packaged mass.
    ///
    /// Negative results are genuine recycling credits.
    pub fn carbon_per_chip(&self, chip_mass: Mass) -> Carbon {
        let delta = self.recycled_fraction.value();
        let discard = self.discard_factor * chip_mass * (1.0 - delta);
        let credit = self.recycle_credit_factor * chip_mass * delta;
        discard - credit
    }

    /// The recycled fraction at which discard emissions and the recycling
    /// credit exactly cancel (`C_EOL = 0`), independent of chip mass.
    ///
    /// Returns `None` when both factors are zero.
    pub fn break_even_fraction(&self) -> Option<Fraction> {
        let d = self.discard_factor.as_kg_co2_per_ton();
        let r = self.recycle_credit_factor.as_kg_co2_per_ton();
        if d + r == 0.0 {
            None
        } else {
            Some(Fraction::clamped(d / (d + r)))
        }
    }
}

impl Default for EolModel {
    fn default() -> Self {
        EolModel::default_warm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CHIP: Mass = Mass::ZERO; // placeholder, real masses built in tests

    fn chip_mass() -> Mass {
        Mass::from_grams(50.0)
    }

    #[test]
    fn no_recycling_pays_full_discard() {
        let eol = EolModel::default_warm();
        let c = eol.carbon_per_chip(chip_mass());
        // 50 g = 5e-5 t at 1 tCO2/t = 0.05 kg.
        assert!((c.as_kg() - 0.05).abs() < 1e-9);
        assert!(!c.is_credit());
        let _ = CHIP; // silence unused-const lint in case of refactors
    }

    #[test]
    fn full_recycling_is_a_pure_credit() {
        let eol = EolModel::default_warm().with_recycled_fraction(Fraction::ONE);
        let c = eol.carbon_per_chip(chip_mass());
        assert!(c.is_credit());
        // 5e-5 t * 15 tCO2/t = 0.75 kg credit.
        assert!((c.as_kg() + 0.75).abs() < 1e-9);
    }

    #[test]
    fn eol_is_monotone_decreasing_in_delta() {
        let mut last = f64::INFINITY;
        for i in 0..=10 {
            let delta = Fraction::new(i as f64 / 10.0).unwrap();
            let c = EolModel::default_warm()
                .with_recycled_fraction(delta)
                .carbon_per_chip(chip_mass())
                .as_kg();
            assert!(c < last);
            last = c;
        }
    }

    #[test]
    fn break_even_fraction_zeroes_the_footprint() {
        let eol = EolModel::default_warm();
        let delta = eol.break_even_fraction().unwrap();
        let c = eol
            .with_recycled_fraction(delta)
            .carbon_per_chip(chip_mass());
        assert!(c.as_kg().abs() < 1e-9);
    }

    #[test]
    fn break_even_handles_degenerate_factors() {
        let eol = EolModel::new(CarbonPerMass::ZERO, CarbonPerMass::ZERO, Fraction::ZERO);
        assert_eq!(eol.break_even_fraction(), None);
        assert_eq!(eol.carbon_per_chip(chip_mass()), Carbon::ZERO);
    }

    #[test]
    fn scales_linearly_with_mass() {
        let eol = EolModel::default_warm().with_recycled_fraction(Fraction::HALF);
        let one = eol.carbon_per_chip(Mass::from_grams(30.0));
        let three = eol.carbon_per_chip(Mass::from_grams(90.0));
        assert!((three.as_kg() - 3.0 * one.as_kg()).abs() < 1e-12);
    }

    #[test]
    fn table1_ranges_are_exposed() {
        let (dlo, dhi) = EolModel::DISCARD_RANGE_TONS_PER_TON;
        let (rlo, rhi) = EolModel::RECYCLE_RANGE_TONS_PER_TON;
        assert!(dlo < dhi && rlo < rhi);
        // Default factors sit inside the published ranges.
        let eol = EolModel::default_warm();
        let d = eol.discard_factor.as_tons_co2_per_ton();
        let r = eol.recycle_credit_factor.as_tons_co2_per_ton();
        assert!(d >= dlo && d <= dhi);
        assert!(r >= rlo && r <= rhi);
    }

    #[test]
    fn builder_overrides_apply() {
        let eol = EolModel::default_warm()
            .with_discard_factor(CarbonPerMass::from_tons_co2_per_ton(2.08))
            .with_recycle_credit_factor(CarbonPerMass::from_tons_co2_per_ton(29.83))
            .with_recycled_fraction(Fraction::new(0.25).unwrap());
        assert_eq!(eol.recycled_fraction().value(), 0.25);
        let c = eol.carbon_per_chip(Mass::from_tons(1.0));
        // 0.75*2.08 - 0.25*29.83 tons = -5.8975 t
        assert!((c.as_tons() + 5.8975).abs() < 1e-9);
    }
}

//! Golden suite for the unified `Engine` facade and the versioned
//! `Query`/`Outcome` surface.
//!
//! Two families of guarantees:
//!
//! * **Bit-identity**: `Engine::run(Query::X)` must equal the direct
//!   `Estimator`/`CompiledScenario` call a library user would write, for
//!   every query kind — the facade adds caching and dispatch, never
//!   arithmetic.
//! * **Round-tripping**: every new request/response type encodes to JSON,
//!   decodes back to an equal value, and re-encodes to the identical text
//!   (`gf_json`'s shortest-round-trip `f64` writer makes this a bit-level
//!   property).

use gf_json::{parse, FromJson, ToJson};
use gf_support::SplitMix64;
use greenfpga::api::{
    CatalogRequest, CompareRequest, EvaluateRequest, FrontierResponse, GridRequest,
    IndustryRequest, MonteCarloRequest, MonteCarloResponse, OptimizeRequest, Outcome, Query,
    QueryKind, ReplayRequest, ScenarioRef, ScenarioRunRequest, SweepRequest, TornadoRequest,
};
use greenfpga::{
    catalog, ApiError, ApiErrorCode, CarbonIntensitySeries, CrossoverRequest, Domain, Engine,
    Estimator, FrontierRequest, HeatmapRenderer, Knob, MonteCarlo, Objective, OperatingPoint,
    OptPlatform, ScenarioSpec, SearchKnob, SeriesRef, SweepAxis,
};

fn engine() -> Engine {
    Engine::with_defaults().expect("default engine")
}

fn scenario_cases() -> Vec<ScenarioSpec> {
    vec![
        ScenarioSpec::baseline(Domain::Dnn),
        ScenarioSpec::baseline(Domain::Crypto),
        ScenarioSpec {
            domain: Domain::ImageProcessing,
            knobs: vec![(Knob::DutyCycle, 0.45), (Knob::UsageGridIntensity, 650.0)],
        },
    ]
}

fn point_cases() -> Vec<OperatingPoint> {
    vec![
        OperatingPoint::paper_default(),
        OperatingPoint {
            applications: 1,
            lifetime_years: 0.25,
            volume: 1_000,
        },
        OperatingPoint {
            applications: 12,
            lifetime_years: 3.5,
            volume: 10_000_000,
        },
    ]
}

#[test]
fn evaluate_and_compare_match_direct_compiled_calls() {
    let engine = engine();
    for scenario in scenario_cases() {
        let direct = Estimator::new(scenario.params())
            .compile(scenario.domain)
            .unwrap();
        for point in point_cases() {
            let Outcome::Evaluate(response) = engine
                .run(&Query::Evaluate(EvaluateRequest {
                    scenario: scenario.clone(),
                    point,
                }))
                .unwrap()
            else {
                panic!("wrong outcome kind");
            };
            let expected = direct.evaluate(point).unwrap();
            assert_eq!(response.comparison, expected);
            assert_eq!(
                response.comparison.fpga.total().as_kg().to_bits(),
                expected.fpga.total().as_kg().to_bits()
            );
        }
    }
    // Compare = one evaluate per scenario, in order.
    let scenarios = scenario_cases();
    let point = OperatingPoint::paper_default();
    let Outcome::Compare(compare) = engine
        .run(&Query::Compare(CompareRequest {
            scenarios: scenarios.clone(),
            point,
        }))
        .unwrap()
    else {
        panic!("wrong outcome kind");
    };
    for (scenario, comparison) in scenarios.iter().zip(&compare.comparisons) {
        let direct = Estimator::new(scenario.params())
            .compile(scenario.domain)
            .unwrap()
            .evaluate(point)
            .unwrap();
        assert_eq!(*comparison, direct);
    }
}

#[test]
fn batch_matches_the_direct_soa_kernel() {
    let engine = engine();
    let scenario = ScenarioSpec {
        domain: Domain::Dnn,
        knobs: vec![(Knob::FabGridIntensity, 120.0)],
    };
    let points: Vec<OperatingPoint> = (1..=32u64)
        .map(|i| OperatingPoint {
            applications: 1 + i % 7,
            lifetime_years: 0.25 * i as f64,
            volume: 5_000 * i,
        })
        .collect();
    let Outcome::Batch(response) = engine
        .run(&Query::Batch(greenfpga::BatchEvalRequest {
            scenario: scenario.clone(),
            points: points.clone(),
        }))
        .unwrap()
    else {
        panic!("wrong outcome kind");
    };
    let compiled = Estimator::new(scenario.params())
        .compile(scenario.domain)
        .unwrap();
    let mut buffer = greenfpga::ResultBuffer::new();
    compiled.evaluate_into(&points, &mut buffer).unwrap();
    assert_eq!(response.comparisons.len(), points.len());
    for (i, comparison) in response.comparisons.iter().enumerate() {
        assert_eq!(*comparison, buffer.comparison(i), "point {i}");
    }
}

#[test]
fn crossover_matches_the_direct_searches() {
    let engine = engine();
    for scenario in scenario_cases() {
        let request = CrossoverRequest::with_default_ranges(
            scenario.clone(),
            OperatingPoint::paper_default(),
        );
        let Outcome::Crossover(response) = engine.run(&Query::Crossover(request)).unwrap() else {
            panic!("wrong outcome kind");
        };
        let estimator = Estimator::new(scenario.params());
        let base = OperatingPoint::paper_default();
        assert_eq!(
            response.applications,
            estimator
                .crossover_in_applications(scenario.domain, 20, base.lifetime_years, base.volume)
                .unwrap()
        );
        assert_eq!(
            response.lifetime,
            estimator
                .crossover_in_lifetime(scenario.domain, base.applications, base.volume, 0.05, 5.0)
                .unwrap()
        );
        assert_eq!(
            response.volume,
            estimator
                .crossover_in_volume(
                    scenario.domain,
                    base.applications,
                    base.lifetime_years,
                    1_000,
                    50_000_000
                )
                .unwrap()
        );
    }
}

#[test]
fn frontier_matches_the_direct_refiner_and_renderer() {
    let engine = engine();
    let request = FrontierRequest {
        scenario: ScenarioSpec::baseline(Domain::Dnn),
        base: OperatingPoint::paper_default(),
        x_axis: SweepAxis::Applications,
        x_range: (1.0, 16.0),
        y_axis: SweepAxis::LifetimeYears,
        y_range: (0.25, 3.0),
        steps: 16,
    };
    let Outcome::Frontier(response) = engine.run(&Query::Frontier(request.clone())).unwrap() else {
        panic!("wrong outcome kind");
    };
    let (x_values, y_values) = request.lattice();
    let direct = Estimator::default()
        .frontier(
            Domain::Dnn,
            request.x_axis,
            &x_values,
            request.y_axis,
            &y_values,
            request.base,
        )
        .unwrap();
    assert_eq!(response, FrontierResponse::from(&direct));
    for (a, b) in response.x_values.iter().zip(&x_values) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    // The wire-form renderer reproduces the engine-side renderer exactly —
    // the CLI draws the identical winner map from the response alone.
    let renderer = HeatmapRenderer::new();
    assert_eq!(
        renderer.render_frontier_response(&response),
        renderer.render_frontier(&direct)
    );
}

#[test]
fn sweep_and_grid_match_the_direct_estimator() {
    let engine = engine();
    for scenario in scenario_cases() {
        let sweep = SweepRequest {
            scenario: scenario.clone(),
            base: OperatingPoint::paper_default(),
            axis: SweepAxis::LifetimeYears,
            range: (0.25, 4.0),
            steps: 9,
        };
        let Outcome::Sweep(series) = engine.run(&Query::Sweep(sweep.clone())).unwrap() else {
            panic!("wrong outcome kind");
        };
        let direct = Estimator::new(scenario.params())
            .sweep(scenario.domain, sweep.axis, &sweep.values(), sweep.base)
            .unwrap();
        assert_eq!(series, direct, "{scenario:?}");

        let grid = GridRequest {
            scenario: scenario.clone(),
            base: OperatingPoint::paper_default(),
            x_axis: SweepAxis::Applications,
            x_range: (1.0, 6.0),
            y_axis: SweepAxis::VolumeUnits,
            y_range: (10_000.0, 1_000_000.0),
            steps: 6,
            stream: false,
        };
        let Outcome::Grid(served) = engine.run(&Query::Grid(grid.clone())).unwrap() else {
            panic!("wrong outcome kind");
        };
        let (x_values, y_values) = grid.lattice();
        let direct = Estimator::new(scenario.params())
            .ratio_grid(
                scenario.domain,
                grid.x_axis,
                &x_values,
                grid.y_axis,
                &y_values,
                grid.base,
            )
            .unwrap();
        assert_eq!(served, direct, "{scenario:?}");
    }
}

#[test]
fn tornado_montecarlo_and_industry_match_direct_calls() {
    let engine = engine();
    let scenario = ScenarioSpec {
        domain: Domain::Crypto,
        knobs: vec![(Knob::EolRecycledFraction, 0.9)],
    };
    let point = OperatingPoint::paper_default();
    let Outcome::Tornado(analysis) = engine
        .run(&Query::Tornado(TornadoRequest {
            scenario: scenario.clone(),
            point,
        }))
        .unwrap()
    else {
        panic!("wrong outcome kind");
    };
    assert_eq!(
        analysis,
        Estimator::new(scenario.params())
            .tornado_analysis(scenario.domain, point)
            .unwrap()
    );

    let mc_request = MonteCarloRequest {
        scenario: scenario.clone(),
        point,
        samples: 48,
        seed: 7,
    };
    let Outcome::MonteCarlo(mc) = engine.run(&Query::MonteCarlo(mc_request)).unwrap() else {
        panic!("wrong outcome kind");
    };
    let direct = MonteCarlo::new(48)
        .with_seed(7)
        .run(&scenario.params(), scenario.domain, point)
        .unwrap();
    assert_eq!(mc, MonteCarloResponse::from(&direct));

    let Outcome::Industry(industry) = engine
        .run(&Query::Industry(IndustryRequest::default()))
        .unwrap()
    else {
        panic!("wrong outcome kind");
    };
    let estimator = Estimator::default();
    let paper = greenfpga::IndustryScenario::paper_defaults();
    let expected = [
        paper
            .evaluate_fpga(&estimator, &greenfpga::industry_fpga1())
            .unwrap(),
        paper
            .evaluate_fpga(&estimator, &greenfpga::industry_fpga2())
            .unwrap(),
        paper
            .evaluate_asic(&estimator, &greenfpga::industry_asic1())
            .unwrap(),
        paper
            .evaluate_asic(&estimator, &greenfpga::industry_asic2())
            .unwrap(),
    ];
    assert_eq!(industry.devices.len(), expected.len());
    for (device, expected) in industry.devices.iter().zip(&expected) {
        assert_eq!(device.cfp, *expected, "{}", device.device);
    }
}

#[test]
fn every_query_kind_runs_through_the_engine() {
    // Completeness: each of the fourteen kinds decodes from a minimal body
    // and runs to a matching outcome kind. A kind added to the enum without
    // an engine dispatch arm fails here.
    let engine = engine();
    assert_eq!(QueryKind::ALL.len(), 14);
    for kind in QueryKind::ALL {
        let body = match kind {
            QueryKind::Batch => r#"{"domain": "dnn", "points": [{"applications": 2}]}"#,
            QueryKind::Compare => r#"{"scenarios": [{"domain": "dnn"}]}"#,
            QueryKind::Sweep => {
                r#"{"domain": "dnn", "axis": "apps", "from": 1, "to": 4, "steps": 3}"#
            }
            QueryKind::MonteCarlo => r#"{"domain": "dnn", "samples": 8}"#,
            QueryKind::Industry | QueryKind::Catalog => "{}",
            QueryKind::Frontier | QueryKind::Grid => r#"{"domain": "dnn", "steps": 4}"#,
            QueryKind::Scenario | QueryKind::Replay => r#"{"id": "dnn_baseline"}"#,
            QueryKind::Optimize => {
                r#"{"domain": "dnn", "objective": {"goal": "min_total"},
                    "search": [{"axis": "apps", "min": 1, "max": 8}]}"#
            }
            _ => r#"{"domain": "dnn"}"#,
        };
        let query = kind.decode_request(&parse(body).unwrap()).unwrap();
        assert_eq!(query.kind(), kind);
        let outcome = engine.run(&query).unwrap_or_else(|e| panic!("{kind}: {e}"));
        assert_eq!(outcome.kind(), kind);
        // The route path is derived from the same enumeration.
        assert_eq!(QueryKind::from_path(kind.path()), Some(kind));
    }
}

/// A random but valid query of the given kind — test-data generator for
/// the round-trip properties.
fn random_query(kind: QueryKind, rng: &mut SplitMix64) -> Query {
    let domain = Domain::ALL[(rng.next_u64() % 3) as usize];
    let mut scenario = ScenarioSpec::baseline(domain);
    if rng.next_u64().is_multiple_of(2) {
        scenario
            .knobs
            .push((Knob::DutyCycle, rng.gen_range_f64(0.05, 0.95)));
    }
    let point = OperatingPoint {
        applications: 1 + rng.next_u64() % 20,
        lifetime_years: rng.gen_range_f64(0.1, 6.0),
        volume: 1 + rng.next_u64() % 10_000_000,
    };
    match kind {
        QueryKind::Evaluate => Query::Evaluate(EvaluateRequest { scenario, point }),
        QueryKind::Batch => Query::Batch(greenfpga::BatchEvalRequest {
            scenario,
            points: (0..1 + rng.next_u64() % 5)
                .map(|i| OperatingPoint {
                    applications: 1 + i,
                    lifetime_years: rng.gen_range_f64(0.1, 4.0),
                    volume: 1 + rng.next_u64() % 1_000_000,
                })
                .collect(),
        }),
        QueryKind::Compare => Query::Compare(CompareRequest {
            scenarios: vec![scenario, ScenarioSpec::baseline(Domain::Dnn)],
            point,
        }),
        QueryKind::Crossover => Query::Crossover(CrossoverRequest {
            max_applications: 1 + rng.next_u64() % 30,
            lifetime_range: (0.05, rng.gen_range_f64(1.0, 8.0)),
            volume_range: (1_000, 1_000 + rng.next_u64() % 50_000_000),
            ..CrossoverRequest::with_default_ranges(scenario, point)
        }),
        QueryKind::Frontier => Query::Frontier(FrontierRequest {
            scenario,
            base: point,
            x_axis: SweepAxis::Applications,
            x_range: (1.0, rng.gen_range_f64(4.0, 32.0)),
            y_axis: SweepAxis::LifetimeYears,
            y_range: (0.25, rng.gen_range_f64(1.0, 4.0)),
            steps: 2 + (rng.next_u64() % 30) as usize,
        }),
        QueryKind::Sweep => Query::Sweep(SweepRequest {
            scenario,
            base: point,
            axis: [
                SweepAxis::Applications,
                SweepAxis::LifetimeYears,
                SweepAxis::VolumeUnits,
            ][(rng.next_u64() % 3) as usize],
            range: (1.0, rng.gen_range_f64(2.0, 64.0)),
            steps: 2 + (rng.next_u64() % 50) as usize,
        }),
        QueryKind::Grid => Query::Grid(GridRequest {
            scenario,
            base: point,
            x_axis: SweepAxis::VolumeUnits,
            x_range: (1_000.0, rng.gen_range_f64(10_000.0, 1e7)),
            y_axis: SweepAxis::Applications,
            y_range: (1.0, rng.gen_range_f64(2.0, 16.0)),
            steps: 2 + (rng.next_u64() % 20) as usize,
            stream: false,
        }),
        QueryKind::Tornado => Query::Tornado(TornadoRequest { scenario, point }),
        QueryKind::MonteCarlo => Query::MonteCarlo(MonteCarloRequest {
            scenario,
            point,
            samples: 1 + (rng.next_u64() % 512) as usize,
            seed: rng.next_u64() >> 12, // keep below 2^53 for exact JSON
        }),
        QueryKind::Industry => Query::Industry(IndustryRequest {
            knobs: vec![(Knob::UsageGridIntensity, rng.gen_range_f64(50.0, 800.0))],
            service_years: rng.gen_range_f64(1.0, 10.0),
            fpga_applications: 1 + rng.next_u64() % 6,
            volume: 1 + rng.next_u64() % 5_000_000,
        }),
        QueryKind::Scenario => Query::Scenario(ScenarioRunRequest {
            scenario: if rng.next_u64().is_multiple_of(2) {
                ScenarioRef::Inline(scenario)
            } else {
                random_catalog_ref(rng)
            },
            point: rng.next_u64().is_multiple_of(2).then_some(point),
        }),
        QueryKind::Replay => Query::Replay(ReplayRequest {
            scenario: random_catalog_ref(rng),
            point: rng.next_u64().is_multiple_of(2).then_some(point),
            series: if rng.next_u64().is_multiple_of(2) {
                SeriesRef::Region(
                    CarbonIntensitySeries::REGIONS[(rng.next_u64() % 4) as usize].to_string(),
                )
            } else {
                SeriesRef::Inline(
                    CarbonIntensitySeries::new(
                        (0..24).map(|_| rng.gen_range_f64(20.0, 900.0)).collect(),
                        1.0,
                    )
                    .unwrap(),
                )
            },
            interpolate: rng.next_u64().is_multiple_of(2),
            years: 1,
        }),
        QueryKind::Optimize => Query::Optimize(OptimizeRequest {
            scenario: if rng.next_u64().is_multiple_of(2) {
                ScenarioRef::Inline(scenario)
            } else {
                random_catalog_ref(rng)
            },
            point: rng.next_u64().is_multiple_of(2).then_some(point),
            // Unconstrained objectives only: the generated query must both
            // round-trip and run, and a random constraint can be infeasible.
            objective: [
                Objective::MinTotal(OptPlatform::Fpga),
                Objective::MinOperational(OptPlatform::Asic),
                Objective::MinEmbodied(OptPlatform::Fpga),
                Objective::MaxFpgaMargin,
                Objective::MinRatio,
            ][(rng.next_u64() % 5) as usize],
            search: {
                let mut knobs = vec![SearchKnob {
                    axis: SweepAxis::Applications,
                    min: 1.0,
                    max: (2 + rng.next_u64() % 19) as f64,
                    integer: true,
                }];
                if rng.next_u64().is_multiple_of(2) {
                    knobs.push(SearchKnob {
                        axis: SweepAxis::LifetimeYears,
                        min: 0.25,
                        max: rng.gen_range_f64(1.0, 6.0),
                        integer: false,
                    });
                }
                knobs
            },
            constraints: Vec::new(),
            tolerance: OptimizeRequest::DEFAULT_TOLERANCE,
            max_evals: if rng.next_u64().is_multiple_of(2) {
                OptimizeRequest::DEFAULT_MAX_EVALS
            } else {
                500 + rng.next_u64() % 2_000
            },
        }),
        QueryKind::Catalog => Query::Catalog(CatalogRequest),
    }
}

/// A random catalog reference, half the time carrying a knob override.
fn random_catalog_ref(rng: &mut SplitMix64) -> ScenarioRef {
    let entries = catalog();
    ScenarioRef::Catalog {
        id: entries[(rng.next_u64() as usize) % entries.len()]
            .id
            .to_string(),
        knobs: if rng.next_u64().is_multiple_of(2) {
            vec![(Knob::DutyCycle, rng.gen_range_f64(0.05, 0.95))]
        } else {
            Vec::new()
        },
    }
}

#[test]
fn query_envelopes_round_trip_bit_for_bit() {
    let mut rng = SplitMix64::new(0xA11CE);
    for round in 0..40 {
        for kind in QueryKind::ALL {
            let query = random_query(kind, &mut rng);
            let text = query.to_json().to_json_string().unwrap();
            let decoded = Query::from_json(&parse(&text).unwrap())
                .unwrap_or_else(|e| panic!("round {round} {kind}: {e}\n{text}"));
            assert_eq!(decoded, query, "round {round} {kind}");
            // encode -> decode -> encode is a fixed point.
            let again = decoded.to_json().to_json_string().unwrap();
            assert_eq!(again, text, "round {round} {kind}");
            // The flat request body decodes through the route-side path too.
            let body = query.request_body().to_json_string().unwrap();
            let via_route = kind.decode_request(&parse(&body).unwrap()).unwrap();
            assert_eq!(via_route, query, "round {round} {kind} (route body)");
        }
    }
}

#[test]
fn outcome_envelopes_round_trip_bit_for_bit() {
    // Outcomes carry real model numbers; run cheap queries and round-trip
    // their outcomes. Heavy kinds get small sizes.
    let engine = engine();
    let mut rng = SplitMix64::new(0xB0B);
    for kind in QueryKind::ALL {
        let query = match kind {
            QueryKind::MonteCarlo => Query::MonteCarlo(MonteCarloRequest {
                scenario: ScenarioSpec::baseline(Domain::Dnn),
                point: OperatingPoint::paper_default(),
                samples: 16,
                seed: 3,
            }),
            QueryKind::Frontier | QueryKind::Grid | QueryKind::Sweep => {
                let mut query = random_query(kind, &mut rng);
                match &mut query {
                    Query::Frontier(r) => r.steps = 5,
                    Query::Grid(r) => r.steps = 4,
                    Query::Sweep(r) => r.steps = 4,
                    _ => unreachable!(),
                }
                query
            }
            _ => random_query(kind, &mut rng),
        };
        let outcome = engine.run(&query).unwrap();
        let text = outcome.to_json().to_json_string().unwrap();
        let decoded = Outcome::from_json(&parse(&text).unwrap())
            .unwrap_or_else(|e| panic!("{kind}: {e}\n{text}"));
        assert_eq!(decoded, outcome, "{kind}");
        let again = decoded.to_json().to_json_string().unwrap();
        assert_eq!(again, text, "{kind}");
        // The bare result decodes through the client-side path too.
        let body = outcome.result_json().to_json_string().unwrap();
        assert_eq!(
            kind.decode_result(&parse(&body).unwrap()).unwrap(),
            outcome,
            "{kind} (result body)"
        );
    }
}

#[test]
fn api_errors_round_trip_and_envelope_rejects_garbage() {
    for code in ApiErrorCode::ALL {
        let error = ApiError::new(code, format!("probe {code}"));
        let text = error.to_json().to_json_string().unwrap();
        let decoded = ApiError::from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(decoded, error);
    }
    // Unknown kinds and unsupported versions are schema errors.
    assert!(Query::from_json(&parse(r#"{"kind": "teleport", "domain": "dnn"}"#).unwrap()).is_err());
    assert!(
        Query::from_json(&parse(r#"{"v": 2, "kind": "evaluate", "domain": "dnn"}"#).unwrap())
            .is_err()
    );
    assert!(Query::from_json(&parse(r#"{"domain": "dnn"}"#).unwrap()).is_err());
}

#[test]
fn engine_errors_speak_the_taxonomy() {
    let engine = engine();
    // Model-level rejection: zero applications.
    let error = engine
        .run(&Query::Evaluate(EvaluateRequest {
            scenario: ScenarioSpec::baseline(Domain::Dnn),
            point: OperatingPoint {
                applications: 0,
                lifetime_years: 1.0,
                volume: 1,
            },
        }))
        .unwrap_err();
    assert_eq!(error.code, ApiErrorCode::Model);
    assert_eq!(error.http_status(), 422);
    assert_eq!(error.exit_code(), 3);
    assert!(!error.retryable);
    // Programmatic requests violating wire-level limits fail identically
    // to their HTTP counterparts instead of silently diverging.
    let too_many = engine
        .run(&Query::Compare(CompareRequest {
            scenarios: vec![ScenarioSpec::baseline(Domain::Dnn); 17],
            point: OperatingPoint::paper_default(),
        }))
        .unwrap_err();
    assert_eq!(too_many.code, ApiErrorCode::BadRequest);
    let big_seed = engine
        .run(&Query::MonteCarlo(MonteCarloRequest {
            scenario: ScenarioSpec::baseline(Domain::Dnn),
            point: OperatingPoint::paper_default(),
            samples: 8,
            seed: (1u64 << 53) + 1,
        }))
        .unwrap_err();
    assert_eq!(big_seed.code, ApiErrorCode::BadRequest);
    assert!(big_seed.message.contains("2^53"), "{big_seed}");
}

//! Operational (field-use) carbon model.
//!
//! `C_op = C_src,use × E_use`, where the energy spent during usage is the
//! product of peak power, duty cycle and deployment time (§3.3(1) of the
//! paper).

use serde::{Deserialize, Serialize};

use gf_units::{Carbon, CarbonIntensity, Energy, Fraction, Power, TimeSpan};

/// Operating profile of one deployed device.
///
/// # Examples
///
/// ```
/// use gf_lifecycle::OperationProfile;
/// use gf_units::{CarbonIntensity, Fraction, Power, TimeSpan};
///
/// let profile = OperationProfile::new(
///     Power::from_watts(220.0),                       // Stratix-10-class TDP
///     Fraction::new(0.6)?,                            // 60% duty cycle
///     CarbonIntensity::from_grams_per_kwh(475.0),     // world-average grid
/// );
/// let cfp = profile.carbon_over(TimeSpan::from_years(2.0));
/// assert!(cfp.as_tons() > 0.5);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperationProfile {
    peak_power: Power,
    duty_cycle: Fraction,
    grid: CarbonIntensity,
}

impl OperationProfile {
    /// Creates an operating profile from peak power, duty cycle and the
    /// usage grid's carbon intensity.
    pub fn new(peak_power: Power, duty_cycle: Fraction, grid: CarbonIntensity) -> Self {
        OperationProfile {
            peak_power,
            duty_cycle,
            grid,
        }
    }

    /// Continuous operation (100% duty cycle) on the given grid.
    pub fn continuous(peak_power: Power, grid: CarbonIntensity) -> Self {
        OperationProfile {
            peak_power,
            duty_cycle: Fraction::ONE,
            grid,
        }
    }

    /// Peak power of the device.
    pub fn peak_power(&self) -> Power {
        self.peak_power
    }

    /// Duty cycle (fraction of wall-clock time the device draws peak power).
    pub fn duty_cycle(&self) -> Fraction {
        self.duty_cycle
    }

    /// Carbon intensity of the usage grid (`C_src,use`).
    pub fn grid(&self) -> CarbonIntensity {
        self.grid
    }

    /// Returns a copy with a different peak power (used to apply the
    /// iso-performance power ratios of Table 2).
    pub fn with_peak_power(mut self, power: Power) -> Self {
        self.peak_power = power;
        self
    }

    /// Returns a copy with the peak power scaled by `factor`.
    pub fn scaled_power(mut self, factor: f64) -> Self {
        self.peak_power = self.peak_power * factor;
        self
    }

    /// Average (duty-cycle-weighted) power draw.
    pub fn average_power(&self) -> Power {
        self.peak_power * self.duty_cycle.value()
    }

    /// Energy consumed over a deployment of the given duration (`E_use`).
    pub fn energy_over(&self, duration: TimeSpan) -> Energy {
        self.average_power() * duration
    }

    /// Operational footprint over a deployment of the given duration.
    pub fn carbon_over(&self, duration: TimeSpan) -> Carbon {
        self.energy_over(duration) * self.grid
    }

    /// Operational footprint per year of deployment.
    pub fn carbon_per_year(&self) -> Carbon {
        self.carbon_over(TimeSpan::from_years(1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> OperationProfile {
        OperationProfile::new(
            Power::from_watts(100.0),
            Fraction::new(0.5).unwrap(),
            CarbonIntensity::from_grams_per_kwh(400.0),
        )
    }

    #[test]
    fn hand_calculation() {
        // 100 W at 50% duty = 50 W avg = 438.3 kWh/year; x 0.4 kg/kWh.
        let c = profile().carbon_per_year();
        assert!((c.as_kg() - 438.3 * 0.4).abs() < 0.1);
    }

    #[test]
    fn linear_in_duration() {
        let p = profile();
        let one = p.carbon_over(TimeSpan::from_years(1.0));
        let three = p.carbon_over(TimeSpan::from_years(3.0));
        assert!((three.as_kg() - 3.0 * one.as_kg()).abs() < 1e-9);
        assert_eq!(p.carbon_over(TimeSpan::ZERO), Carbon::ZERO);
    }

    #[test]
    fn continuous_profile_has_unit_duty() {
        let p = OperationProfile::continuous(
            Power::from_watts(70.0),
            CarbonIntensity::from_grams_per_kwh(380.0),
        );
        assert!(p.duty_cycle().is_one());
        assert_eq!(p.average_power(), Power::from_watts(70.0));
    }

    #[test]
    fn duty_cycle_scales_energy() {
        let full = OperationProfile::continuous(
            Power::from_watts(200.0),
            CarbonIntensity::from_grams_per_kwh(400.0),
        );
        let half = OperationProfile::new(
            Power::from_watts(200.0),
            Fraction::HALF,
            CarbonIntensity::from_grams_per_kwh(400.0),
        );
        let t = TimeSpan::from_years(1.0);
        assert!((full.energy_over(t).as_kwh() - 2.0 * half.energy_over(t).as_kwh()).abs() < 1e-9);
    }

    #[test]
    fn scaled_power_applies_iso_performance_ratio() {
        let asic = profile();
        let fpga = profile().scaled_power(3.0); // DNN domain power ratio
        assert!((fpga.peak_power().as_watts() - 300.0).abs() < 1e-12);
        assert!(
            (fpga.carbon_per_year().as_kg() - 3.0 * asic.carbon_per_year().as_kg()).abs() < 1e-9
        );
        let replaced = asic.with_peak_power(Power::from_watts(42.0));
        assert_eq!(replaced.peak_power(), Power::from_watts(42.0));
    }

    #[test]
    fn cleaner_grid_lowers_footprint() {
        let dirty = profile();
        let clean = OperationProfile::new(
            dirty.peak_power(),
            dirty.duty_cycle(),
            CarbonIntensity::from_grams_per_kwh(30.0),
        );
        assert!(clean.carbon_per_year() < dirty.carbon_per_year());
        assert_eq!(clean.grid().as_grams_per_kwh(), 30.0);
    }
}

//! Property-based tests for the manufacturing substrate.
//!
//! Deterministic sampling loops over [`gf_support::SplitMix64`] stand in
//! for the proptest strategies the offline environment cannot fetch.

use gf_act::{ManufacturingModel, PackagingModel, TechnologyNode, Wafer, YieldModel};
use gf_support::SplitMix64;
use gf_units::{Area, Fraction};

const CASES: usize = 128;

fn rng(test_id: u64) -> SplitMix64 {
    SplitMix64::new(0xAC7_0000 ^ test_id)
}

fn any_node(rng: &mut SplitMix64) -> TechnologyNode {
    TechnologyNode::ALL[rng.gen_index(TechnologyNode::ALL.len())]
}

#[test]
fn yield_is_always_a_probability() {
    let mut rng = rng(1);
    for _ in 0..CASES {
        let mm2 = rng.gen_range_f64(0.0, 3000.0);
        let d0 = rng.gen_range_f64(0.0, 2.0);
        let alpha = rng.gen_range_f64(0.5, 10.0);
        for model in [
            YieldModel::Poisson,
            YieldModel::Murphy,
            YieldModel::NegativeBinomial { alpha },
        ] {
            let y = model.die_yield(Area::from_mm2(mm2), d0);
            assert!((0.0..=1.0).contains(&y), "{model:?} gave {y}");
        }
    }
}

#[test]
fn yield_monotone_in_area() {
    let mut rng = rng(2);
    for _ in 0..CASES {
        let a = rng.gen_range_f64(1.0, 1500.0);
        let b = rng.gen_range_f64(1.0, 1500.0);
        let d0 = rng.gen_range_f64(0.01, 1.0);
        let (small, large) = if a < b { (a, b) } else { (b, a) };
        for model in [
            YieldModel::Poisson,
            YieldModel::Murphy,
            YieldModel::NegativeBinomial { alpha: 3.0 },
        ] {
            assert!(
                model.die_yield(Area::from_mm2(large), d0)
                    <= model.die_yield(Area::from_mm2(small), d0) + 1e-12
            );
        }
    }
}

#[test]
fn manufacturing_carbon_positive_and_monotone_in_area() {
    let mut rng = rng(3);
    for _ in 0..CASES {
        let node = any_node(&mut rng);
        let a = rng.gen_range_f64(1.0, 900.0);
        let b = rng.gen_range_f64(1.0, 900.0);
        let m = ManufacturingModel::for_node(node);
        let (small, large) = if a < b { (a, b) } else { (b, a) };
        let cs = m.carbon_per_die(Area::from_mm2(small)).unwrap();
        let cl = m.carbon_per_die(Area::from_mm2(large)).unwrap();
        assert!(cs.as_kg() > 0.0);
        assert!(cl.as_kg() + 1e-12 >= cs.as_kg());
    }
}

#[test]
fn recycling_never_increases_manufacturing_carbon() {
    let mut rng = rng(4);
    for _ in 0..CASES {
        let node = any_node(&mut rng);
        let mm2 = rng.gen_range_f64(1.0, 900.0);
        let rho = rng.next_f64();
        let die = Area::from_mm2(mm2);
        let base = ManufacturingModel::for_node(node)
            .carbon_per_die(die)
            .unwrap();
        let recycled = ManufacturingModel::for_node(node)
            .with_recycled_material_fraction(Fraction::new(rho).unwrap())
            .carbon_per_die(die)
            .unwrap();
        assert!(recycled.as_kg() <= base.as_kg() + 1e-9);
    }
}

#[test]
fn breakdown_components_sum_to_total() {
    let mut rng = rng(5);
    for _ in 0..CASES {
        let node = any_node(&mut rng);
        let mm2 = rng.gen_range_f64(1.0, 900.0);
        let m = ManufacturingModel::for_node(node);
        let b = m.breakdown_per_die(Area::from_mm2(mm2)).unwrap();
        let total = m.carbon_per_die(Area::from_mm2(mm2)).unwrap();
        assert!((b.total().as_kg() - total.as_kg()).abs() < 1e-9);
        assert!(b.energy.as_kg() >= 0.0 && b.gas.as_kg() >= 0.0 && b.materials.as_kg() >= 0.0);
    }
}

#[test]
fn dies_per_wafer_conserves_area() {
    let mut rng = rng(6);
    for _ in 0..CASES {
        let mm2 = rng.gen_range_f64(1.0, 2000.0);
        let wafer = Wafer::standard_300mm();
        let die = Area::from_mm2(mm2);
        let dies = wafer.dies_per_wafer(die);
        // Whole dies can never exceed the usable area of the wafer.
        assert!(dies as f64 * mm2 <= wafer.usable_area().as_mm2() + 1e-6);
    }
}

#[test]
fn packaging_monotone_in_area() {
    let mut rng = rng(7);
    for _ in 0..CASES {
        let a = rng.gen_range_f64(0.0, 2000.0);
        let b = rng.gen_range_f64(0.0, 2000.0);
        let (small, large) = if a < b { (a, b) } else { (b, a) };
        for pkg in [
            PackagingModel::monolithic(),
            PackagingModel::interposer_2p5d(),
        ] {
            assert!(
                pkg.carbon_for_die(Area::from_mm2(large)).as_kg() + 1e-12
                    >= pkg.carbon_for_die(Area::from_mm2(small)).as_kg()
            );
        }
    }
}

//! Durations used by the lifecycle model (years, months, hours).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

/// A span of calendar time, stored internally in years.
///
/// Application lifetimes (`T_i`), chip lifetimes, project durations
/// (`T_proj`) and application-development times (`T_app,FE`, `T_app,BE`,
/// `T_app,config`) are all `TimeSpan`s. One year is defined as 8766 hours
/// (365.25 days), consistently with [`crate::HOURS_PER_YEAR`].
///
/// # Examples
///
/// ```
/// use gf_units::TimeSpan;
///
/// let fe = TimeSpan::from_months(2.0);
/// let be = TimeSpan::from_months(1.0);
/// assert!(((fe + be).as_years() - 0.25).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct TimeSpan(f64);

impl TimeSpan {
    /// Zero duration.
    pub const ZERO: TimeSpan = TimeSpan(0.0);

    /// Creates a span from years.
    pub fn from_years(years: f64) -> Self {
        TimeSpan(years)
    }

    /// Creates a span from months (1 month = 1/12 year).
    pub fn from_months(months: f64) -> Self {
        TimeSpan(months / 12.0)
    }

    /// Creates a span from days (1 year = 365.25 days).
    pub fn from_days(days: f64) -> Self {
        TimeSpan(days / 365.25)
    }

    /// Creates a span from hours.
    pub fn from_hours(hours: f64) -> Self {
        TimeSpan(hours / crate::HOURS_PER_YEAR)
    }

    /// Creates a span from seconds.
    pub fn from_seconds(seconds: f64) -> Self {
        Self::from_hours(seconds / 3600.0)
    }

    /// Returns the span in years.
    pub fn as_years(self) -> f64 {
        self.0
    }

    /// Returns the span in months.
    pub fn as_months(self) -> f64 {
        self.0 * 12.0
    }

    /// Returns the span in days.
    pub fn as_days(self) -> f64 {
        self.0 * 365.25
    }

    /// Returns the span in hours.
    pub fn as_hours(self) -> f64 {
        self.0 * crate::HOURS_PER_YEAR
    }

    /// Returns the span in seconds.
    pub fn as_seconds(self) -> f64 {
        self.as_hours() * 3600.0
    }

    /// Returns `true` when the duration is negative. Negative durations are
    /// rejected by model constructors (`C-VALIDATE`) but the quantity type
    /// itself allows representing them so subtraction is closed.
    pub fn is_negative(self) -> bool {
        self.0 < 0.0
    }

    /// Returns `true` when the value is finite (not NaN or infinite).
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Component-wise minimum.
    pub fn min(self, other: TimeSpan) -> TimeSpan {
        TimeSpan(self.0.min(other.0))
    }

    /// Component-wise maximum.
    pub fn max(self, other: TimeSpan) -> TimeSpan {
        TimeSpan(self.0.max(other.0))
    }
}

impl Add for TimeSpan {
    type Output = TimeSpan;
    fn add(self, rhs: TimeSpan) -> TimeSpan {
        TimeSpan(self.0 + rhs.0)
    }
}

impl Sub for TimeSpan {
    type Output = TimeSpan;
    fn sub(self, rhs: TimeSpan) -> TimeSpan {
        TimeSpan(self.0 - rhs.0)
    }
}

impl Mul<f64> for TimeSpan {
    type Output = TimeSpan;
    fn mul(self, rhs: f64) -> TimeSpan {
        TimeSpan(self.0 * rhs)
    }
}

impl Mul<TimeSpan> for f64 {
    type Output = TimeSpan;
    fn mul(self, rhs: TimeSpan) -> TimeSpan {
        TimeSpan(self * rhs.0)
    }
}

impl Div<f64> for TimeSpan {
    type Output = TimeSpan;
    fn div(self, rhs: f64) -> TimeSpan {
        TimeSpan(self.0 / rhs)
    }
}

impl Div<TimeSpan> for TimeSpan {
    type Output = f64;
    fn div(self, rhs: TimeSpan) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for TimeSpan {
    fn sum<I: Iterator<Item = TimeSpan>>(iter: I) -> TimeSpan {
        iter.fold(TimeSpan::ZERO, |acc, t| acc + t)
    }
}

impl fmt::Display for TimeSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.abs() >= 1.0 {
            write!(f, "{:.2} years", self.0)
        } else if self.as_months().abs() >= 1.0 {
            write!(f, "{:.2} months", self.as_months())
        } else {
            write!(f, "{:.2} hours", self.as_hours())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert!((TimeSpan::from_months(6.0).as_years() - 0.5).abs() < 1e-12);
        assert!((TimeSpan::from_years(1.0).as_hours() - 8766.0).abs() < 1e-9);
        assert!((TimeSpan::from_days(365.25).as_years() - 1.0).abs() < 1e-12);
        assert!((TimeSpan::from_hours(8766.0).as_years() - 1.0).abs() < 1e-12);
        assert!((TimeSpan::from_seconds(3600.0).as_hours() - 1.0).abs() < 1e-12);
        assert!((TimeSpan::from_years(2.0).as_months() - 24.0).abs() < 1e-12);
        assert!((TimeSpan::from_years(1.0).as_seconds() - 8766.0 * 3600.0).abs() < 1e-3);
        assert!((TimeSpan::from_years(2.0).as_days() - 730.5).abs() < 1e-9);
    }

    #[test]
    fn arithmetic_and_ratio() {
        let total: TimeSpan = [TimeSpan::from_years(1.0), TimeSpan::from_months(6.0)]
            .into_iter()
            .sum();
        assert!((total.as_years() - 1.5).abs() < 1e-12);
        assert!((total / TimeSpan::from_months(6.0) - 3.0).abs() < 1e-12);
        assert!(((total * 2.0).as_years() - 3.0).abs() < 1e-12);
        assert!(((total - TimeSpan::from_years(0.5)).as_years() - 1.0).abs() < 1e-12);
        assert!(((total / 3.0).as_years() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn negativity_and_bounds() {
        assert!((TimeSpan::from_years(1.0) - TimeSpan::from_years(2.0)).is_negative());
        assert!(!TimeSpan::from_years(1.0).is_negative());
        let a = TimeSpan::from_years(1.0);
        let b = TimeSpan::from_years(2.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", TimeSpan::from_years(2.0)), "2.00 years");
        assert_eq!(format!("{}", TimeSpan::from_months(3.0)), "3.00 months");
        assert_eq!(format!("{}", TimeSpan::from_hours(5.0)), "5.00 hours");
    }
}

//! Property-based tests for the quantity layer.
//!
//! Written as deterministic sampling loops over [`gf_support::SplitMix64`]
//! (the offline build environment cannot fetch proptest); each test draws a
//! few hundred cases from the same ranges the original proptest strategies
//! used.

use gf_support::SplitMix64;
use gf_units::{
    Area, Carbon, CarbonIntensity, CarbonPerArea, ChipCount, Energy, Fraction, GateCount, Mass,
    Power, TimeSpan,
};

const CASES: usize = 256;

fn rng(test_id: u64) -> SplitMix64 {
    SplitMix64::new(0x5EED_0000_0000_0000 ^ test_id)
}

#[test]
fn carbon_addition_is_commutative() {
    let mut rng = rng(1);
    for _ in 0..CASES {
        let (a, b) = (
            rng.gen_range_f64(-1.0e9, 1.0e9),
            rng.gen_range_f64(-1.0e9, 1.0e9),
        );
        let x = Carbon::from_kg(a) + Carbon::from_kg(b);
        let y = Carbon::from_kg(b) + Carbon::from_kg(a);
        assert!((x.as_kg() - y.as_kg()).abs() < 1e-6);
    }
}

#[test]
fn carbon_ton_round_trip() {
    let mut rng = rng(2);
    for _ in 0..CASES {
        let kg = rng.gen_range_f64(-1.0e12, 1.0e12);
        let c = Carbon::from_kg(kg);
        assert!((Carbon::from_tons(c.as_tons()).as_kg() - kg).abs() <= kg.abs() * 1e-12 + 1e-9);
    }
}

#[test]
fn energy_round_trips() {
    let mut rng = rng(3);
    for _ in 0..CASES {
        let kwh = rng.gen_range_f64(0.0, 1.0e9);
        let e = Energy::from_kwh(kwh);
        assert!(
            (Energy::from_gigawatt_hours(e.as_gigawatt_hours()).as_kwh() - kwh).abs()
                <= kwh * 1e-12 + 1e-9
        );
        assert!((Energy::from_joules(e.as_joules()).as_kwh() - kwh).abs() <= kwh * 1e-9 + 1e-9);
    }
}

#[test]
fn power_time_energy_scaling_is_linear() {
    let mut rng = rng(4);
    for _ in 0..CASES {
        let w = rng.gen_range_f64(0.0, 1.0e6);
        let h = rng.gen_range_f64(0.0, 1.0e5);
        let k = rng.gen_range_f64(0.1, 10.0);
        // (k*P) * t == k * (P * t)
        let lhs = (Power::from_watts(w) * k) * TimeSpan::from_hours(h);
        let rhs = (Power::from_watts(w) * TimeSpan::from_hours(h)) * k;
        assert!((lhs.as_kwh() - rhs.as_kwh()).abs() <= lhs.as_kwh().abs() * 1e-9 + 1e-9);
    }
}

#[test]
fn energy_intensity_product_is_monotone() {
    let mut rng = rng(5);
    for _ in 0..CASES {
        let kwh = rng.gen_range_f64(0.0, 1.0e7);
        let g1 = rng.gen_range_f64(0.0, 1000.0);
        let g2 = rng.gen_range_f64(0.0, 1000.0);
        let e = Energy::from_kwh(kwh);
        let lo = CarbonIntensity::from_grams_per_kwh(g1.min(g2));
        let hi = CarbonIntensity::from_grams_per_kwh(g1.max(g2));
        assert!((e * lo).as_kg() <= (e * hi).as_kg() + 1e-9);
    }
}

#[test]
fn area_cm2_round_trip() {
    let mut rng = rng(6);
    for _ in 0..CASES {
        let mm2 = rng.gen_range_f64(0.0, 1.0e9);
        let a = Area::from_mm2(mm2);
        assert!((Area::from_cm2(a.as_cm2()).as_mm2() - mm2).abs() <= mm2 * 1e-12 + 1e-9);
    }
}

#[test]
fn cpa_area_product_scales_with_area() {
    let mut rng = rng(7);
    for _ in 0..CASES {
        let cpa = rng.gen_range_f64(0.0, 100.0);
        let mm2 = rng.gen_range_f64(0.0, 1.0e5);
        let k = rng.gen_range_f64(1.0, 10.0);
        let c = CarbonPerArea::from_kg_per_cm2(cpa);
        let base = (c * Area::from_mm2(mm2)).as_kg();
        let scaled = (c * Area::from_mm2(mm2 * k)).as_kg();
        assert!(scaled + 1e-9 >= base);
    }
}

#[test]
fn timespan_month_round_trip() {
    let mut rng = rng(8);
    for _ in 0..CASES {
        let years = rng.gen_range_f64(0.0, 1.0e4);
        let t = TimeSpan::from_years(years);
        assert!(
            (TimeSpan::from_months(t.as_months()).as_years() - years).abs() <= years * 1e-12 + 1e-9
        );
        assert!(
            (TimeSpan::from_hours(t.as_hours()).as_years() - years).abs() <= years * 1e-9 + 1e-9
        );
    }
}

#[test]
fn fraction_rejects_out_of_range() {
    let mut rng = rng(9);
    for _ in 0..CASES {
        let v = if rng.gen_bool() {
            rng.gen_range_f64(-1.0e6, -1e-9)
        } else {
            rng.gen_range_f64(1.0 + 1e-9, 1.0e6)
        };
        assert!(Fraction::new(v).is_err(), "{v} should be rejected");
    }
}

#[test]
fn fraction_accepts_unit_interval() {
    let mut rng = rng(10);
    for case in 0..CASES {
        // Hit the boundaries exactly as well as interior points.
        let v = match case {
            0 => 0.0,
            1 => 1.0,
            _ => rng.next_f64(),
        };
        let f = Fraction::new(v).unwrap();
        assert!((f.value() + f.complement().value() - 1.0).abs() < 1e-12);
        assert!(Fraction::clamped(v).value() == f.value());
    }
}

#[test]
fn fraction_product_stays_in_range() {
    let mut rng = rng(11);
    for _ in 0..CASES {
        let (a, b) = (rng.next_f64(), rng.next_f64());
        let p = Fraction::new(a).unwrap() * Fraction::new(b).unwrap();
        assert!((0.0..=1.0).contains(&p.value()));
    }
}

#[test]
fn gate_ceiling_division_covers_application() {
    let mut rng = rng(12);
    for _ in 0..CASES {
        let app = rng.gen_range_u64(1, 1_000_000_000);
        let cap = rng.gen_range_u64(1, 1_000_000_000);
        let n = GateCount::new(app).fpgas_required(GateCount::new(cap));
        // n FPGAs hold the app, n-1 do not.
        assert!(n * cap >= app);
        assert!((n - 1) * cap < app);
    }
}

#[test]
fn mass_ton_round_trip() {
    let mut rng = rng(13);
    for _ in 0..CASES {
        let kg = rng.gen_range_f64(0.0, 1.0e9);
        let m = Mass::from_kg(kg);
        assert!((Mass::from_tons(m.as_tons()).as_kg() - kg).abs() <= kg * 1e-12 + 1e-9);
        assert!((Mass::from_grams(m.as_grams()).as_kg() - kg).abs() <= kg * 1e-9 + 1e-9);
    }
}

#[test]
fn chip_count_sum_matches_u64_sum() {
    let mut rng = rng(14);
    for _ in 0..CASES {
        let len = rng.gen_index(20);
        let counts: Vec<u64> = (0..len).map(|_| rng.gen_range_u64(0, 999_999)).collect();
        let expected: u64 = counts.iter().sum();
        let total: ChipCount = counts.iter().map(|&c| ChipCount::new(c)).sum();
        assert_eq!(total.get(), expected);
    }
}

#[test]
fn carbon_sum_matches_fold() {
    let mut rng = rng(15);
    for _ in 0..CASES {
        let len = rng.gen_index(50);
        let values: Vec<f64> = (0..len).map(|_| rng.gen_range_f64(-1.0e6, 1.0e6)).collect();
        let expected: f64 = values.iter().sum();
        let total: Carbon = values.iter().map(|&v| Carbon::from_kg(v)).sum();
        assert!((total.as_kg() - expected).abs() < 1e-6);
    }
}

#[test]
fn intensity_blend_is_bounded() {
    let mut rng = rng(16);
    for _ in 0..CASES {
        let a = rng.gen_range_f64(0.0, 2000.0);
        let b = rng.gen_range_f64(0.0, 2000.0);
        let w = rng.next_f64();
        let x = CarbonIntensity::from_grams_per_kwh(a);
        let y = CarbonIntensity::from_grams_per_kwh(b);
        let blended = x.blend(y, w).as_grams_per_kwh();
        assert!(blended >= a.min(b) - 1e-9 && blended <= a.max(b) + 1e-9);
    }
}

//! Lifecycle carbon models surrounding manufacturing: design, end-of-life,
//! application development and field operation.
//!
//! These are the models the GreenFPGA paper adds on top of the ACT-style
//! manufacturing substrate (`gf_act`):
//!
//! * [`DesignHouse`] / [`DesignProject`] — the design-phase CFP of Eq. (4),
//!   built from design-house sustainability-report figures (annual energy,
//!   headcount) instead of gate counts alone,
//! * [`EolModel`] — the end-of-life CFP of Eq. (6): discard minus a
//!   recycling credit,
//! * [`AppDevModel`] — the application-development CFP of Eq. (7): RTL/HLS
//!   front-end time, synthesis/place-and-route back-end time and per-device
//!   configuration time, run on a CPU farm,
//! * [`OperationProfile`] — the operational CFP: peak power × duty cycle ×
//!   usage-grid carbon intensity.
//!
//! # Examples
//!
//! ```
//! use gf_lifecycle::{DesignHouse, DesignProject};
//! use gf_units::{GateCount, TimeSpan};
//!
//! let house = DesignHouse::default_fabless();
//! let project = DesignProject::new(
//!     GateCount::from_millions(4200.0),
//!     TimeSpan::from_years(2.0),
//!     400,
//! )?;
//! let cfp = house.design_carbon(&project);
//! assert!(cfp.as_tons() > 1.0);
//! # Ok::<(), gf_lifecycle::LifecycleError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod appdev;
mod design;
mod design_baseline;
mod eol;
mod error;
mod operation;

pub use appdev::{AppDevModel, DevelopmentFlow};
pub use design::{DesignHouse, DesignProject};
pub use design_baseline::GateBasedDesignModel;
pub use eol::EolModel;
pub use error::LifecycleError;
pub use operation::OperationProfile;

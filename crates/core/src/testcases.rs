//! Industry testcases (Table 3) and the Fig. 10 / Fig. 11 scenarios.
//!
//! The paper evaluates GreenFPGA on four industry devices: two ASIC
//! accelerators (modeled after Moffett Antoum and the Google TPU) and two
//! FPGAs (modeled after Intel Agilex 7 and Stratix 10), using the TDP, die
//! area and technology node listed in Table 3.

use serde::{Deserialize, Serialize};

use gf_act::TechnologyNode;
use gf_units::{Area, ChipCount, Power, TimeSpan};

use crate::{
    Application, AsicSpec, CfpBreakdown, ChipSpec, DesignStaffing, Estimator, FpgaSpec,
    GreenFpgaError,
};

/// IndustryASIC1: a 340 mm², 70 W sparse-inference accelerator at 12 nm
/// (Moffett-Antoum-class).
pub fn industry_asic1() -> AsicSpec {
    AsicSpec::new(
        ChipSpec::new(
            "IndustryASIC1",
            Area::from_mm2(340.0),
            Power::from_watts(70.0),
            TechnologyNode::N12,
        )
        .expect("industry testcase constants are valid"),
    )
}

/// IndustryASIC2: a 600 mm², 192 W datacenter ML accelerator at 7 nm
/// (TPU-class).
pub fn industry_asic2() -> AsicSpec {
    AsicSpec::new(
        ChipSpec::new(
            "IndustryASIC2",
            Area::from_mm2(600.0),
            Power::from_watts(192.0),
            TechnologyNode::N7,
        )
        .expect("industry testcase constants are valid"),
    )
}

/// IndustryFPGA1: a 380 mm², 160 W FPGA at 14 nm (Agilex-7-class).
pub fn industry_fpga1() -> FpgaSpec {
    FpgaSpec::new(
        ChipSpec::new(
            "IndustryFPGA1",
            Area::from_mm2(380.0),
            Power::from_watts(160.0),
            TechnologyNode::N14,
        )
        .expect("industry testcase constants are valid"),
    )
}

/// IndustryFPGA2: a 550 mm², 220 W FPGA at 10 nm (Stratix-10-class).
pub fn industry_fpga2() -> FpgaSpec {
    FpgaSpec::new(
        ChipSpec::new(
            "IndustryFPGA2",
            Area::from_mm2(550.0),
            Power::from_watts(220.0),
            TechnologyNode::N10,
        )
        .expect("industry testcase constants are valid"),
    )
}

/// The deployment scenario of Figs. 10–11: a six-year service life at one
/// million units, with the FPGAs reprogrammed for three successive
/// applications and the ASICs serving the single application they were built
/// for.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IndustryScenario {
    /// Total service life.
    pub service_years: f64,
    /// Number of applications an FPGA serves over the service life.
    pub fpga_applications: u64,
    /// Deployment volume.
    pub volume: u64,
    /// Design staffing assumed for these flagship products.
    pub staffing: DesignStaffing,
}

impl IndustryScenario {
    /// The paper's setup: 6 years, 3 FPGA applications, 1 M units.
    pub fn paper_defaults() -> Self {
        IndustryScenario {
            service_years: 6.0,
            fpga_applications: 3,
            volume: 1_000_000,
            staffing: DesignStaffing::new(2000, 3.0),
        }
    }

    fn fpga_applications_list(&self, fpga: &FpgaSpec) -> Result<Vec<Application>, GreenFpgaError> {
        let apps = self.fpga_applications.max(1);
        let per_app_years = self.service_years / apps as f64;
        (0..apps)
            .map(|i| {
                Application::new(
                    format!("{}-app-{}", fpga.chip().name(), i + 1),
                    fpga.capacity(),
                    TimeSpan::from_years(per_app_years),
                    ChipCount::new(self.volume),
                )
            })
            .collect()
    }

    /// Evaluates the footprint of an industry FPGA under this scenario
    /// (Fig. 10).
    ///
    /// # Errors
    ///
    /// Propagates model errors.
    pub fn evaluate_fpga(
        &self,
        estimator: &Estimator,
        fpga: &FpgaSpec,
    ) -> Result<CfpBreakdown, GreenFpgaError> {
        let applications = self.fpga_applications_list(fpga)?;
        estimator.fpga_estimate(fpga, &self.staffing, &applications)
    }

    /// Evaluates the footprint of an industry ASIC under this scenario
    /// (Fig. 11): one application spanning the full service life.
    ///
    /// # Errors
    ///
    /// Propagates model errors.
    pub fn evaluate_asic(
        &self,
        estimator: &Estimator,
        asic: &AsicSpec,
    ) -> Result<CfpBreakdown, GreenFpgaError> {
        let application = Application::new(
            format!("{}-app", asic.chip().name()),
            asic.chip().gates(),
            TimeSpan::from_years(self.service_years),
            ChipCount::new(self.volume),
        )?;
        estimator.asic_estimate(asic, &self.staffing, &[application])
    }
}

impl Default for IndustryScenario {
    fn default() -> Self {
        IndustryScenario::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_constants_are_reproduced() {
        let a1 = industry_asic1();
        assert_eq!(a1.chip().area(), Area::from_mm2(340.0));
        assert_eq!(a1.chip().tdp(), Power::from_watts(70.0));
        assert_eq!(a1.chip().node(), TechnologyNode::N12);

        let a2 = industry_asic2();
        assert_eq!(a2.chip().area(), Area::from_mm2(600.0));
        assert_eq!(a2.chip().tdp(), Power::from_watts(192.0));
        assert_eq!(a2.chip().node(), TechnologyNode::N7);

        let f1 = industry_fpga1();
        assert_eq!(f1.chip().area(), Area::from_mm2(380.0));
        assert_eq!(f1.chip().tdp(), Power::from_watts(160.0));
        assert_eq!(f1.chip().node(), TechnologyNode::N14);

        let f2 = industry_fpga2();
        assert_eq!(f2.chip().area(), Area::from_mm2(550.0));
        assert_eq!(f2.chip().tdp(), Power::from_watts(220.0));
        assert_eq!(f2.chip().node(), TechnologyNode::N10);
    }

    #[test]
    fn operational_carbon_dominates_for_industry_fpgas() {
        // Fig. 10: operation is the primary contributor for both FPGAs.
        let estimator = Estimator::default();
        let scenario = IndustryScenario::paper_defaults();
        for fpga in [industry_fpga1(), industry_fpga2()] {
            let cfp = scenario.evaluate_fpga(&estimator, &fpga).unwrap();
            assert!(cfp.operation > cfp.embodied(), "{}", fpga.chip().name());
            assert!(cfp.operation > cfp.app_dev);
        }
    }

    #[test]
    fn app_dev_is_minimal_even_after_three_reconfigurations() {
        // Fig. 10: application development does not substantially contribute.
        let estimator = Estimator::default();
        let scenario = IndustryScenario::paper_defaults();
        for fpga in [industry_fpga1(), industry_fpga2()] {
            let cfp = scenario.evaluate_fpga(&estimator, &fpga).unwrap();
            let share = cfp.app_dev.as_kg() / cfp.total().as_kg();
            assert!(
                share < 0.05,
                "{}: app-dev share {share}",
                fpga.chip().name()
            );
        }
    }

    #[test]
    fn design_is_a_double_digit_share_of_embodied() {
        // The paper reports design CFP ≈ 15% of embodied CFP for the
        // industry FPGAs; check it is a visible but not dominant share.
        let estimator = Estimator::default();
        let scenario = IndustryScenario::paper_defaults();
        for fpga in [industry_fpga1(), industry_fpga2()] {
            let cfp = scenario.evaluate_fpga(&estimator, &fpga).unwrap();
            let share = cfp.design_share_of_embodied().unwrap();
            assert!(
                (0.02..0.6).contains(&share),
                "{}: design share of embodied = {share}",
                fpga.chip().name()
            );
        }
    }

    #[test]
    fn operational_carbon_dominates_for_industry_asics() {
        // Fig. 11: operation dominates, then manufacturing, then design.
        let estimator = Estimator::default();
        let scenario = IndustryScenario::paper_defaults();
        for asic in [industry_asic1(), industry_asic2()] {
            let cfp = scenario.evaluate_asic(&estimator, &asic).unwrap();
            assert!(cfp.operation > cfp.manufacturing, "{}", asic.chip().name());
            assert!(cfp.manufacturing > cfp.design, "{}", asic.chip().name());
            assert_eq!(cfp.app_dev.as_kg(), 0.0);
        }
    }

    #[test]
    fn bigger_hotter_devices_have_bigger_footprints() {
        let estimator = Estimator::default();
        let scenario = IndustryScenario::paper_defaults();
        let f1 = scenario
            .evaluate_fpga(&estimator, &industry_fpga1())
            .unwrap();
        let f2 = scenario
            .evaluate_fpga(&estimator, &industry_fpga2())
            .unwrap();
        assert!(f2.total() > f1.total());
        let a1 = scenario
            .evaluate_asic(&estimator, &industry_asic1())
            .unwrap();
        let a2 = scenario
            .evaluate_asic(&estimator, &industry_asic2())
            .unwrap();
        assert!(a2.total() > a1.total());
    }

    #[test]
    fn eol_is_a_small_contributor() {
        let estimator = Estimator::default();
        let scenario = IndustryScenario::paper_defaults();
        let cfp = scenario
            .evaluate_fpga(&estimator, &industry_fpga1())
            .unwrap();
        assert!(cfp.eol.abs().as_kg() < 0.05 * cfp.embodied().as_kg());
    }
}

//! Ablation: GreenFPGA's sustainability-report-based design-CFP model
//! (Eq. 4) versus the prior-art gate-count-based model of ECO-CHIP.
//!
//! The paper's claim: the gate-based model "grossly underestimated" the
//! design CFP; with the report-based model, design is roughly 15% of the
//! embodied CFP for the industry FPGAs.

use gf_bench::paper_estimator;
use greenfpga::lifecycle::GateBasedDesignModel;
use greenfpga::{
    industry_asic1, industry_asic2, industry_fpga1, industry_fpga2, render_table, ChipSpec,
    DesignStaffing, IndustryScenario,
};

fn main() -> Result<(), greenfpga::GreenFpgaError> {
    let estimator = paper_estimator();
    let scenario = IndustryScenario::paper_defaults();
    let staffing: DesignStaffing = scenario.staffing;
    let baseline = GateBasedDesignModel::ecochip_defaults();

    let chips: Vec<ChipSpec> = vec![
        industry_fpga1().chip().clone(),
        industry_fpga2().chip().clone(),
        industry_asic1().chip().clone(),
        industry_asic2().chip().clone(),
    ];

    let mut rows = Vec::new();
    for chip in &chips {
        let report_based = estimator.design_carbon(chip, &staffing)?;
        let gate_based = baseline.design_carbon(chip.gates());
        rows.push(vec![
            chip.name().to_string(),
            format!("{:.2e}", chip.gates().get() as f64),
            format!("{:.1}", gate_based.as_tons()),
            format!("{:.1}", report_based.as_tons()),
            format!(
                "{:.1}x",
                report_based.as_kg() / gate_based.as_kg().max(f64::MIN_POSITIVE)
            ),
        ]);
    }

    println!("Ablation — design-CFP model (values in tCO2e):");
    println!(
        "{}",
        render_table(
            &[
                "Device",
                "Equivalent gates",
                "Gate-based (prior art)",
                "Report-based (GreenFPGA)",
                "Underestimation"
            ],
            &rows
        )
    );

    // Share of embodied carbon attributable to design under each model.
    let mut share_rows = Vec::new();
    for fpga in [industry_fpga1(), industry_fpga2()] {
        let cfp = scenario.evaluate_fpga(&estimator, &fpga)?;
        let embodied_hw = cfp.embodied() - cfp.design;
        let gate_based = baseline.design_carbon(fpga.chip().gates());
        let report_share = cfp.design.as_kg() / cfp.embodied().as_kg();
        let gate_share = gate_based.as_kg() / (embodied_hw + gate_based).as_kg();
        share_rows.push(vec![
            fpga.chip().name().to_string(),
            format!("{:.1}%", gate_share * 100.0),
            format!("{:.1}%", report_share * 100.0),
        ]);
    }
    println!("Design share of embodied CFP (paper reports ~15% with the report-based model):");
    println!(
        "{}",
        render_table(
            &["Device", "Gate-based share", "Report-based share"],
            &share_rows
        )
    );
    Ok(())
}

//! Headline bench: the analysis-engine kernels versus their naive paths.
//!
//! Measures the workloads the batch engine and the adaptive analysis
//! layers were built for:
//!
//! * a 64×64 DNN ratio heatmap (Fig. 8 class) — naive per-cell
//!   `compare_uniform` versus `Estimator::ratio_grid` (compiled scenario +
//!   SoA kernel + thread pool),
//! * a 10 000-sample Monte-Carlo study — the pre-PR structure (one
//!   parameter clone per knob per trial, full model rebuild per trial,
//!   serial) versus `MonteCarlo::run`,
//! * the three crossover searches — the pre-PR scan/bisection algorithms
//!   on a compiled scenario versus the closed-form solver
//!   (`crossover_*_analytic`),
//! * the 64×64 winner map — dense `ratio_grid` versus the adaptive
//!   frontier refiner (`Estimator::frontier`), and
//! * the SoA batch kernel — `CompiledScenario::evaluate_into` into a
//!   reused buffer versus collecting per-point `PlatformComparison`s, and
//! * a streamed 1024×1024 (million-point) ratio grid —
//!   `CompiledScenario::grid_stream` drained block by block, the tile
//!   kernel end to end with only one row-block resident (`grid_1m_ns`), and
//! * a full-year time-series carbon replay — 8760 hourly intensity steps
//!   over a cataloged fleet scenario (`replay_year_ns`), the serial loop
//!   behind `POST /v1/replay`, and
//! * the inverse-query solver — an affine two-knob argmin through the
//!   exact vertex tier (`optimize_analytic_ns`) and a non-affine
//!   constrained solve through the coordinate-search tier
//!   (`optimize_search_ns`), the paths behind `POST /v1/optimize`.
//!
//! Emits `BENCH_eval.json` (override the path with `GF_BENCH_OUT`) so CI
//! can track the performance trajectory (`bench_gate` compares a fresh run
//! against the committed baseline), and asserts the acceptance bars
//! (≥10x heatmap, ≥5x Monte-Carlo, ≥10x crossover, frontier from ≤20% of
//! the dense evaluations) unless `GF_BENCH_NO_ASSERT` is set.

use std::time::Duration;

use gf_bench::harness::{bench_ratio, bench_with, metrics_json};
use gf_support::SplitMix64;
use greenfpga::{
    CompiledScenario, Domain, Estimator, EstimatorParams, Knob, MonteCarlo, Objective,
    OperatingPoint, OptPlatform, ResultBuffer, SearchKnob, SolverKind, SweepAxis,
};

const GRID_SIZE: usize = 64;
/// Side length of the streamed million-point grid (1024² ≈ 1.05 M cells).
const GRID_1M_SIDE: usize = 1024;
const MC_SAMPLES: usize = 10_000;
const MC_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

fn grid_axes() -> (Vec<f64>, Vec<f64>) {
    let apps: Vec<f64> = (1..=GRID_SIZE).map(|n| n as f64).collect();
    let lifetimes: Vec<f64> = (1..=GRID_SIZE).map(|i| 0.05 * i as f64).collect();
    (apps, lifetimes)
}

/// The pre-batch-engine heatmap: every cell rebuilds the calibration and the
/// workload vector through `compare_uniform`, serially.
fn naive_grid(estimator: &Estimator) -> Vec<f64> {
    let (apps, lifetimes) = grid_axes();
    let mut ratios = Vec::with_capacity(apps.len() * lifetimes.len());
    for &lifetime in &lifetimes {
        for &napps in &apps {
            let comparison = estimator
                .compare_uniform(Domain::Dnn, napps as u64, lifetime, 1_000_000)
                .expect("naive cell");
            ratios.push(comparison.fpga_to_asic_ratio());
        }
    }
    ratios
}

fn batch_grid(estimator: &Estimator) -> Vec<f64> {
    let (apps, lifetimes) = grid_axes();
    let grid = estimator
        .ratio_grid(
            Domain::Dnn,
            SweepAxis::Applications,
            &apps,
            SweepAxis::LifetimeYears,
            &lifetimes,
            OperatingPoint::paper_default(),
        )
        .expect("batch grid");
    grid.ratios.into_iter().flatten().collect()
}

/// The pre-batch-engine Monte-Carlo: a single serial RNG stream, one
/// parameter-set clone per knob per trial (`Knob::apply`), and a full naive
/// model evaluation per trial.
fn naive_monte_carlo(base: &EstimatorParams, samples: usize) -> Vec<f64> {
    let point = OperatingPoint::paper_default();
    let mut rng = SplitMix64::new(MC_SEED);
    let mut ratios = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut params = base.clone();
        for knob in Knob::ALL {
            let range = knob.range();
            params = knob.apply(&params, rng.gen_range_f64(range.low, range.high));
        }
        let comparison = Estimator::new(params)
            .compare_uniform(
                Domain::Dnn,
                point.applications,
                point.lifetime_years,
                point.volume,
            )
            .expect("naive trial");
        ratios.push(comparison.fpga_to_asic_ratio());
    }
    ratios.sort_by(f64::total_cmp);
    ratios
}

/// The pre-analytic crossover searches: a linear application scan plus two
/// 64-iteration bisections, all running real model evaluations on the
/// compiled scenario (the PR-1 state of the art).
fn scan_crossovers(compiled: &CompiledScenario) -> (Option<u64>, f64, f64) {
    let point = OperatingPoint::paper_default();
    let diff = |p: OperatingPoint| {
        let c = compiled.evaluate(p).expect("scan point");
        c.fpga.total().as_kg() - c.asic.total().as_kg()
    };

    let apps = (1..=20u64).find(|&n| {
        diff(OperatingPoint {
            applications: n,
            ..point
        }) < 0.0
    });

    let lifetime_diff = |years: f64| {
        diff(OperatingPoint {
            lifetime_years: years,
            ..point
        })
    };
    let (mut lo, mut hi) = (0.05f64, 5.0f64);
    let mut lo_diff = lifetime_diff(lo);
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        let mid_diff = lifetime_diff(mid);
        if mid_diff.signum() == lo_diff.signum() {
            lo = mid;
            lo_diff = mid_diff;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-6 {
            break;
        }
    }
    let lifetime = 0.5 * (lo + hi);

    let volume_diff = |v: u64| diff(OperatingPoint { volume: v, ..point });
    let (mut lo, mut hi) = (1_000u64, 50_000_000u64);
    let mut lo_diff = volume_diff(lo);
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        let mid_diff = volume_diff(mid);
        if mid_diff.signum() == lo_diff.signum() {
            lo = mid;
            lo_diff = mid_diff;
        } else {
            hi = mid;
        }
    }
    (apps, lifetime, hi as f64)
}

/// The closed-form counterpart: three O(1) solves off the compiled
/// coefficients.
fn analytic_crossovers(compiled: &CompiledScenario) -> (f64, f64, f64) {
    let point = OperatingPoint::paper_default();
    let apps = compiled
        .crossover_in_applications_analytic(point.lifetime_years, point.volume)
        .map_or(f64::NAN, |c| c.at);
    let lifetime = compiled
        .crossover_in_lifetime_analytic(point.applications, point.volume)
        .map_or(f64::NAN, |c| c.at);
    let volume = compiled
        .crossover_in_volume_analytic(point.applications, point.lifetime_years)
        .map_or(f64::NAN, |c| c.at);
    (apps, lifetime, volume)
}

fn frontier_axes() -> (Vec<f64>, Vec<f64>) {
    grid_axes()
}

fn main() {
    let estimator = Estimator::new(EstimatorParams::paper_defaults());
    let base = EstimatorParams::paper_defaults();
    let threads = greenfpga::exec::default_threads();
    println!(
        "batch-engine bench: {GRID_SIZE}x{GRID_SIZE} heatmap, {MC_SAMPLES}-sample Monte-Carlo, {threads} threads"
    );

    // Sanity first: the two paths must agree before their speed means
    // anything.
    {
        let naive = naive_grid(&estimator);
        let batch = batch_grid(&estimator);
        assert_eq!(naive.len(), batch.len());
        for (a, b) in naive.iter().zip(&batch) {
            assert!(
                (a - b).abs() <= a.abs() * 1e-12,
                "grid mismatch: naive {a} vs batch {b}"
            );
        }
    }

    let naive_heatmap = bench_with(
        &format!("heatmap_{GRID_SIZE}x{GRID_SIZE}_naive"),
        Duration::from_millis(300),
        5,
        || naive_grid(&estimator),
    );
    println!("{naive_heatmap}");
    let batch_heatmap = bench_with(
        &format!("heatmap_{GRID_SIZE}x{GRID_SIZE}_batch"),
        Duration::from_millis(300),
        5,
        || batch_grid(&estimator),
    );
    println!("{batch_heatmap}");
    let heatmap_speedup = naive_heatmap.median_ns / batch_heatmap.median_ns;
    println!("heatmap speedup: {heatmap_speedup:.1}x");

    let naive_mc = bench_with(
        &format!("monte_carlo_{MC_SAMPLES}_naive"),
        Duration::from_millis(300),
        3,
        || naive_monte_carlo(&base, MC_SAMPLES),
    );
    println!("{naive_mc}");
    let batch_mc = bench_with(
        &format!("monte_carlo_{MC_SAMPLES}_batch"),
        Duration::from_millis(300),
        3,
        || {
            MonteCarlo::new(MC_SAMPLES)
                .run(&base, Domain::Dnn, OperatingPoint::paper_default())
                .expect("batch monte carlo")
        },
    );
    println!("{batch_mc}");
    let mc_speedup = naive_mc.median_ns / batch_mc.median_ns;
    println!("monte-carlo speedup: {mc_speedup:.1}x");

    // --- Closed-form crossovers vs the scan/bisection searches. ---
    let compiled = estimator.compile(Domain::Dnn).expect("compile dnn");
    {
        // Sanity: the Estimator wrappers (analytic + boundary verification)
        // must reproduce the scan/bisection answers before the kernel
        // timing means anything.
        let (scan_apps, scan_lifetime, scan_volume) = scan_crossovers(&compiled);
        let point = OperatingPoint::paper_default();
        let apps = estimator
            .crossover_in_applications(Domain::Dnn, 20, point.lifetime_years, point.volume)
            .expect("apps crossover");
        assert_eq!(apps, scan_apps, "applications crossover mismatch");
        let lifetime = estimator
            .crossover_in_lifetime(Domain::Dnn, point.applications, point.volume, 0.05, 5.0)
            .expect("lifetime crossover")
            .expect("lifetime crossover exists");
        assert!(
            (lifetime.at - scan_lifetime).abs() <= 1e-5,
            "lifetime crossover mismatch: analytic {} vs bisection {scan_lifetime}",
            lifetime.at
        );
        let volume = estimator
            .crossover_in_volume(
                Domain::Dnn,
                point.applications,
                point.lifetime_years,
                1_000,
                50_000_000,
            )
            .expect("volume crossover")
            .expect("volume crossover exists");
        assert_eq!(volume.at, scan_volume, "volume crossover mismatch");
    }
    let scan_crossover = bench_with(
        "crossover_3axis_scan_bisect",
        Duration::from_millis(100),
        5,
        || scan_crossovers(&compiled),
    );
    println!("{scan_crossover}");
    let analytic_crossover = bench_with(
        "crossover_3axis_analytic",
        Duration::from_millis(100),
        5,
        || analytic_crossovers(&compiled),
    );
    println!("{analytic_crossover}");
    let crossover_speedup = scan_crossover.median_ns / analytic_crossover.median_ns;
    println!("crossover speedup: {crossover_speedup:.1}x");

    // --- Adaptive frontier vs the dense winner map. ---
    let (apps, lifetimes) = frontier_axes();
    let frontier_result = estimator
        .frontier(
            Domain::Dnn,
            SweepAxis::Applications,
            &apps,
            SweepAxis::LifetimeYears,
            &lifetimes,
            OperatingPoint::paper_default(),
        )
        .expect("frontier");
    {
        // Sanity: bit-consistent winner mask against the dense grid.
        let dense = estimator
            .ratio_grid(
                Domain::Dnn,
                SweepAxis::Applications,
                &apps,
                SweepAxis::LifetimeYears,
                &lifetimes,
                OperatingPoint::paper_default(),
            )
            .expect("dense grid");
        for (row, dense_row) in dense.ratios.iter().enumerate() {
            for (col, &ratio) in dense_row.iter().enumerate() {
                assert_eq!(
                    frontier_result.fpga_wins(row, col),
                    ratio < 1.0,
                    "winner mask mismatch at ({row},{col})"
                );
            }
        }
    }
    let frontier_evals = frontier_result.evaluations();
    let frontier_fraction = frontier_result.evaluated_fraction();
    println!(
        "frontier evaluations: {frontier_evals} of {} cells ({:.1}%)",
        frontier_result.len(),
        frontier_fraction * 100.0
    );
    let adaptive_frontier = bench_with(
        &format!("frontier_{GRID_SIZE}x{GRID_SIZE}_adaptive"),
        Duration::from_millis(300),
        5,
        || {
            estimator
                .frontier(
                    Domain::Dnn,
                    SweepAxis::Applications,
                    &apps,
                    SweepAxis::LifetimeYears,
                    &lifetimes,
                    OperatingPoint::paper_default(),
                )
                .expect("frontier")
        },
    );
    println!("{adaptive_frontier}");
    let frontier_speedup = batch_heatmap.median_ns / adaptive_frontier.median_ns;
    println!("frontier speedup over dense batch grid: {frontier_speedup:.1}x");

    // --- SoA kernel vs collecting per-point comparisons. ---
    let soa_points: Vec<OperatingPoint> = {
        let (apps, lifetimes) = grid_axes();
        lifetimes
            .iter()
            .flat_map(|&lifetime_years| {
                apps.iter().map(move |&n| OperatingPoint {
                    applications: n as u64,
                    lifetime_years,
                    volume: 1_000_000,
                })
            })
            .collect()
    };
    // Interleaved rounds, best-time quotient: noise can only slow a
    // round down, so min-over-rounds on each side is the cleanest
    // estimate of kernel capability — what the absolute floor asks (see
    // [`gf_bench::harness::bench_ratio`]).
    let mut soa_buffer = ResultBuffer::new();
    let (aos_collect, soa_kernel, soa_speedup) = bench_ratio(
        &format!("evaluate_aos_collect_{}", soa_points.len()),
        &format!("evaluate_into_soa_{}", soa_points.len()),
        Duration::from_millis(120),
        7,
        || -> Vec<greenfpga::PlatformComparison> {
            soa_points
                .iter()
                .map(|&p| compiled.evaluate(p).expect("aos point"))
                .collect()
        },
        || {
            compiled
                .evaluate_into(&soa_points, &mut soa_buffer)
                .expect("soa batch");
            soa_buffer.ratio(0)
        },
    );
    println!("{aos_collect}");
    println!("{soa_kernel}");
    println!(
        "soa kernel speedup over AoS collect: {soa_speedup:.1}x (best-of-7 interleaved rounds)"
    );

    // --- Streamed million-point grid: the tile kernel end to end. ---
    let grid_volumes: Vec<f64> = greenfpga::log_spaced_volumes(1_000, 50_000_000, GRID_1M_SIDE)
        .into_iter()
        .map(|v| v as f64)
        .collect();
    let grid_lifetimes: Vec<f64> = (0..GRID_1M_SIDE)
        .map(|i| 0.25 + (3.0 - 0.25) * i as f64 / (GRID_1M_SIDE - 1) as f64)
        .collect();
    let grid_base = OperatingPoint {
        applications: 5,
        lifetime_years: 1.0,
        volume: 1_000_000,
    };
    let grid_1m = bench_with(
        &format!("grid_{GRID_1M_SIDE}x{GRID_1M_SIDE}_stream"),
        Duration::from_millis(300),
        3,
        || {
            let mut stream = compiled
                .grid_stream(
                    SweepAxis::VolumeUnits,
                    grid_volumes.clone(),
                    SweepAxis::LifetimeYears,
                    grid_lifetimes.clone(),
                    grid_base,
                    threads,
                )
                .expect("grid stream");
            while let Some(block) = stream.next_block() {
                block.expect("grid block");
            }
            assert!(stream.is_finished());
            let fraction = stream.fpga_winning_fraction();
            assert!((0.0..=1.0).contains(&fraction), "bad fraction {fraction}");
            fraction
        },
    );
    println!("{grid_1m}");
    println!(
        "streamed {GRID_1M_SIDE}x{GRID_1M_SIDE} grid: {:.1} M cells/s",
        (GRID_1M_SIDE * GRID_1M_SIDE) as f64 / grid_1m.median_ns * 1e3
    );

    // --- Full-year carbon replay: 8760 hourly steps over a fleet. ---
    let (_, fleet) = greenfpga::catalog_entry("crypto_fleet_1m_5y").expect("cataloged fleet");
    let fleet_compiled = Estimator::new(fleet.scenario.params())
        .compile(fleet.scenario.domain)
        .expect("compile fleet scenario");
    let duck = greenfpga::CarbonIntensitySeries::region("solar_duck").expect("region preset");
    {
        // Sanity: the year replays every sample onto finite totals before
        // its speed means anything.
        let outcome = duck
            .replay(&fleet_compiled, fleet.point, true)
            .expect("replay year");
        assert_eq!(outcome.steps, greenfpga::HOURS_PER_YEAR as u64);
        assert!(outcome.fpga_operational.as_kg().is_finite());
        assert!(outcome.asic_operational.as_kg().is_finite());
    }
    let replay_year = bench_with("replay_year_8760", Duration::from_millis(120), 5, || {
        duck.replay(&fleet_compiled, fleet.point, true)
            .expect("replay year")
    });
    println!("{replay_year}");
    println!(
        "replayed {} hourly steps: {:.1} M steps/s",
        greenfpga::HOURS_PER_YEAR,
        greenfpga::HOURS_PER_YEAR as f64 / replay_year.median_ns * 1e3
    );

    // --- Inverse queries: both optimizer tiers over the same fleet. ---
    let opt_knobs = [
        SearchKnob {
            axis: SweepAxis::Applications,
            min: 1.0,
            max: 12.0,
            integer: true,
        },
        SearchKnob {
            axis: SweepAxis::LifetimeYears,
            min: 0.5,
            max: 4.0,
            integer: false,
        },
    ];
    {
        // Sanity: each objective lands on its intended solver tier.
        let analytic = fleet_compiled
            .optimize(
                fleet.point,
                &Objective::MinTotal(OptPlatform::Fpga),
                &opt_knobs,
                &[],
                1e-6,
                10_000,
                threads,
            )
            .expect("analytic optimize");
        assert_eq!(analytic.solver, SolverKind::Analytic);
        let search = fleet_compiled
            .optimize(
                fleet.point,
                &Objective::MinRatio,
                &opt_knobs,
                &[],
                1e-6,
                10_000,
                threads,
            )
            .expect("search optimize");
        assert_eq!(search.solver, SolverKind::Search);
        assert!(search.objective.is_finite());
    }
    let optimize_analytic = bench_with("optimize_analytic", Duration::from_millis(120), 5, || {
        fleet_compiled
            .optimize(
                fleet.point,
                &Objective::MinTotal(OptPlatform::Fpga),
                &opt_knobs,
                &[],
                1e-6,
                10_000,
                threads,
            )
            .expect("analytic optimize")
    });
    println!("{optimize_analytic}");
    let optimize_search = bench_with("optimize_search", Duration::from_millis(120), 5, || {
        fleet_compiled
            .optimize(
                fleet.point,
                &Objective::MinRatio,
                &opt_knobs,
                &[],
                1e-6,
                10_000,
                threads,
            )
            .expect("search optimize")
    });
    println!("{optimize_search}");

    let json = metrics_json(&[
        ("grid_size", GRID_SIZE as f64),
        ("mc_samples", MC_SAMPLES as f64),
        ("threads", threads as f64),
        ("heatmap_naive_ns", naive_heatmap.median_ns),
        ("heatmap_batch_ns", batch_heatmap.median_ns),
        ("heatmap_speedup", heatmap_speedup),
        ("monte_carlo_naive_ns", naive_mc.median_ns),
        ("monte_carlo_batch_ns", batch_mc.median_ns),
        ("monte_carlo_speedup", mc_speedup),
        ("crossover_scan_ns", scan_crossover.median_ns),
        ("crossover_analytic_ns", analytic_crossover.median_ns),
        ("crossover_speedup", crossover_speedup),
        ("frontier_adaptive_ns", adaptive_frontier.median_ns),
        ("frontier_speedup", frontier_speedup),
        ("frontier_evals", frontier_evals as f64),
        ("frontier_eval_fraction", frontier_fraction),
        ("evaluate_aos_ns", aos_collect.median_ns),
        ("evaluate_soa_ns", soa_kernel.median_ns),
        ("soa_speedup", soa_speedup),
        ("grid_1m_ns", grid_1m.median_ns),
        ("replay_year_ns", replay_year.median_ns),
        ("optimize_analytic_ns", optimize_analytic.median_ns),
        ("optimize_search_ns", optimize_search.median_ns),
    ]);
    let out = std::env::var("GF_BENCH_OUT").unwrap_or_else(|_| "BENCH_eval.json".to_string());
    std::fs::write(&out, &json).expect("write bench json");
    println!("wrote {out}");

    if std::env::var_os("GF_BENCH_NO_ASSERT").is_none() {
        assert!(
            heatmap_speedup >= 10.0,
            "heatmap speedup {heatmap_speedup:.1}x below the 10x acceptance bar"
        );
        assert!(
            mc_speedup >= 5.0,
            "monte-carlo speedup {mc_speedup:.1}x below the 5x acceptance bar"
        );
        assert!(
            crossover_speedup >= 10.0,
            "crossover speedup {crossover_speedup:.1}x below the 10x acceptance bar"
        );
        assert!(
            frontier_fraction <= 0.20,
            "frontier evaluated {:.1}% of the dense grid, above the 20% acceptance bar",
            frontier_fraction * 100.0
        );
        // With the simd tile kernel the shared vector-win floor (see
        // [`gf_bench::SOA_SPEEDUP_FLOOR`], also enforced by `bench_gate`)
        // is asserted directly; the branchless scalar fallback clears
        // ~1.5x, so portable runs assert the old parity bar and leave the
        // hard floor to the gate over the simd-built CI artifact.
        let soa_floor = if cfg!(feature = "simd") {
            gf_bench::SOA_SPEEDUP_FLOOR
        } else {
            0.95
        };
        assert!(
            soa_speedup >= soa_floor,
            "SoA kernel speedup {soa_speedup:.2}x below the {soa_floor} floor — the \
             tile kernel must not lose its vector margin over collecting \
             per-point comparisons"
        );
        // The wall-clock frontier win is machine-shaped (dense grids
        // parallelize better than refinement waves), so the hard bar is the
        // evaluation fraction above; the timing is reported, not asserted.
    }
}

//! The first-class scenario layer: named catalog, time-series carbon
//! replay, scored verdicts — plus the paper's long-horizon evaluation
//! beyond the chip lifetime (Fig. 9).
//!
//! Three pieces make scenarios addressable instead of inline request
//! leaves:
//!
//! * [`catalog`] — a closed registry of named, documented stress
//!   scenarios (per-domain baselines, fleet deployments, adversarial
//!   worst-case packs) that the serving tier resolves by id.
//! * [`CarbonIntensitySeries`] — a time-varying grid carbon intensity
//!   (region presets or user-supplied points) replayed step by step on
//!   the operational-carbon path, where every other query uses one
//!   scalar intensity.
//! * [`Verdict`] — a weighted penalty score over a scenario's ratio
//!   trajectory, so outcomes rank on one number.
//!
//! The paper's experiment E ([`LongHorizonScenario`]) extends the
//! evaluation window past the FPGA's physical lifetime (15 years): when
//! the window exceeds the chip lifetime a *new* FPGA fleet must be
//! manufactured, so the cumulative FPGA footprint jumps at the 15- and
//! 30-year marks. The ASIC curve shows no such jump because a new ASIC
//! is built per application anyway.

use std::sync::OnceLock;

use serde::{Deserialize, Serialize};

use gf_units::{Carbon, ChipCount, GateCount, TimeSpan};

use crate::{
    Application, CompiledScenario, Domain, Estimator, GreenFpgaError, Knob, OperatingPoint,
    PlatformComparison, ScenarioSpec,
};

/// One yearly sample of the long-horizon scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LongHorizonPoint {
    /// Years since the start of the evaluation (1-based: the sample covers
    /// everything up to and including this year).
    pub year: u64,
    /// Cumulative FPGA-platform footprint.
    pub fpga_cumulative: Carbon,
    /// Cumulative ASIC-platform footprint.
    pub asic_cumulative: Carbon,
    /// Number of FPGA fleets manufactured so far (1 + replacements).
    pub fpga_fleets_built: u64,
}

impl LongHorizonPoint {
    /// FPGA cumulative footprint divided by the ASIC's.
    pub fn ratio(&self) -> f64 {
        self.fpga_cumulative
            .ratio_to(self.asic_cumulative)
            .unwrap_or(f64::INFINITY)
    }
}

/// A multi-decade deployment: one new application per application lifetime,
/// with the FPGA fleet replaced every chip lifetime.
///
/// # Examples
///
/// ```
/// use greenfpga::{Domain, Estimator, LongHorizonScenario};
///
/// let scenario = LongHorizonScenario::paper_fig9(Domain::Dnn);
/// let series = scenario.run(&Estimator::default())?;
/// assert_eq!(series.len(), 40);
/// // Cumulative footprints never decrease.
/// assert!(series.windows(2).all(|w| w[1].fpga_cumulative >= w[0].fpga_cumulative));
/// # Ok::<(), greenfpga::GreenFpgaError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LongHorizonScenario {
    /// Application domain evaluated.
    pub domain: Domain,
    /// Total evaluation window in whole years.
    pub evaluation_years: u64,
    /// Lifetime of each application in whole years (the paper uses 1 year).
    pub application_lifetime_years: u64,
    /// Deployment volume of every application.
    pub volume: u64,
}

impl LongHorizonScenario {
    /// The paper's Fig. 9 setup: a 40-year window, 1-year applications, one
    /// million devices, FPGA chip lifetime taken from the estimator
    /// parameters (15 years by default).
    pub fn paper_fig9(domain: Domain) -> Self {
        LongHorizonScenario {
            domain,
            evaluation_years: 40,
            application_lifetime_years: 1,
            volume: 1_000_000,
        }
    }

    /// Runs the scenario, producing one cumulative sample per year.
    ///
    /// # Errors
    ///
    /// Returns [`GreenFpgaError::InvalidRange`] when the evaluation window
    /// or application lifetime is zero, and propagates model errors.
    pub fn run(&self, estimator: &Estimator) -> Result<Vec<LongHorizonPoint>, GreenFpgaError> {
        if self.evaluation_years == 0 {
            return Err(GreenFpgaError::InvalidRange {
                what: "evaluation years",
            });
        }
        if self.application_lifetime_years == 0 {
            return Err(GreenFpgaError::InvalidRange {
                what: "application lifetime",
            });
        }
        let calibration = self.domain.calibration();
        let fpga = calibration.fpga_spec()?;
        let asic = calibration.asic_spec()?;
        let chip_lifetime_years = estimator
            .params()
            .fpga_chip_lifetime()
            .as_years()
            .max(1.0)
            .round() as u64;

        let one_year_app = |index: u64| -> Result<Application, GreenFpgaError> {
            Application::new(
                format!("{}-year-{index}", self.domain),
                calibration.reference_asic_gates(),
                TimeSpan::from_years(1.0),
                ChipCount::new(self.volume),
            )
        };

        let fleet_chips = self.volume
            * fpga.fpgas_for_application(GateCount::new(calibration.reference_asic_gates().get()));
        let fpga_fleet_embodied = estimator
            .fpga_embodied(&fpga, &calibration.fpga_staffing, fleet_chips)?
            .total();

        let mut points = Vec::with_capacity(self.evaluation_years as usize);
        let mut fpga_cumulative = Carbon::ZERO;
        let mut asic_cumulative = Carbon::ZERO;
        let mut fleets_built = 0u64;

        for year in 1..=self.evaluation_years {
            // A new FPGA fleet is needed in year 1 and whenever the previous
            // fleet has reached the end of its physical lifetime.
            if (year - 1) % chip_lifetime_years == 0 {
                fpga_cumulative += fpga_fleet_embodied;
                fleets_built += 1;
            }

            // One year of deployment. A new application starts every
            // `application_lifetime_years`; the ASIC platform then pays a
            // fresh embodied cost, the FPGA platform only a reconfiguration.
            let app = one_year_app(year)?;
            if (year - 1) % self.application_lifetime_years == 0 {
                asic_cumulative += estimator
                    .asic_embodied_for(&asic, &calibration.asic_staffing, &app)?
                    .total();
                fpga_cumulative += estimator.fpga_deployment_for(&fpga, &app)?.app_dev;
            }
            fpga_cumulative += estimator.fpga_deployment_for(&fpga, &app)?.operation;
            asic_cumulative += estimator.asic_deployment_for(&asic, &app)?.total();

            points.push(LongHorizonPoint {
                year,
                fpga_cumulative,
                asic_cumulative,
                fpga_fleets_built: fleets_built,
            });
        }
        Ok(points)
    }
}

// ---------------------------------------------------------------------------
// Named scenario catalog
// ---------------------------------------------------------------------------

/// One named, documented entry of the scenario [`catalog`].
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogEntry {
    /// Stable wire id (`snake_case`); catalog requests resolve by it.
    pub id: &'static str,
    /// One-line human title.
    pub title: &'static str,
    /// What the scenario stresses and why it is in the catalog.
    pub description: &'static str,
    /// The concrete scenario the id resolves to.
    pub scenario: ScenarioSpec,
    /// The operating point the scenario is evaluated at.
    pub point: OperatingPoint,
}

#[allow(clippy::too_many_arguments)]
fn entry(
    id: &'static str,
    title: &'static str,
    description: &'static str,
    domain: Domain,
    knobs: Vec<(Knob, f64)>,
    applications: u64,
    lifetime_years: f64,
    volume: u64,
) -> CatalogEntry {
    CatalogEntry {
        id,
        title,
        description,
        scenario: ScenarioSpec { domain, knobs },
        point: OperatingPoint {
            applications,
            lifetime_years,
            volume,
        },
    }
}

/// The closed registry of named scenarios, in stable order: per-domain
/// paper baselines, fleet deployments over a refresh horizon, and
/// adversarial worst-case packs for each platform.
///
/// Every id is servable via `POST /v1/scenario` and `greenfpga scenarios
/// run <id>`; the engine keys its compiled-scenario cache by the resolved
/// spec, so repeated catalog traffic is compile-free.
pub fn catalog() -> &'static [CatalogEntry] {
    static CATALOG: OnceLock<Vec<CatalogEntry>> = OnceLock::new();
    CATALOG.get_or_init(|| {
        vec![
            // Per-domain paper baselines.
            entry(
                "dnn_baseline",
                "DNN paper baseline",
                "Table 1 defaults for the DNN domain at the paper's operating point.",
                Domain::Dnn,
                vec![],
                5,
                2.0,
                1_000_000,
            ),
            entry(
                "imgproc_baseline",
                "Image-processing paper baseline",
                "Table 1 defaults for the image-processing domain at the paper's operating point.",
                Domain::ImageProcessing,
                vec![],
                5,
                2.0,
                1_000_000,
            ),
            entry(
                "crypto_baseline",
                "Crypto paper baseline",
                "Table 1 defaults for the crypto domain at the paper's operating point.",
                Domain::Crypto,
                vec![],
                5,
                2.0,
                1_000_000,
            ),
            // Fleet scenarios: N devices over a refresh horizon.
            entry(
                "dnn_fleet_10k_3y",
                "DNN edge fleet, 10k devices, 3-year refresh",
                "A moderate edge-inference fleet refreshed every three years at elevated duty.",
                Domain::Dnn,
                vec![(Knob::DutyCycle, 0.35)],
                3,
                3.0,
                10_000,
            ),
            entry(
                "imgproc_fleet_100k_2y",
                "Image-processing fleet, 100k devices, 2-year refresh",
                "A camera-pipeline fleet with four successive applications on a two-year cycle.",
                Domain::ImageProcessing,
                vec![(Knob::DutyCycle, 0.25)],
                4,
                2.0,
                100_000,
            ),
            entry(
                "crypto_fleet_1m_5y",
                "Crypto fleet, 1M devices, 5-year refresh",
                "A long-lived million-device crypto fleet amortizing embodied carbon slowly.",
                Domain::Crypto,
                vec![(Knob::DutyCycle, 0.3)],
                5,
                5.0,
                1_000_000,
            ),
            entry(
                "dnn_hyperscale_10m_4y",
                "DNN hyperscale, 10M devices, 4-year refresh",
                "A hyperscale deployment on a mid-carbon grid with high utilization.",
                Domain::Dnn,
                vec![(Knob::DutyCycle, 0.5), (Knob::UsageGridIntensity, 450.0)],
                8,
                4.0,
                10_000_000,
            ),
            // Adversarial packs: the worst realistic corner for each platform.
            entry(
                "fpga_worst_dirty_grid",
                "FPGA worst case: dirty grid, hot duty",
                "Maximum duty on a coal-heavy grid — the FPGA's power premium compounds hardest.",
                Domain::Dnn,
                vec![(Knob::DutyCycle, 0.6), (Knob::UsageGridIntensity, 700.0)],
                2,
                5.0,
                1_000_000,
            ),
            entry(
                "fpga_worst_single_app",
                "FPGA worst case: single application",
                "One application only, removing the reuse advantage reconfigurability pays for.",
                Domain::ImageProcessing,
                vec![],
                1,
                2.0,
                1_000_000,
            ),
            entry(
                "asic_worst_many_apps",
                "ASIC worst case: many short applications",
                "Sixteen one-year applications — a fresh ASIC tapeout per application.",
                Domain::ImageProcessing,
                vec![],
                16,
                1.0,
                50_000,
            ),
            entry(
                "asic_worst_clean_grid",
                "ASIC worst case: clean grid, light duty",
                "Hydro-grade grid at minimum duty — operation vanishes and embodied carbon rules.",
                Domain::Crypto,
                vec![(Knob::DutyCycle, 0.1), (Knob::UsageGridIntensity, 30.0)],
                10,
                2.0,
                100_000,
            ),
            // Decarbonization-trajectory scenarios.
            entry(
                "dnn_green_grid_refresh",
                "DNN fleet on a decarbonizing grid",
                "Clean usage and fab grids with circular-economy credits on both ends of life.",
                Domain::Dnn,
                vec![
                    (Knob::UsageGridIntensity, 50.0),
                    (Knob::FabGridIntensity, 100.0),
                    (Knob::RecycledMaterialFraction, 0.3),
                    (Knob::EolRecycledFraction, 0.3),
                ],
                5,
                2.0,
                1_000_000,
            ),
            entry(
                "crypto_low_duty_edge",
                "Crypto edge nodes at minimum duty",
                "A small intermittent edge fleet where per-device embodied carbon dominates.",
                Domain::Crypto,
                vec![(Knob::DutyCycle, 0.05)],
                2,
                4.0,
                1_000,
            ),
            entry(
                "imgproc_long_lifetime",
                "Image processing at maximum chip lifetime",
                "The FPGA fleet kept in service to the physical limit of its chip lifetime.",
                Domain::ImageProcessing,
                vec![(Knob::FpgaChipLifetimeYears, 15.0)],
                7,
                2.0,
                500_000,
            ),
        ]
    })
}

/// Resolves a catalog id to its index and entry; `None` for unknown ids.
pub fn catalog_entry(id: &str) -> Option<(usize, &'static CatalogEntry)> {
    catalog().iter().enumerate().find(|(_, e)| e.id == id)
}

// ---------------------------------------------------------------------------
// Time-series carbon intensity
// ---------------------------------------------------------------------------

/// Steps per year at hourly resolution — the canonical replay length.
pub const HOURS_PER_YEAR: usize = 8760;

/// A time-varying grid carbon intensity: an ordered series of g CO₂e/kWh
/// samples at a fixed step width, replayed on the operational-carbon path
/// where every other query uses one scalar intensity.
///
/// Construction validates the series (no NaN, no negatives, non-empty,
/// positive finite step) so a held value is always replayable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CarbonIntensitySeries {
    points: Vec<f64>,
    step_hours: f64,
}

impl CarbonIntensitySeries {
    /// The region-preset ids accepted by [`CarbonIntensitySeries::region`],
    /// in stable order.
    pub const REGIONS: [&'static str; 4] =
        ["global_flat", "clean_hydro", "dirty_coal", "solar_duck"];

    /// Builds a series from explicit samples.
    ///
    /// # Errors
    ///
    /// Returns [`GreenFpgaError::InvalidApplication`] when the series is
    /// empty, any sample is NaN / non-finite / negative, or the step width
    /// is not positive and finite.
    pub fn new(points: Vec<f64>, step_hours: f64) -> Result<Self, GreenFpgaError> {
        if points.is_empty() {
            return Err(GreenFpgaError::InvalidApplication {
                field: "series",
                reason: "intensity series must contain at least one point".to_string(),
            });
        }
        if !step_hours.is_finite() || step_hours <= 0.0 {
            return Err(GreenFpgaError::InvalidApplication {
                field: "series",
                reason: format!("step_hours must be positive and finite, got {step_hours}"),
            });
        }
        if let Some((index, bad)) = points
            .iter()
            .enumerate()
            .find(|(_, v)| !v.is_finite() || **v < 0.0)
        {
            return Err(GreenFpgaError::InvalidApplication {
                field: "series",
                reason: format!(
                    "intensity series point {index} must be finite and non-negative, got {bad}"
                ),
            });
        }
        Ok(CarbonIntensitySeries { points, step_hours })
    }

    /// A deterministic 8760-point hourly year for a named region preset:
    /// `global_flat` (the world-average constant), `clean_hydro` (low and
    /// mildly seasonal), `dirty_coal` (high with an evening peak), or
    /// `solar_duck` (midday solar trough). `None` for unknown names.
    pub fn region(name: &str) -> Option<Self> {
        let shape: fn(f64, f64) -> f64 = match name {
            "global_flat" => |_, _| 475.0,
            "clean_hydro" => |day, _| 50.0 + 15.0 * season(day),
            "dirty_coal" => |day, hour| 650.0 + 40.0 * season(day) + 30.0 * peak(hour, 18.0),
            "solar_duck" => |day, hour| 400.0 + 50.0 * season(day) - 250.0 * peak(hour, 12.0),
            _ => return None,
        };
        let points = (0..HOURS_PER_YEAR)
            .map(|h| shape((h / 24) as f64, (h % 24) as f64).max(1.0))
            .collect();
        Some(CarbonIntensitySeries {
            points,
            step_hours: 1.0,
        })
    }

    /// Stitches the series end-to-end `years` times: a one-year region
    /// preset becomes a multi-year trace with the same step width, so a
    /// replay can cover a whole device refresh horizon. `repeat(1)` is the
    /// identity.
    ///
    /// # Errors
    ///
    /// Returns [`GreenFpgaError::InvalidApplication`] when `years` is zero
    /// or the stitched series would exceed [`usize::MAX`] samples.
    pub fn repeat(&self, years: u64) -> Result<Self, GreenFpgaError> {
        if years == 0 {
            return Err(GreenFpgaError::InvalidApplication {
                field: "series",
                reason: "series repetition count must be at least 1".to_string(),
            });
        }
        if years == 1 {
            return Ok(self.clone());
        }
        let repeats = usize::try_from(years)
            .ok()
            .and_then(|y| self.points.len().checked_mul(y))
            .ok_or_else(|| GreenFpgaError::InvalidApplication {
                field: "series",
                reason: format!("stitching {years} copies overflows the series length"),
            })?;
        let mut points = Vec::with_capacity(repeats);
        for _ in 0..years {
            points.extend_from_slice(&self.points);
        }
        Ok(CarbonIntensitySeries {
            points,
            step_hours: self.step_hours,
        })
    }

    /// Number of samples in the series.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Always `false`: construction rejects empty series.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Step width in hours.
    pub fn step_hours(&self) -> f64 {
        self.step_hours
    }

    /// The raw samples (g CO₂e/kWh).
    pub fn points(&self) -> &[f64] {
        &self.points
    }

    /// Mean intensity over the whole series (g CO₂e/kWh).
    pub fn mean(&self) -> f64 {
        self.points.iter().sum::<f64>() / self.points.len() as f64
    }

    /// The intensity applied over step `index` (g CO₂e/kWh). Stepwise
    /// lookup holds the sample flat across its step; interpolated lookup
    /// averages the step's two bounding samples (trapezoidal, wrapping at
    /// the series end).
    pub fn sample(&self, index: usize, interpolate: bool) -> f64 {
        let here = self.points[index % self.points.len()];
        if interpolate {
            let next = self.points[(index + 1) % self.points.len()];
            0.5 * (here + next)
        } else {
            here
        }
    }

    /// Replays a compiled scenario against this series: embodied,
    /// design and app-dev carbon are paid up front exactly as the scalar
    /// path computes them, then each platform accrues per-step operation
    /// `applications × devices × average-power × step × intensity(step)`
    /// — the same factors as [`CompiledScenario::evaluate`], with the
    /// scalar `lifetime × grid` product replaced by the series integral.
    /// The serial step loop makes the result independent of engine thread
    /// counts by construction.
    ///
    /// # Errors
    ///
    /// Returns the scalar path's validation errors for a degenerate
    /// operating point (zero applications or volume, bad lifetime).
    pub fn replay(
        &self,
        compiled: &CompiledScenario,
        point: OperatingPoint,
        interpolate: bool,
    ) -> Result<ReplayOutcome, GreenFpgaError> {
        let comparison = compiled.evaluate(point)?;
        let apps = point.applications as f64;
        let fpga_devices = (point.volume * compiled.fpga().chips_per_unit()) as f64;
        let asic_devices = point.volume as f64;
        // kWh drawn per hour by the whole deployment, per platform.
        let fpga_kwh_per_hour = apps * fpga_devices * compiled.fpga().average_power_kw();
        let asic_kwh_per_hour = apps * asic_devices * compiled.asic().average_power_kw();
        let fpga_base = (comparison.fpga.total() - comparison.fpga.operation).as_kg();
        let asic_base = (comparison.asic.total() - comparison.asic.operation).as_kg();
        let fpga_embodied =
            (comparison.fpga.total() - comparison.fpga.operation - comparison.fpga.app_dev).as_kg();

        let mut fpga_total = fpga_base;
        let mut asic_total = asic_base;
        let mut ratio_sum = 0.0;
        let mut worst_ratio = f64::NEG_INFINITY;
        let mut excess_sum = 0.0;
        let mut worst_excess = 0.0f64;
        let mut losses = 0usize;
        let mut ratio = f64::INFINITY;
        for step in 0..self.points.len() {
            let kg_per_kwh = self.sample(step, interpolate) / 1000.0;
            fpga_total += fpga_kwh_per_hour * self.step_hours * kg_per_kwh;
            asic_total += asic_kwh_per_hour * self.step_hours * kg_per_kwh;
            ratio = if asic_total > 0.0 {
                fpga_total / asic_total
            } else {
                f64::INFINITY
            };
            ratio_sum += ratio;
            worst_ratio = worst_ratio.max(ratio);
            let excess = (ratio - 1.0).max(0.0);
            excess_sum += excess;
            worst_excess = worst_excess.max(excess);
            if ratio > 1.0 {
                losses += 1;
            }
        }
        let steps = self.points.len() as f64;
        let embodied_share = if fpga_total > 0.0 {
            (fpga_embodied / fpga_total).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let verdict = Verdict::from_penalties(
            excess_sum / steps,
            worst_excess,
            losses as f64 / steps,
            embodied_share,
        );
        Ok(ReplayOutcome {
            steps: self.points.len() as u64,
            fpga_operational: Carbon::from_kg(fpga_total - fpga_base),
            asic_operational: Carbon::from_kg(asic_total - asic_base),
            fpga_total: Carbon::from_kg(fpga_total),
            asic_total: Carbon::from_kg(asic_total),
            mean_ratio: ratio_sum / steps,
            worst_ratio,
            final_ratio: ratio,
            fpga_win_fraction: 1.0 - losses as f64 / steps,
            verdict,
        })
    }
}

fn season(day: f64) -> f64 {
    (std::f64::consts::TAU * day / 365.0).cos()
}

fn peak(hour: f64, at: f64) -> f64 {
    (std::f64::consts::TAU * (hour - at) / 24.0).cos()
}

/// The summary a year replay produces: cumulative totals, the ratio
/// trajectory's statistics and the scored [`Verdict`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplayOutcome {
    /// Number of series steps replayed.
    pub steps: u64,
    /// FPGA operational carbon accrued over the series.
    pub fpga_operational: Carbon,
    /// ASIC operational carbon accrued over the series.
    pub asic_operational: Carbon,
    /// FPGA cumulative total at the end of the series.
    pub fpga_total: Carbon,
    /// ASIC cumulative total at the end of the series.
    pub asic_total: Carbon,
    /// Mean of the per-step cumulative FPGA:ASIC ratios.
    pub mean_ratio: f64,
    /// Worst (highest) per-step cumulative ratio.
    pub worst_ratio: f64,
    /// Ratio at the final step.
    pub final_ratio: f64,
    /// Fraction of steps where the FPGA was the greener platform.
    pub fpga_win_fraction: f64,
    /// The scored verdict over the trajectory.
    pub verdict: Verdict,
}

// ---------------------------------------------------------------------------
// Verdict scoring
// ---------------------------------------------------------------------------

/// A weighted penalty score over a scenario outcome; higher (closer to
/// zero) is better for the FPGA platform, and the all-clear outcome
/// scores exactly `0.0`.
///
/// `score = −(0.4·mean_excess + 0.3·worst_excess + 0.2·loss_fraction
/// + 0.1·embodied_share)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Verdict {
    /// Mean FPGA excess over parity: average of `max(ratio − 1, 0)`.
    pub mean_excess: f64,
    /// Worst single-step excess over parity.
    pub worst_excess: f64,
    /// Fraction of steps where the FPGA lost (`ratio > 1`).
    pub loss_fraction: f64,
    /// FPGA embodied carbon (design + manufacturing + packaging + EOL)
    /// as a share of its final total — exposure to up-front carbon.
    pub embodied_share: f64,
    /// The combined score (≤ 0; `-inf` for an empty trajectory).
    pub score: f64,
}

impl Verdict {
    /// The penalty weights, in `(mean_excess, worst_excess,
    /// loss_fraction, embodied_share)` order.
    pub const WEIGHTS: [f64; 4] = [0.4, 0.3, 0.2, 0.1];

    /// Scores explicit penalty components.
    pub fn from_penalties(
        mean_excess: f64,
        worst_excess: f64,
        loss_fraction: f64,
        embodied_share: f64,
    ) -> Verdict {
        let [w_mean, w_worst, w_loss, w_embodied] = Verdict::WEIGHTS;
        Verdict {
            mean_excess,
            worst_excess,
            loss_fraction,
            embodied_share,
            score: -(w_mean * mean_excess
                + w_worst * worst_excess
                + w_loss * loss_fraction
                + w_embodied * embodied_share),
        }
    }

    /// Scores a ratio trajectory. An empty trajectory scores
    /// `f64::NEG_INFINITY` — no evidence, no credit.
    pub fn from_trajectory(ratios: &[f64], embodied_share: f64) -> Verdict {
        if ratios.is_empty() {
            return Verdict {
                mean_excess: 0.0,
                worst_excess: 0.0,
                loss_fraction: 0.0,
                embodied_share,
                score: f64::NEG_INFINITY,
            };
        }
        let excess = |r: &f64| (r - 1.0).max(0.0);
        let mean = ratios.iter().map(excess).sum::<f64>() / ratios.len() as f64;
        let worst = ratios.iter().map(excess).fold(0.0, f64::max);
        let losses = ratios.iter().filter(|r| **r > 1.0).count();
        Verdict::from_penalties(
            mean,
            worst,
            losses as f64 / ratios.len() as f64,
            embodied_share,
        )
    }

    /// Scores one scalar comparison — a single-step trajectory.
    pub fn from_comparison(comparison: &PlatformComparison) -> Verdict {
        let total = comparison.fpga.total().as_kg();
        let embodied =
            (comparison.fpga.total() - comparison.fpga.operation - comparison.fpga.app_dev).as_kg();
        let share = if total > 0.0 {
            (embodied / total).clamp(0.0, 1.0)
        } else {
            0.0
        };
        Verdict::from_trajectory(&[comparison.fpga_to_asic_ratio()], share)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(domain: Domain) -> Vec<LongHorizonPoint> {
        LongHorizonScenario::paper_fig9(domain)
            .run(&Estimator::default())
            .unwrap()
    }

    #[test]
    fn repeat_stitches_years_end_to_end() {
        let series = CarbonIntensitySeries::new(vec![1.0, 2.0, 3.0], 4.0).unwrap();
        let stitched = series.repeat(3).unwrap();
        assert_eq!(
            stitched.points(),
            &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0, 1.0, 2.0, 3.0]
        );
        assert_eq!(stitched.step_hours(), 4.0);
        assert_eq!(series.repeat(1).unwrap().points(), series.points());
        assert!(series.repeat(0).is_err());
        // A stitched region preset replays identically to the wrapped
        // single-year series over the same horizon (sampling wraps modulo).
        let year = CarbonIntensitySeries::region("solar_duck").unwrap();
        let two = year.repeat(2).unwrap();
        assert_eq!(two.len(), 2 * year.len());
        for index in [0, 1, 8759, 8760, 12000] {
            assert_eq!(year.sample(index, true), two.sample(index, true));
        }
    }

    #[test]
    fn produces_one_point_per_year() {
        let series = run(Domain::Dnn);
        assert_eq!(series.len(), 40);
        assert_eq!(series.first().unwrap().year, 1);
        assert_eq!(series.last().unwrap().year, 40);
    }

    #[test]
    fn cumulative_footprints_are_monotone() {
        for domain in Domain::ALL {
            let series = run(domain);
            for pair in series.windows(2) {
                assert!(
                    pair[1].fpga_cumulative >= pair[0].fpga_cumulative,
                    "{domain}"
                );
                assert!(
                    pair[1].asic_cumulative >= pair[0].asic_cumulative,
                    "{domain}"
                );
            }
        }
    }

    #[test]
    fn fpga_fleet_is_replaced_at_chip_lifetime_boundaries() {
        let series = run(Domain::Dnn);
        // Default chip lifetime is 15 years: fleets at years 1, 16, 31.
        assert_eq!(series[0].fpga_fleets_built, 1);
        assert_eq!(series[14].fpga_fleets_built, 1);
        assert_eq!(series[15].fpga_fleets_built, 2);
        assert_eq!(series[29].fpga_fleets_built, 2);
        assert_eq!(series[30].fpga_fleets_built, 3);
        assert_eq!(series[39].fpga_fleets_built, 3);
    }

    #[test]
    fn fpga_curve_jumps_at_replacement_years() {
        let series = run(Domain::Dnn);
        let yearly_increase: Vec<f64> = series
            .windows(2)
            .map(|w| (w[1].fpga_cumulative - w[0].fpga_cumulative).as_kg())
            .collect();
        // Increase from year 15→16 (index 14) includes a whole new fleet and
        // must dwarf the ordinary year-over-year increase before it.
        assert!(yearly_increase[14] > 3.0 * yearly_increase[13]);
        assert!(yearly_increase[29] > 3.0 * yearly_increase[28]);
        // The ASIC curve shows no such jump: its increases stay comparable.
        let asic_increase: Vec<f64> = series
            .windows(2)
            .map(|w| (w[1].asic_cumulative - w[0].asic_cumulative).as_kg())
            .collect();
        let max = asic_increase.iter().cloned().fold(0.0, f64::max);
        let min = asic_increase.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max < 1.5 * min);
    }

    #[test]
    fn crypto_stays_fpga_favorable_despite_replacements() {
        // Paper: for Crypto (and DNN) the jumps do not change the choice of
        // the more sustainable platform.
        let series = run(Domain::Crypto);
        assert!(series.iter().skip(2).all(|p| p.ratio() < 1.0));
    }

    #[test]
    fn imgproc_sees_multiple_crossovers_over_the_long_horizon() {
        // Paper Fig. 9: for ImgProc the fleet-replacement jumps lead to
        // multiple A2F and F2A crossovers as the number of years grows — the
        // ratio is above 1 early on, dips below 1 once enough applications
        // have amortized the fleet, and is pushed back up by replacements.
        let series = run(Domain::ImageProcessing);
        assert!(series.first().unwrap().ratio() > 1.0);
        assert!(series.iter().any(|p| p.ratio() < 1.0));
        let crossings = series
            .windows(2)
            .filter(|w| (w[0].ratio() < 1.0) != (w[1].ratio() < 1.0))
            .count();
        assert!(
            crossings >= 1,
            "expected at least one crossover, saw {crossings}"
        );
    }

    #[test]
    fn degenerate_scenarios_are_rejected() {
        let mut s = LongHorizonScenario::paper_fig9(Domain::Dnn);
        s.evaluation_years = 0;
        assert!(s.run(&Estimator::default()).is_err());
        let mut s = LongHorizonScenario::paper_fig9(Domain::Dnn);
        s.application_lifetime_years = 0;
        assert!(s.run(&Estimator::default()).is_err());
    }

    #[test]
    fn shorter_chip_lifetime_means_more_fleets() {
        let estimator = Estimator::new(
            crate::EstimatorParams::paper_defaults()
                .with_fpga_chip_lifetime(TimeSpan::from_years(10.0)),
        );
        let series = LongHorizonScenario::paper_fig9(Domain::Dnn)
            .run(&estimator)
            .unwrap();
        assert_eq!(series.last().unwrap().fpga_fleets_built, 4); // years 1, 11, 21, 31
    }

    #[test]
    fn catalog_ids_are_unique_and_plentiful() {
        let ids: std::collections::HashSet<&str> = catalog().iter().map(|e| e.id).collect();
        assert_eq!(ids.len(), catalog().len(), "duplicate catalog id");
        assert!(catalog().len() >= 12, "catalog holds at least 12 scenarios");
        for domain in Domain::ALL {
            assert!(
                catalog().iter().any(|e| e.scenario.domain == domain),
                "no catalog baseline for {domain}"
            );
        }
    }

    #[test]
    fn catalog_lookup_resolves_every_id() {
        for (index, entry) in catalog().iter().enumerate() {
            let (found, resolved) = catalog_entry(entry.id).unwrap();
            assert_eq!(found, index);
            assert_eq!(resolved, entry);
        }
        assert!(catalog_entry("no_such_scenario").is_none());
    }

    #[test]
    fn series_construction_rejects_degenerate_input() {
        assert!(CarbonIntensitySeries::new(vec![], 1.0).is_err());
        assert!(CarbonIntensitySeries::new(vec![f64::NAN], 1.0).is_err());
        assert!(CarbonIntensitySeries::new(vec![100.0, -1.0], 1.0).is_err());
        assert!(CarbonIntensitySeries::new(vec![100.0], 0.0).is_err());
        assert!(CarbonIntensitySeries::new(vec![100.0], f64::INFINITY).is_err());
        assert!(CarbonIntensitySeries::new(vec![100.0, 200.0], 1.0).is_ok());
    }

    #[test]
    fn region_presets_are_year_length_and_positive() {
        for name in CarbonIntensitySeries::REGIONS {
            let series = CarbonIntensitySeries::region(name).unwrap();
            assert_eq!(series.len(), HOURS_PER_YEAR, "{name}");
            assert!(series.points().iter().all(|v| *v >= 1.0), "{name}");
            assert!(series.step_hours() == 1.0);
        }
        assert!(CarbonIntensitySeries::region("atlantis").is_none());
    }

    #[test]
    fn interpolated_sample_averages_the_step_bounds() {
        let series = CarbonIntensitySeries::new(vec![100.0, 300.0], 1.0).unwrap();
        assert_eq!(series.sample(0, false), 100.0);
        assert_eq!(series.sample(0, true), 200.0);
        // The last step wraps to the first sample.
        assert_eq!(series.sample(1, true), 200.0);
    }

    #[test]
    fn constant_series_replay_matches_the_scalar_operation_rate() {
        // A flat series at the compiled usage-grid intensity must accrue
        // operational carbon at (very nearly) the scalar model's yearly
        // rate for the same deployment.
        let spec = ScenarioSpec::baseline(Domain::Dnn);
        let params = spec.params();
        let grid = params.deployment().usage_grid.as_grams_per_kwh();
        let compiled = CompiledScenario::compile(&params, Domain::Dnn).unwrap();
        let point = OperatingPoint::paper_default();
        let series = CarbonIntensitySeries::new(vec![grid; HOURS_PER_YEAR], 1.0).unwrap();
        let outcome = series.replay(&compiled, point, false).unwrap();
        let fpga_devices = point.volume * compiled.fpga().chips_per_unit();
        let scalar_year_kg = compiled.fpga().operation_kg_per_device_year()
            * fpga_devices as f64
            * point.applications as f64;
        let relative = (outcome.fpga_operational.as_kg() - scalar_year_kg).abs() / scalar_year_kg;
        assert!(relative < 2e-3, "relative deviation {relative}");
    }

    #[test]
    fn replay_is_deterministic_and_interpolation_matters() {
        let compiled = CompiledScenario::compile(
            &ScenarioSpec::baseline(Domain::Crypto).params(),
            Domain::Crypto,
        )
        .unwrap();
        let point = OperatingPoint::paper_default();
        let series = CarbonIntensitySeries::region("solar_duck").unwrap();
        let a = series.replay(&compiled, point, false).unwrap();
        let b = series.replay(&compiled, point, false).unwrap();
        assert_eq!(a, b, "replay is a pure function of its inputs");
        let c = series.replay(&compiled, point, true).unwrap();
        assert_ne!(a.fpga_operational, c.fpga_operational);
    }

    #[test]
    fn verdict_follows_the_weighted_penalty_shape() {
        let v = Verdict::from_penalties(0.5, 1.0, 0.25, 0.1);
        assert_eq!(v.score, -(0.4 * 0.5 + 0.3 * 1.0 + 0.2 * 0.25 + 0.1 * 0.1));
        let clean = Verdict::from_trajectory(&[0.5, 0.9, 0.99], 0.0);
        assert_eq!(clean.score, 0.0, "all-win trajectory is the perfect score");
        assert_eq!(clean.loss_fraction, 0.0);
        let empty = Verdict::from_trajectory(&[], 0.5);
        assert_eq!(empty.score, f64::NEG_INFINITY);
        let mixed = Verdict::from_trajectory(&[0.8, 1.2], 0.0);
        assert_eq!(mixed.loss_fraction, 0.5);
        assert!(mixed.score < 0.0);
        assert!(mixed.score > empty.score, "higher is better");
    }
}

//! Top-level model parameters (the "knobs" of Table 1).

use serde::{Deserialize, Serialize};

use gf_act::{GridMix, ManufacturingModel, PackagingModel, TechnologyNode, YieldModel};
use gf_lifecycle::{AppDevModel, DesignHouse, DesignProject, EolModel, OperationProfile};
use gf_units::{CarbonIntensity, CarbonPerMass, Fraction, GateCount, TimeSpan};

use crate::{ChipSpec, GreenFpgaError};

/// Engineering staffing of one chip-design project: the `N_emp,chip` and
/// `T_proj` knobs of the design-CFP model (Eq. 4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignStaffing {
    /// Engineers working on the product.
    pub engineers: u64,
    /// Project duration in years (Table 1: 1–3 years).
    pub duration_years: f64,
}

impl DesignStaffing {
    /// Creates a staffing description.
    pub fn new(engineers: u64, duration_years: f64) -> Self {
        DesignStaffing {
            engineers,
            duration_years,
        }
    }

    /// Builds the [`DesignProject`] for a specific chip.
    ///
    /// # Errors
    ///
    /// Returns a [`GreenFpgaError::Lifecycle`] error when the staffing is
    /// degenerate (zero engineers or negative duration).
    pub fn project_for(&self, chip: &ChipSpec) -> Result<DesignProject, GreenFpgaError> {
        Ok(DesignProject::new(
            chip.gates(),
            TimeSpan::from_years(self.duration_years),
            self.engineers,
        )?)
    }
}

impl Default for DesignStaffing {
    /// A 500-engineer, two-year project.
    fn default() -> Self {
        DesignStaffing::new(500, 2.0)
    }
}

/// Field-deployment parameters shared by every device in a study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeploymentParams {
    /// Fraction of wall-clock time the accelerator draws its TDP.
    pub duty_cycle: Fraction,
    /// Carbon intensity of the electricity the deployed devices consume
    /// (`C_src,use`).
    pub usage_grid: CarbonIntensity,
}

impl DeploymentParams {
    /// Creates deployment parameters.
    pub fn new(duty_cycle: Fraction, usage_grid: CarbonIntensity) -> Self {
        DeploymentParams {
            duty_cycle,
            usage_grid,
        }
    }

    /// The paper-calibrated default: accelerators busy 20% of the time in a
    /// renewable-heavy deployment (120 g CO₂/kWh).
    pub fn paper_defaults() -> Self {
        DeploymentParams {
            duty_cycle: Fraction::clamped(0.2),
            usage_grid: CarbonIntensity::from_grams_per_kwh(120.0),
        }
    }

    /// Operating profile of a chip under these deployment parameters.
    pub fn profile_for(&self, chip: &ChipSpec) -> OperationProfile {
        OperationProfile::new(chip.tdp(), self.duty_cycle, self.usage_grid)
    }
}

impl Default for DeploymentParams {
    fn default() -> Self {
        DeploymentParams::paper_defaults()
    }
}

/// All GreenFPGA model parameters.
///
/// Every knob of Table 1 of the paper is reachable from here; the
/// [`EstimatorParams::paper_defaults`] constructor fills them with the
/// calibrated defaults used by the experiment harness.
///
/// # Examples
///
/// ```
/// use greenfpga::EstimatorParams;
/// use greenfpga::act::GridMix;
///
/// let params = EstimatorParams::paper_defaults()
///     .with_fab_grid(GridMix::Iceland.carbon_intensity());
/// assert!(params.fab_grid().as_grams_per_kwh() < 100.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EstimatorParams {
    fab_grid: CarbonIntensity,
    fab_renewable_share: Fraction,
    yield_model: YieldModel,
    recycled_material_fraction: Fraction,
    packaging: PackagingModel,
    eol_discard: CarbonPerMass,
    eol_recycle_credit: CarbonPerMass,
    eol_recycled_fraction: Fraction,
    design_house: DesignHouse,
    appdev: AppDevModel,
    deployment: DeploymentParams,
    fpga_chip_lifetime: TimeSpan,
    asic_chip_lifetime: TimeSpan,
}

impl EstimatorParams {
    /// The calibrated defaults used throughout the experiment harness.
    ///
    /// Fab: Taiwan grid with 20% renewables, Murphy yield, no recycled
    /// materials. EOL: mid-range EPA WARM factors, no recycling. Design: the
    /// default fabless house of [`DesignHouse::default_fabless`]. Deployment:
    /// 20% duty cycle on a 120 g CO₂/kWh grid. Chip lifetimes: 15 years
    /// (FPGA, reconfigurable) and 8 years (ASIC), per the paper's §2.
    pub fn paper_defaults() -> Self {
        EstimatorParams {
            fab_grid: GridMix::Taiwan.carbon_intensity(),
            fab_renewable_share: Fraction::clamped(0.2),
            yield_model: YieldModel::Murphy,
            recycled_material_fraction: Fraction::ZERO,
            packaging: PackagingModel::monolithic(),
            eol_discard: CarbonPerMass::from_tons_co2_per_ton(1.0),
            eol_recycle_credit: CarbonPerMass::from_tons_co2_per_ton(15.0),
            eol_recycled_fraction: Fraction::ZERO,
            design_house: DesignHouse::default_fabless()
                .with_average_chip_gates(GateCount::from_millions(500.0)),
            appdev: AppDevModel::default_paper(),
            deployment: DeploymentParams::paper_defaults(),
            fpga_chip_lifetime: TimeSpan::from_years(15.0),
            asic_chip_lifetime: TimeSpan::from_years(8.0),
        }
    }

    /// Overrides the fab grid carbon intensity.
    pub fn with_fab_grid(mut self, grid: CarbonIntensity) -> Self {
        self.set_fab_grid(grid);
        self
    }

    /// In-place variant of [`Self::with_fab_grid`]; used by
    /// [`crate::Knob::apply_mut`] so batch analyses can retune parameters
    /// without cloning the whole set per knob.
    pub fn set_fab_grid(&mut self, grid: CarbonIntensity) {
        self.fab_grid = grid;
    }

    /// Overrides the fab renewable-energy share.
    pub fn with_fab_renewable_share(mut self, share: Fraction) -> Self {
        self.fab_renewable_share = share;
        self
    }

    /// Overrides the die-yield model.
    pub fn with_yield_model(mut self, model: YieldModel) -> Self {
        self.yield_model = model;
        self
    }

    /// Overrides the recycled-material fraction `ρ` of Eq. (5).
    pub fn with_recycled_material_fraction(mut self, rho: Fraction) -> Self {
        self.set_recycled_material_fraction(rho);
        self
    }

    /// In-place variant of [`Self::with_recycled_material_fraction`].
    pub fn set_recycled_material_fraction(&mut self, rho: Fraction) {
        self.recycled_material_fraction = rho;
    }

    /// Overrides the packaging model.
    pub fn with_packaging(mut self, packaging: PackagingModel) -> Self {
        self.packaging = packaging;
        self
    }

    /// Overrides the end-of-life discard factor (`C_dis`).
    pub fn with_eol_discard(mut self, factor: CarbonPerMass) -> Self {
        self.eol_discard = factor;
        self
    }

    /// Overrides the end-of-life recycling credit (`C_recycle`).
    pub fn with_eol_recycle_credit(mut self, factor: CarbonPerMass) -> Self {
        self.eol_recycle_credit = factor;
        self
    }

    /// Overrides the end-of-life recycled fraction `δ`.
    pub fn with_eol_recycled_fraction(mut self, delta: Fraction) -> Self {
        self.set_eol_recycled_fraction(delta);
        self
    }

    /// In-place variant of [`Self::with_eol_recycled_fraction`].
    pub fn set_eol_recycled_fraction(&mut self, delta: Fraction) {
        self.eol_recycled_fraction = delta;
    }

    /// Overrides the design house.
    pub fn with_design_house(mut self, house: DesignHouse) -> Self {
        self.set_design_house(house);
        self
    }

    /// In-place variant of [`Self::with_design_house`].
    pub fn set_design_house(&mut self, house: DesignHouse) {
        self.design_house = house;
    }

    /// Overrides the application-development model.
    pub fn with_appdev(mut self, appdev: AppDevModel) -> Self {
        self.set_appdev(appdev);
        self
    }

    /// In-place variant of [`Self::with_appdev`].
    pub fn set_appdev(&mut self, appdev: AppDevModel) {
        self.appdev = appdev;
    }

    /// Overrides the deployment parameters.
    pub fn with_deployment(mut self, deployment: DeploymentParams) -> Self {
        self.set_deployment(deployment);
        self
    }

    /// In-place variant of [`Self::with_deployment`].
    pub fn set_deployment(&mut self, deployment: DeploymentParams) {
        self.deployment = deployment;
    }

    /// Overrides the FPGA chip lifetime (the paper uses 12–15 years).
    pub fn with_fpga_chip_lifetime(mut self, lifetime: TimeSpan) -> Self {
        self.set_fpga_chip_lifetime(lifetime);
        self
    }

    /// In-place variant of [`Self::with_fpga_chip_lifetime`].
    pub fn set_fpga_chip_lifetime(&mut self, lifetime: TimeSpan) {
        self.fpga_chip_lifetime = lifetime;
    }

    /// Overrides the ASIC chip lifetime (the paper uses 5–8 years).
    pub fn with_asic_chip_lifetime(mut self, lifetime: TimeSpan) -> Self {
        self.asic_chip_lifetime = lifetime;
        self
    }

    /// Fab grid carbon intensity.
    pub fn fab_grid(&self) -> CarbonIntensity {
        self.fab_grid
    }

    /// Recycled-material fraction `ρ`.
    pub fn recycled_material_fraction(&self) -> Fraction {
        self.recycled_material_fraction
    }

    /// The packaging model.
    pub fn packaging(&self) -> PackagingModel {
        self.packaging
    }

    /// The design house.
    pub fn design_house(&self) -> &DesignHouse {
        &self.design_house
    }

    /// The application-development model.
    pub fn appdev(&self) -> &AppDevModel {
        &self.appdev
    }

    /// The deployment parameters.
    pub fn deployment(&self) -> &DeploymentParams {
        &self.deployment
    }

    /// FPGA chip lifetime.
    pub fn fpga_chip_lifetime(&self) -> TimeSpan {
        self.fpga_chip_lifetime
    }

    /// ASIC chip lifetime.
    pub fn asic_chip_lifetime(&self) -> TimeSpan {
        self.asic_chip_lifetime
    }

    /// Builds the manufacturing model for a given node under these
    /// parameters.
    pub fn manufacturing_model(&self, node: TechnologyNode) -> ManufacturingModel {
        ManufacturingModel::for_node(node)
            .with_fab_grid(self.fab_grid)
            .with_fab_renewable_share(self.fab_renewable_share)
            .with_yield_model(self.yield_model)
            .with_recycled_material_fraction(self.recycled_material_fraction)
    }

    /// Builds the end-of-life model under these parameters.
    pub fn eol_model(&self) -> EolModel {
        EolModel::new(
            self.eol_discard,
            self.eol_recycle_credit,
            self.eol_recycled_fraction,
        )
    }
}

impl Default for EstimatorParams {
    fn default() -> Self {
        EstimatorParams::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf_units::{Area, Power};

    #[test]
    fn paper_defaults_are_consistent() {
        let p = EstimatorParams::paper_defaults();
        assert!(p.fpga_chip_lifetime() > p.asic_chip_lifetime());
        assert!((p.fpga_chip_lifetime().as_years() - 15.0).abs() < 1e-12);
        assert!(p.recycled_material_fraction().is_zero());
        assert_eq!(EstimatorParams::default(), p);
    }

    #[test]
    fn builders_propagate_to_submodels() {
        let p = EstimatorParams::paper_defaults()
            .with_fab_grid(GridMix::Iceland.carbon_intensity())
            .with_recycled_material_fraction(Fraction::new(0.5).unwrap());
        let dirty =
            EstimatorParams::paper_defaults().with_fab_grid(GridMix::CoalHeavy.carbon_intensity());
        let die = Area::from_mm2(300.0);
        let clean_cfp = p
            .manufacturing_model(TechnologyNode::N10)
            .carbon_per_die(die)
            .unwrap();
        let dirty_cfp = dirty
            .manufacturing_model(TechnologyNode::N10)
            .carbon_per_die(die)
            .unwrap();
        assert!(clean_cfp < dirty_cfp);
    }

    #[test]
    fn eol_model_uses_configured_fractions() {
        let p = EstimatorParams::paper_defaults()
            .with_eol_recycled_fraction(Fraction::new(0.9).unwrap());
        let eol = p.eol_model();
        assert!(eol
            .carbon_per_chip(gf_units::Mass::from_grams(100.0))
            .is_credit());
    }

    #[test]
    fn deployment_profile_uses_chip_tdp() {
        let dep = DeploymentParams::paper_defaults();
        let chip = ChipSpec::new(
            "x",
            Area::from_mm2(100.0),
            Power::from_watts(50.0),
            TechnologyNode::N10,
        )
        .unwrap();
        let profile = dep.profile_for(&chip);
        assert_eq!(profile.peak_power(), Power::from_watts(50.0));
        assert_eq!(profile.duty_cycle(), dep.duty_cycle);
    }

    #[test]
    fn design_staffing_builds_projects() {
        let chip = ChipSpec::new(
            "x",
            Area::from_mm2(100.0),
            Power::from_watts(50.0),
            TechnologyNode::N10,
        )
        .unwrap();
        let staffing = DesignStaffing::new(400, 2.5);
        let project = staffing.project_for(&chip).unwrap();
        assert_eq!(project.engineers, 400);
        assert!((project.duration.as_years() - 2.5).abs() < 1e-12);
        assert_eq!(project.gates, chip.gates());
        assert!(DesignStaffing::new(0, 1.0).project_for(&chip).is_err());
        assert_eq!(DesignStaffing::default().engineers, 500);
    }

    #[test]
    fn chip_lifetime_overrides() {
        let p = EstimatorParams::paper_defaults()
            .with_fpga_chip_lifetime(TimeSpan::from_years(12.0))
            .with_asic_chip_lifetime(TimeSpan::from_years(5.0));
        assert!((p.fpga_chip_lifetime().as_years() - 12.0).abs() < 1e-12);
        assert!((p.asic_chip_lifetime().as_years() - 5.0).abs() < 1e-12);
    }
}

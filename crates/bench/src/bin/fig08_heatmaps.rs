//! Figure 8: pairwise-sweep heatmaps of the FPGA:ASIC CFP ratio for the DNN
//! domain, with (a) `N_vol`, (b) `N_app` and (c) `T_i` held constant.
//!
//! Paper result: FPGAs are sustainable toward many applications, short
//! lifetimes and low volumes; the ratio-1 contour (drawn with `=`) marks the
//! crossover front.

use gf_bench::paper_estimator;
use greenfpga::{log_spaced_volumes, Domain, HeatmapRenderer, OperatingPoint, SweepAxis};

fn main() -> Result<(), greenfpga::GreenFpgaError> {
    let estimator = paper_estimator();
    let base = OperatingPoint {
        applications: 5,
        lifetime_years: 2.0,
        volume: 1_000_000,
    };
    let renderer = HeatmapRenderer::new();

    let apps: Vec<f64> = (1..=10).map(|n| n as f64).collect();
    let lifetimes: Vec<f64> = (1..=10).map(|i| 0.25 * i as f64).collect();
    let volumes: Vec<f64> = log_spaced_volumes(10_000, 9_000_000, 10)
        .into_iter()
        .map(|v| v as f64)
        .collect();

    println!("Figure 8(a) — N_app x T_i grid (N_vol fixed at 1e6):");
    let grid = estimator.ratio_grid(
        Domain::Dnn,
        SweepAxis::Applications,
        &apps,
        SweepAxis::LifetimeYears,
        &lifetimes,
        base,
    )?;
    println!("{}", renderer.render(&grid));
    println!(
        "FPGA wins in {:.0}% of the grid",
        grid.fpga_winning_fraction() * 100.0
    );
    println!();

    println!("Figure 8(b) — N_vol x T_i grid (N_app fixed at 5):");
    let grid = estimator.ratio_grid(
        Domain::Dnn,
        SweepAxis::VolumeUnits,
        &volumes,
        SweepAxis::LifetimeYears,
        &lifetimes,
        base,
    )?;
    println!("{}", renderer.render(&grid));
    println!(
        "FPGA wins in {:.0}% of the grid",
        grid.fpga_winning_fraction() * 100.0
    );
    println!();

    println!("Figure 8(c) — N_vol x N_app grid (T_i fixed at 2 years):");
    let grid = estimator.ratio_grid(
        Domain::Dnn,
        SweepAxis::VolumeUnits,
        &volumes,
        SweepAxis::Applications,
        &apps,
        base,
    )?;
    println!("{}", renderer.render(&grid));
    println!(
        "FPGA wins in {:.0}% of the grid",
        grid.fpga_winning_fraction() * 100.0
    );
    Ok(())
}

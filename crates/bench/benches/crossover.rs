//! Criterion bench: crossover searches (the numbers behind the paper's
//! headline claims).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use greenfpga::{Domain, Estimator, EstimatorParams};

fn bench_crossover_in_applications(c: &mut Criterion) {
    let estimator = Estimator::new(EstimatorParams::paper_defaults());
    c.bench_function("crossover_applications_dnn", |b| {
        b.iter(|| {
            estimator
                .crossover_in_applications(black_box(Domain::Dnn), 16, 2.0, 1_000_000)
                .expect("search")
        })
    });
}

fn bench_crossover_in_lifetime(c: &mut Criterion) {
    let estimator = Estimator::new(EstimatorParams::paper_defaults());
    c.bench_function("crossover_lifetime_dnn", |b| {
        b.iter(|| {
            estimator
                .crossover_in_lifetime(black_box(Domain::Dnn), 5, 1_000_000, 0.05, 3.0)
                .expect("search")
        })
    });
}

fn bench_crossover_in_volume(c: &mut Criterion) {
    let estimator = Estimator::new(EstimatorParams::paper_defaults());
    c.bench_function("crossover_volume_dnn", |b| {
        b.iter(|| {
            estimator
                .crossover_in_volume(black_box(Domain::Dnn), 5, 2.0, 1_000, 20_000_000)
                .expect("search")
        })
    });
}

criterion_group!(
    benches,
    bench_crossover_in_applications,
    bench_crossover_in_lifetime,
    bench_crossover_in_volume
);
criterion_main!(benches);

//! Property-based tests for the manufacturing substrate.

use gf_act::{ManufacturingModel, PackagingModel, TechnologyNode, Wafer, YieldModel};
use gf_units::{Area, Fraction};
use proptest::prelude::*;

fn any_node() -> impl Strategy<Value = TechnologyNode> {
    prop::sample::select(TechnologyNode::ALL.to_vec())
}

proptest! {
    #[test]
    fn yield_is_always_a_probability(
        mm2 in 0.0f64..3000.0,
        d0 in 0.0f64..2.0,
        alpha in 0.5f64..10.0,
    ) {
        for model in [
            YieldModel::Poisson,
            YieldModel::Murphy,
            YieldModel::NegativeBinomial { alpha },
        ] {
            let y = model.die_yield(Area::from_mm2(mm2), d0);
            prop_assert!((0.0..=1.0).contains(&y), "{model:?} gave {y}");
        }
    }

    #[test]
    fn yield_monotone_in_area(
        a in 1.0f64..1500.0,
        b in 1.0f64..1500.0,
        d0 in 0.01f64..1.0,
    ) {
        let (small, large) = if a < b { (a, b) } else { (b, a) };
        for model in [YieldModel::Poisson, YieldModel::Murphy, YieldModel::NegativeBinomial { alpha: 3.0 }] {
            prop_assert!(
                model.die_yield(Area::from_mm2(large), d0)
                    <= model.die_yield(Area::from_mm2(small), d0) + 1e-12
            );
        }
    }

    #[test]
    fn manufacturing_carbon_positive_and_monotone_in_area(
        node in any_node(),
        a in 1.0f64..900.0,
        b in 1.0f64..900.0,
    ) {
        let m = ManufacturingModel::for_node(node);
        let (small, large) = if a < b { (a, b) } else { (b, a) };
        let cs = m.carbon_per_die(Area::from_mm2(small)).unwrap();
        let cl = m.carbon_per_die(Area::from_mm2(large)).unwrap();
        prop_assert!(cs.as_kg() > 0.0);
        prop_assert!(cl.as_kg() + 1e-12 >= cs.as_kg());
    }

    #[test]
    fn recycling_never_increases_manufacturing_carbon(
        node in any_node(),
        mm2 in 1.0f64..900.0,
        rho in 0.0f64..=1.0,
    ) {
        let die = Area::from_mm2(mm2);
        let base = ManufacturingModel::for_node(node).carbon_per_die(die).unwrap();
        let recycled = ManufacturingModel::for_node(node)
            .with_recycled_material_fraction(Fraction::new(rho).unwrap())
            .carbon_per_die(die)
            .unwrap();
        prop_assert!(recycled.as_kg() <= base.as_kg() + 1e-9);
    }

    #[test]
    fn breakdown_components_sum_to_total(node in any_node(), mm2 in 1.0f64..900.0) {
        let m = ManufacturingModel::for_node(node);
        let b = m.breakdown_per_die(Area::from_mm2(mm2)).unwrap();
        let total = m.carbon_per_die(Area::from_mm2(mm2)).unwrap();
        prop_assert!((b.total().as_kg() - total.as_kg()).abs() < 1e-9);
        prop_assert!(b.energy.as_kg() >= 0.0 && b.gas.as_kg() >= 0.0 && b.materials.as_kg() >= 0.0);
    }

    #[test]
    fn dies_per_wafer_conserves_area(mm2 in 1.0f64..2000.0) {
        let wafer = Wafer::standard_300mm();
        let die = Area::from_mm2(mm2);
        let dies = wafer.dies_per_wafer(die);
        // Whole dies can never exceed the usable area of the wafer.
        prop_assert!(dies as f64 * mm2 <= wafer.usable_area().as_mm2() + 1e-6);
    }

    #[test]
    fn packaging_monotone_in_area(a in 0.0f64..2000.0, b in 0.0f64..2000.0) {
        let (small, large) = if a < b { (a, b) } else { (b, a) };
        for pkg in [PackagingModel::monolithic(), PackagingModel::interposer_2p5d()] {
            prop_assert!(
                pkg.carbon_for_die(Area::from_mm2(large)).as_kg() + 1e-12
                    >= pkg.carbon_for_die(Area::from_mm2(small)).as_kg()
            );
        }
    }
}

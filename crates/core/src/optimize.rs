//! Inverse queries: a typed objective model and a two-tier solver over the
//! compiled evaluation kernel.
//!
//! The estimator answers "given these knobs, what is the footprint?"; the
//! optimizer answers the decisions users actually face — "what volume /
//! lifetime / application count minimizes footprint?", "how far can the
//! fleet grow before it blows a carbon budget?", "which knob settings make
//! the FPGA win?". An [`Objective`] names the scalar to minimize (or the
//! budget to satisfy), [`SearchKnob`]s bound a 1–3 dimensional box over
//! the workload axes, and [`Constraint`]s carve out the feasible region.
//!
//! Two solver tiers share one entry point,
//! [`CompiledScenario::optimize`]:
//!
//! * **Analytic** — every `Min*` objective and the FPGA margin are
//!   *multilinear* in (applications, lifetime, volume): degree ≤ 1 in each
//!   axis (see [`CompiledScenario::totals_affine`]), so over a box the
//!   minimum sits at a vertex. The solver kernel-evaluates all `2^k ≤ 8`
//!   vertices and keeps the best — O(1) evaluations, exact. Budget
//!   objectives invert the PR 2 affine algebra in closed form and verify
//!   the integer boundary with the same shared walk the crossover
//!   searches use (the `analytic` module).
//! * **Search** — ratio objectives and any constrained problem fall back
//!   to deterministic coordinate descent: per-axis dense sweeps batched
//!   through the SoA kernel (and thereby the `exec` worker pool), then
//!   golden-section (continuous axes) or unit-step walk (integer axes)
//!   refinement to the requested tolerance. Results are independent of
//!   the engine's `eval_threads` by construction, because batch results
//!   are written by index.
//!
//! Every solve reports a [`CertificateProbe`] list: one-sided kernel
//! probes one step inward from the argmin along each searched axis,
//! proving local optimality (`delta ≥ 0` up to rounding) without trusting
//! the solver's own arithmetic.

use crate::analytic::verify_integer_boundary;
use crate::{
    CompiledScenario, GreenFpgaError, OperatingPoint, PlatformComparison, PlatformKind,
    ResultBuffer, SweepAxis,
};

/// The platform whose totals a scalar objective or budget cap reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OptPlatform {
    /// The FPGA-based platform (the wire default).
    #[default]
    Fpga,
    /// The ASIC-based platform.
    Asic,
}

impl OptPlatform {
    /// The named platform's total footprint in kg CO₂e.
    pub fn total_kg(self, comparison: &PlatformComparison) -> f64 {
        match self {
            OptPlatform::Fpga => comparison.fpga.total().as_kg(),
            OptPlatform::Asic => comparison.asic.total().as_kg(),
        }
    }
}

/// What the optimizer solves for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// Minimize a platform's total CO₂e.
    MinTotal(OptPlatform),
    /// Minimize a platform's operational CO₂e.
    MinOperational(OptPlatform),
    /// Minimize a platform's embodied CO₂e (total − operation − app-dev).
    MinEmbodied(OptPlatform),
    /// Maximize the FPGA-vs-ASIC margin `asic − fpga` (equivalently,
    /// minimize `fpga − asic`).
    MaxFpgaMargin,
    /// Minimize the FPGA:ASIC total ratio — non-affine, so always the
    /// search tier.
    MinRatio,
    /// Maximize the single searched knob subject to the platform's total
    /// staying at or under `budget_kg`. Requires exactly one search knob
    /// and no constraints; an unreachable budget is a model error
    /// ([`GreenFpgaError::Infeasible`]).
    MeetBudget {
        /// The platform whose total the budget caps.
        platform: OptPlatform,
        /// The carbon budget in kg CO₂e.
        budget_kg: f64,
    },
}

impl Objective {
    /// The scalar this objective minimizes, read off one kernel
    /// comparison. For [`Objective::MeetBudget`] this is the capped
    /// platform total (what the budget bounds, and what probes report).
    pub fn scalar(&self, comparison: &PlatformComparison) -> f64 {
        match *self {
            Objective::MinTotal(platform) => platform.total_kg(comparison),
            Objective::MinOperational(platform) => match platform {
                OptPlatform::Fpga => comparison.fpga.operation.as_kg(),
                OptPlatform::Asic => comparison.asic.operation.as_kg(),
            },
            Objective::MinEmbodied(platform) => match platform {
                OptPlatform::Fpga => {
                    (comparison.fpga.total() - comparison.fpga.operation - comparison.fpga.app_dev)
                        .as_kg()
                }
                OptPlatform::Asic => {
                    (comparison.asic.total() - comparison.asic.operation - comparison.asic.app_dev)
                        .as_kg()
                }
            },
            Objective::MaxFpgaMargin => {
                comparison.fpga.total().as_kg() - comparison.asic.total().as_kg()
            }
            Objective::MinRatio => comparison.fpga_to_asic_ratio(),
            Objective::MeetBudget { platform, .. } => platform.total_kg(comparison),
        }
    }

    /// Whether the minimized scalar is multilinear in the workload axes
    /// (degree ≤ 1 in each of applications, lifetime, volume), making the
    /// box-vertex enumeration exact.
    fn is_multilinear(&self) -> bool {
        !matches!(self, Objective::MinRatio | Objective::MeetBudget { .. })
    }
}

/// One searched workload axis with its box bounds.
///
/// Applications and volume are integer quantities in the model, so those
/// axes are always searched on the integer lattice regardless of the
/// `integer` flag; `integer` additionally snaps the lifetime axis to whole
/// years when set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchKnob {
    /// The workload axis to search.
    pub axis: SweepAxis,
    /// Lower bound (inclusive).
    pub min: f64,
    /// Upper bound (inclusive).
    pub max: f64,
    /// Restrict the axis to integer values (implied for applications and
    /// volume).
    pub integer: bool,
}

impl SearchKnob {
    /// Whether this knob searches the integer lattice — explicit flag or
    /// an inherently integer axis.
    pub fn effective_integer(&self) -> bool {
        self.integer || !matches!(self.axis, SweepAxis::LifetimeYears)
    }
}

/// A feasibility constraint carving the searched box. Any constraint
/// forces the search tier (the analytic vertex argument only holds for
/// unconstrained boxes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Constraint {
    /// The FPGA must be the strictly greener platform (ties go to the
    /// ASIC, as everywhere in the model).
    FpgaWins,
    /// A platform's total must stay at or under a cap.
    MaxTotalKg {
        /// The platform whose total is capped.
        platform: OptPlatform,
        /// The cap in kg CO₂e.
        limit_kg: f64,
    },
}

impl Constraint {
    /// Whether a kernel comparison satisfies this constraint.
    pub fn satisfied(&self, comparison: &PlatformComparison) -> bool {
        match *self {
            Constraint::FpgaWins => comparison.winner() == PlatformKind::Fpga,
            Constraint::MaxTotalKg { platform, limit_kg } => {
                platform.total_kg(comparison) <= limit_kg
            }
        }
    }
}

/// Which solver tier produced a result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolverKind {
    /// Closed-form via the affine algebra: vertex enumeration or budget
    /// root, O(1) kernel evaluations.
    Analytic,
    /// Coordinate sweep + golden-section / integer-walk refinement.
    Search,
}

impl std::fmt::Display for SolverKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SolverKind::Analytic => "analytic",
            SolverKind::Search => "search",
        })
    }
}

/// One local-optimality probe: the kernel objective one step from the
/// argmin along one searched axis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CertificateProbe {
    /// The probed axis.
    pub axis: SweepAxis,
    /// The probed knob value (argmin ± one step, inside the bounds).
    pub at: f64,
    /// The objective scalar at the probe (for budget objectives, the
    /// capped platform total).
    pub objective: f64,
    /// `objective(probe) − objective(argmin)` — non-negative (up to
    /// rounding) proves the argmin is locally optimal along this axis.
    /// For budget objectives, `total(probe) − budget_kg` — positive
    /// proves the knob cannot grow further.
    pub delta: f64,
}

/// The solved optimum: the argmin operating point, its kernel comparison,
/// and the evidence trail.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeOutcome {
    /// The argmin operating point (base point with the searched axes
    /// replaced).
    pub point: OperatingPoint,
    /// The achieved objective scalar, from the kernel at `point`.
    pub objective: f64,
    /// The kernel comparison at `point`.
    pub comparison: PlatformComparison,
    /// Kernel evaluations spent (including certificate probes).
    pub evaluations: u64,
    /// Which tier solved it.
    pub solver: SolverKind,
    /// Per-axis one-sided local-optimality probes.
    pub certificate: Vec<CertificateProbe>,
}

/// Per-axis coarse samples in the search tier's coordinate sweep.
const SWEEP_SAMPLES: usize = 17;
/// Coordinate-descent pass cap in the search tier.
const MAX_PASSES: usize = 6;
/// Golden ratio conjugate for section search.
const INV_PHI: f64 = 0.618_033_988_749_894_9;

impl CompiledScenario {
    /// Solves an inverse query over this scenario: minimizes `objective`
    /// (or satisfies its budget) over the box the `search` knobs span
    /// around `base`, subject to `constraints`.
    ///
    /// Affine-expressible problems (multilinear objective, no
    /// constraints) solve exactly in O(1) kernel evaluations; everything
    /// else runs deterministic coordinate descent to `tolerance`,
    /// spending at most `max_evals` kernel evaluations. `threads` sizes
    /// the batch-kernel fan-out of the sweep stages; the result is
    /// bit-identical for every thread count.
    ///
    /// # Errors
    ///
    /// Returns [`GreenFpgaError::InvalidApplication`] for a malformed
    /// search box or objective configuration,
    /// [`GreenFpgaError::Infeasible`] when no point in the box satisfies
    /// the budget or constraints, and propagates kernel evaluation
    /// errors.
    // The seven knobs of an inverse query plus `&self` — a parameter
    // object would just restate `OptimizeRequest` inside the core crate.
    #[allow(clippy::too_many_arguments)]
    pub fn optimize(
        &self,
        base: OperatingPoint,
        objective: &Objective,
        search: &[SearchKnob],
        constraints: &[Constraint],
        tolerance: f64,
        max_evals: u64,
        threads: usize,
    ) -> Result<OptimizeOutcome, GreenFpgaError> {
        let bounds = validate_search(search)?;
        if !tolerance.is_finite() || tolerance <= 0.0 {
            return Err(invalid(
                "tolerance",
                "tolerance must be positive and finite",
            ));
        }
        if max_evals == 0 {
            return Err(invalid("max_evals", "max_evals must be at least 1"));
        }
        for constraint in constraints {
            if let Constraint::MaxTotalKg { limit_kg, .. } = constraint {
                if !limit_kg.is_finite() || *limit_kg <= 0.0 {
                    return Err(invalid(
                        "constraints",
                        "limit_kg must be positive and finite",
                    ));
                }
            }
        }
        let mut solver = Solver {
            compiled: self,
            base,
            bounds,
            constraints,
            tolerance,
            max_evals,
            threads,
            evals: 0,
            buffer: ResultBuffer::new(),
        };
        match objective {
            Objective::MeetBudget {
                platform,
                budget_kg,
            } => solver.solve_budget(*platform, *budget_kg, objective),
            _ if objective.is_multilinear() && constraints.is_empty() => {
                solver.solve_vertices(objective)
            }
            _ => solver.solve_search(objective),
        }
    }
}

/// A validated search bound: integer-snapped where the axis demands it.
#[derive(Debug, Clone, Copy)]
struct Bound {
    axis: SweepAxis,
    lo: f64,
    hi: f64,
    integer: bool,
}

impl Bound {
    fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Snaps a value onto the knob's lattice and into its bounds.
    fn clamp(&self, value: f64) -> f64 {
        let v = if self.integer { value.round() } else { value };
        v.clamp(self.lo, self.hi)
    }
}

fn invalid(field: &'static str, reason: impl Into<String>) -> GreenFpgaError {
    GreenFpgaError::InvalidApplication {
        field,
        reason: reason.into(),
    }
}

fn validate_search(search: &[SearchKnob]) -> Result<Vec<Bound>, GreenFpgaError> {
    if search.is_empty() || search.len() > 3 {
        return Err(invalid(
            "search",
            format!("expected 1 to 3 search knobs, got {}", search.len()),
        ));
    }
    let mut bounds = Vec::with_capacity(search.len());
    for knob in search {
        if bounds.iter().any(|b: &Bound| b.axis == knob.axis) {
            return Err(invalid("search", "each axis may be searched at most once"));
        }
        if !knob.min.is_finite() || !knob.max.is_finite() || knob.max < knob.min {
            return Err(invalid(
                "search",
                format!(
                    "knob bounds must be finite with max >= min, got [{}, {}]",
                    knob.min, knob.max
                ),
            ));
        }
        let floor = match knob.axis {
            SweepAxis::Applications | SweepAxis::VolumeUnits => 1.0,
            SweepAxis::LifetimeYears => f64::MIN_POSITIVE,
        };
        if knob.min < floor {
            return Err(invalid(
                "search",
                match knob.axis {
                    SweepAxis::Applications => "applications bounds must start at 1 or above",
                    SweepAxis::VolumeUnits => "volume bounds must start at 1 or above",
                    SweepAxis::LifetimeYears => "lifetime bounds must be positive",
                },
            ));
        }
        let integer = knob.effective_integer();
        let (lo, hi) = if integer {
            (knob.min.ceil(), knob.max.floor())
        } else {
            (knob.min, knob.max)
        };
        if hi < lo {
            return Err(invalid(
                "search",
                format!(
                    "integer knob bounds [{}, {}] contain no lattice point",
                    knob.min, knob.max
                ),
            ));
        }
        bounds.push(Bound {
            axis: knob.axis,
            lo,
            hi,
            integer,
        });
    }
    Ok(bounds)
}

/// Reads an axis value off an operating point as an `f64`.
pub fn axis_value(point: OperatingPoint, axis: SweepAxis) -> f64 {
    match axis {
        SweepAxis::Applications => point.applications as f64,
        SweepAxis::LifetimeYears => point.lifetime_years,
        SweepAxis::VolumeUnits => point.volume as f64,
    }
}

/// Overrides one axis of an operating point.
fn set_axis(mut point: OperatingPoint, axis: SweepAxis, value: f64) -> OperatingPoint {
    match axis {
        SweepAxis::Applications => point.applications = value as u64,
        SweepAxis::LifetimeYears => point.lifetime_years = value,
        SweepAxis::VolumeUnits => point.volume = value as u64,
    }
    point
}

struct Solver<'a> {
    compiled: &'a CompiledScenario,
    base: OperatingPoint,
    bounds: Vec<Bound>,
    constraints: &'a [Constraint],
    tolerance: f64,
    max_evals: u64,
    threads: usize,
    evals: u64,
    buffer: ResultBuffer,
}

impl Solver<'_> {
    fn point_at(&self, values: &[f64]) -> OperatingPoint {
        let mut point = self.base;
        for (bound, &value) in self.bounds.iter().zip(values) {
            point = set_axis(point, bound.axis, value);
        }
        point
    }

    /// One counted kernel evaluation.
    fn eval(&mut self, values: &[f64]) -> Result<PlatformComparison, GreenFpgaError> {
        self.evals += 1;
        self.compiled.evaluate(self.point_at(values))
    }

    /// A counted batch of kernel evaluations through the SoA kernel (and
    /// the exec pool when `threads > 1`); results land by index, so the
    /// outcome is identical for every thread count.
    fn eval_batch(
        &mut self,
        points: &[OperatingPoint],
    ) -> Result<Vec<PlatformComparison>, GreenFpgaError> {
        self.evals += points.len() as u64;
        let mut buffer = std::mem::take(&mut self.buffer);
        let result = self.compiled.evaluate_indexed_into(
            points.len(),
            |i| points[i],
            &mut buffer,
            self.threads,
        );
        let comparisons = result.map(|()| buffer.comparisons().collect());
        self.buffer = buffer;
        comparisons
    }

    fn feasible(&self, comparison: &PlatformComparison) -> bool {
        self.constraints.iter().all(|c| c.satisfied(comparison))
    }

    fn budget_left(&self) -> u64 {
        self.max_evals.saturating_sub(self.evals)
    }

    // -- analytic tier: vertex enumeration ------------------------------

    /// Exact argmin of a multilinear objective over the box: the minimum
    /// of a function that is degree ≤ 1 in each coordinate is attained at
    /// a vertex, so kernel-evaluate all of them (≤ 8) and keep the best.
    /// Ties keep the lexicographically smallest vertex, matching a dense
    /// sweep scanned in ascending axis order.
    fn solve_vertices(&mut self, objective: &Objective) -> Result<OptimizeOutcome, GreenFpgaError> {
        let axes: Vec<Vec<f64>> = self
            .bounds
            .iter()
            .map(|b| {
                if b.lo == b.hi {
                    vec![b.lo]
                } else {
                    vec![b.lo, b.hi]
                }
            })
            .collect();
        let mut best: Option<(Vec<f64>, f64, PlatformComparison)> = None;
        let mut vertex = vec![0usize; axes.len()];
        loop {
            let values: Vec<f64> = vertex
                .iter()
                .zip(&axes)
                .map(|(&i, choices)| choices[i])
                .collect();
            let comparison = self.eval(&values)?;
            let scalar = objective.scalar(&comparison);
            if best.as_ref().is_none_or(|(_, s, _)| scalar < *s) {
                best = Some((values, scalar, comparison));
            }
            // Advance the odometer, last axis fastest — lexicographic
            // ascending order over the vertices.
            let mut carry = true;
            for (digit, choices) in vertex.iter_mut().zip(&axes).rev() {
                if !carry {
                    break;
                }
                *digit += 1;
                if *digit < choices.len() {
                    carry = false;
                } else {
                    *digit = 0;
                }
            }
            if carry {
                break;
            }
        }
        let (values, scalar, comparison) =
            best.expect("vertex enumeration visits at least one point");
        self.finish(objective, values, scalar, comparison, SolverKind::Analytic)
    }

    // -- analytic tier: budget inversion --------------------------------

    /// Closed-form budget solve on one axis: the platform total is affine
    /// in the searched knob, so the feasibility boundary is the root of
    /// `total(x) = budget`, kernel-verified (for integer axes via the
    /// shared boundary walk the crossover searches use).
    fn solve_budget(
        &mut self,
        platform: OptPlatform,
        budget_kg: f64,
        objective: &Objective,
    ) -> Result<OptimizeOutcome, GreenFpgaError> {
        if self.bounds.len() != 1 {
            return Err(invalid(
                "objective",
                "a budget objective searches exactly one knob",
            ));
        }
        if !self.constraints.is_empty() {
            return Err(invalid(
                "objective",
                "a budget objective takes no extra constraints",
            ));
        }
        if !budget_kg.is_finite() || budget_kg <= 0.0 {
            return Err(invalid(
                "objective",
                "budget_kg must be positive and finite",
            ));
        }
        let bound = self.bounds[0];
        let total_at = |solver: &mut Self, x: f64| -> Result<f64, GreenFpgaError> {
            let comparison = solver.eval(&[x])?;
            Ok(platform.total_kg(&comparison))
        };
        let lo_total = total_at(self, bound.lo)?;
        let hi_total = total_at(self, bound.hi)?;
        let affine = self.compiled.totals_affine(bound.axis, self.base);
        let line = match platform {
            OptPlatform::Fpga => affine.fpga,
            OptPlatform::Asic => affine.asic,
        };
        let infeasible = || GreenFpgaError::Infeasible {
            reason: format!(
                "the {} kg CO2e budget is exceeded everywhere in [{}, {}] \
                 (total spans [{:.3}, {:.3}] kg)",
                budget_kg,
                bound.lo,
                bound.hi,
                lo_total.min(hi_total),
                lo_total.max(hi_total)
            ),
        };
        let best = if hi_total <= budget_kg {
            // The largest knob value is already under budget.
            bound.hi
        } else if lo_total > budget_kg {
            // Totals are monotone along the axis; both ends over budget
            // means everywhere over budget.
            if lo_total.min(hi_total) > budget_kg {
                return Err(infeasible());
            }
            bound.lo
        } else {
            // Rising total crosses the budget inside the box: invert the
            // affine line and verify against the kernel.
            let root = if line.slope_kg != 0.0 {
                (budget_kg - line.intercept_kg) / line.slope_kg
            } else {
                bound.hi
            };
            if bound.integer {
                let over =
                    verify_integer_boundary(Some(root), bound.lo as u64, bound.hi as u64, |x| {
                        let comparison = self.eval(&[x as f64])?;
                        Ok(platform.total_kg(&comparison) > budget_kg)
                    })?;
                match over {
                    // The first over-budget integer; the answer sits one
                    // below it (>= lo, because lo itself was feasible).
                    Some(first_over) => (first_over - 1) as f64,
                    None => bound.hi,
                }
            } else {
                // Kernel-verify the real root; the affine model and the
                // kernel agree to ~1e-9, so at most a few nudges.
                let mut x = root.clamp(bound.lo, bound.hi);
                let step = (self.tolerance * bound.width()).max(f64::EPSILON * bound.hi.abs());
                let mut guard = 0;
                while total_at(self, x)? > budget_kg && guard < 64 {
                    x = (x - step).max(bound.lo);
                    guard += 1;
                }
                x
            }
        };
        let comparison = self.eval(&[best])?;
        let achieved = platform.total_kg(&comparison);
        if achieved > budget_kg {
            return Err(infeasible());
        }
        // Certificate: probe one step up — either the bound blocks, or
        // the kernel proves the next step busts the budget.
        let mut certificate = Vec::new();
        let step = if bound.integer {
            1.0
        } else {
            (self.tolerance * bound.width()).max(f64::EPSILON * bound.hi.abs())
        };
        let probe_at = best + step;
        if probe_at <= bound.hi {
            let probe_total = total_at(self, probe_at)?;
            certificate.push(CertificateProbe {
                axis: bound.axis,
                at: probe_at,
                objective: probe_total,
                delta: probe_total - budget_kg,
            });
        }
        Ok(OptimizeOutcome {
            point: self.point_at(&[best]),
            objective: objective.scalar(&comparison),
            comparison,
            evaluations: self.evals,
            solver: SolverKind::Analytic,
            certificate,
        })
    }

    // -- search tier: coordinate descent --------------------------------

    fn solve_search(&mut self, objective: &Objective) -> Result<OptimizeOutcome, GreenFpgaError> {
        // Seed: full-factorial coarse lattice, batched through the SoA
        // kernel. Feasibility is read off the same comparisons — no extra
        // evaluations.
        let mut per_axis = match self.bounds.len() {
            1 => SWEEP_SAMPLES,
            2 => 7,
            _ => 5,
        };
        // A tight eval budget shrinks the coarse lattice before anything
        // is evaluated: `max_evals` is a ceiling, not a target.
        let budget = self.budget_left() as usize;
        while per_axis > 2 && per_axis.pow(self.bounds.len() as u32) > budget {
            per_axis -= 1;
        }
        let axes: Vec<Vec<f64>> = self.bounds.iter().map(|b| lattice(b, per_axis)).collect();
        let mut grid = Vec::new();
        let mut index = vec![0usize; axes.len()];
        loop {
            grid.push(
                index
                    .iter()
                    .zip(&axes)
                    .map(|(&i, values)| values[i])
                    .collect::<Vec<f64>>(),
            );
            let mut carry = true;
            for (digit, values) in index.iter_mut().zip(&axes).rev() {
                if !carry {
                    break;
                }
                *digit += 1;
                if *digit < values.len() {
                    carry = false;
                } else {
                    *digit = 0;
                }
            }
            if carry {
                break;
            }
        }
        grid.truncate(budget.max(1));
        let points: Vec<OperatingPoint> = grid.iter().map(|v| self.point_at(v)).collect();
        let comparisons = self.eval_batch(&points)?;
        let mut best: Option<(Vec<f64>, f64, PlatformComparison)> = None;
        for (values, comparison) in grid.iter().zip(&comparisons) {
            if !self.feasible(comparison) {
                continue;
            }
            let scalar = objective.scalar(comparison);
            if best.as_ref().is_none_or(|(_, s, _)| scalar < *s) {
                best = Some((values.clone(), scalar, *comparison));
            }
        }
        let Some((mut best_values, mut best_scalar, mut best_comparison)) = best else {
            return Err(GreenFpgaError::Infeasible {
                reason: format!(
                    "no point in the searched box satisfies the constraints \
                     ({} lattice points probed)",
                    grid.len()
                ),
            });
        };

        // Coordinate-descent passes: per axis, a dense 1-D sweep then a
        // refinement stage, until a full pass stops improving.
        for _ in 0..MAX_PASSES {
            let pass_start = best_scalar;
            for k in 0..self.bounds.len() {
                if self.budget_left() == 0 {
                    break;
                }
                let bound = self.bounds[k];
                let mut samples = lattice(&bound, SWEEP_SAMPLES.min(self.budget_left() as usize));
                samples.truncate(self.budget_left() as usize);
                if samples.is_empty() {
                    continue;
                }
                let points: Vec<OperatingPoint> = samples
                    .iter()
                    .map(|&x| {
                        let mut values = best_values.clone();
                        values[k] = x;
                        self.point_at(&values)
                    })
                    .collect();
                let comparisons = self.eval_batch(&points)?;
                let mut sample_best: Option<usize> = None;
                for (i, comparison) in comparisons.iter().enumerate() {
                    if !self.feasible(comparison) {
                        continue;
                    }
                    let scalar = objective.scalar(comparison);
                    let better = match sample_best {
                        None => scalar < best_scalar,
                        Some(j) => scalar < objective.scalar(&comparisons[j]),
                    };
                    if better {
                        sample_best = Some(i);
                    }
                }
                if let Some(i) = sample_best {
                    best_values[k] = samples[i];
                    best_scalar = objective.scalar(&comparisons[i]);
                    best_comparison = comparisons[i];
                    // Refine inside the bracket around the winning sample.
                    let lo = if i > 0 { samples[i - 1] } else { bound.lo };
                    let hi = if i + 1 < samples.len() {
                        samples[i + 1]
                    } else {
                        bound.hi
                    };
                    self.refine(
                        objective,
                        k,
                        lo,
                        hi,
                        &mut best_values,
                        &mut best_scalar,
                        &mut best_comparison,
                    )?;
                }
            }
            let improvement = pass_start - best_scalar;
            if improvement <= self.tolerance * best_scalar.abs().max(1.0) * 1e-3
                || self.budget_left() == 0
            {
                break;
            }
        }
        self.finish(
            objective,
            best_values,
            best_scalar,
            best_comparison,
            SolverKind::Search,
        )
    }

    /// Refines one axis inside `[lo, hi]`: golden-section for continuous
    /// knobs, unit-step walk for integer knobs. Stamped as an
    /// `optimize_refine` span (`aux` = kernel evaluations spent).
    #[allow(clippy::too_many_arguments)]
    fn refine(
        &mut self,
        objective: &Objective,
        k: usize,
        lo: f64,
        hi: f64,
        best_values: &mut Vec<f64>,
        best_scalar: &mut f64,
        best_comparison: &mut PlatformComparison,
    ) -> Result<(), GreenFpgaError> {
        let traced = gf_trace::enabled();
        let start = if traced { gf_trace::now_ticks() } else { 0 };
        let evals_before = self.evals;
        let bound = self.bounds[k];
        let try_value = |solver: &mut Self,
                         x: f64,
                         best_values: &mut Vec<f64>,
                         best_scalar: &mut f64,
                         best_comparison: &mut PlatformComparison|
         -> Result<f64, GreenFpgaError> {
            let mut values = best_values.clone();
            values[k] = x;
            let comparison = solver.eval(&values)?;
            let scalar = if solver.feasible(&comparison) {
                objective.scalar(&comparison)
            } else {
                f64::INFINITY
            };
            if scalar < *best_scalar {
                *best_scalar = scalar;
                *best_values = values;
                *best_comparison = comparison;
            }
            Ok(scalar)
        };
        if bound.integer {
            // Unit-step walk from the current best in both directions.
            for direction in [-1.0, 1.0] {
                loop {
                    let next = best_values[k] + direction;
                    if next < lo || next > hi || self.budget_left() == 0 {
                        break;
                    }
                    let before = *best_scalar;
                    try_value(self, next, best_values, best_scalar, best_comparison)?;
                    if *best_scalar >= before {
                        break;
                    }
                }
            }
        } else {
            let (mut a, mut b) = (lo, hi);
            let width_tol = (self.tolerance * bound.width()).max(f64::EPSILON);
            let mut c = b - INV_PHI * (b - a);
            let mut d = a + INV_PHI * (b - a);
            let mut fc = f64::INFINITY;
            let mut fd = f64::INFINITY;
            if self.budget_left() > 0 {
                fc = try_value(self, c, best_values, best_scalar, best_comparison)?;
            }
            if self.budget_left() > 0 {
                fd = try_value(self, d, best_values, best_scalar, best_comparison)?;
            }
            while (b - a) > width_tol && self.budget_left() > 0 {
                if fc < fd {
                    b = d;
                    d = c;
                    fd = fc;
                    c = b - INV_PHI * (b - a);
                    fc = try_value(self, c, best_values, best_scalar, best_comparison)?;
                } else {
                    a = c;
                    c = d;
                    fc = fd;
                    d = a + INV_PHI * (b - a);
                    fd = try_value(self, d, best_values, best_scalar, best_comparison)?;
                }
            }
        }
        if traced {
            let end = gf_trace::now_ticks();
            gf_trace::record_span_at(
                gf_trace::SpanName::OptimizeRefine,
                start,
                end.saturating_sub(start),
                self.evals - evals_before,
            );
        }
        Ok(())
    }

    /// Seals a solve: certificate probes one step inward along every axis,
    /// then the outcome.
    fn finish(
        &mut self,
        objective: &Objective,
        best_values: Vec<f64>,
        best_scalar: f64,
        best_comparison: PlatformComparison,
        solver: SolverKind,
    ) -> Result<OptimizeOutcome, GreenFpgaError> {
        let mut certificate = Vec::new();
        for (k, bound) in self.bounds.clone().iter().enumerate() {
            let step = if bound.integer {
                1.0
            } else {
                (self.tolerance * bound.width()).max(f64::EPSILON * bound.hi.abs())
            };
            for direction in [-1.0, 1.0] {
                if self.budget_left() == 0 {
                    break; // Probes count as evaluations; the cap is hard.
                }
                let at = best_values[k] + direction * step;
                if at < bound.lo || at > bound.hi {
                    continue; // The bound itself blocks this direction.
                }
                let mut values = best_values.clone();
                values[k] = at;
                let comparison = self.eval(&values)?;
                if !self.feasible(&comparison) {
                    continue; // A constraint blocks this direction.
                }
                let probe = objective.scalar(&comparison);
                certificate.push(CertificateProbe {
                    axis: bound.axis,
                    at,
                    objective: probe,
                    delta: probe - best_scalar,
                });
            }
        }
        Ok(OptimizeOutcome {
            point: self.point_at(&best_values),
            objective: best_scalar,
            comparison: best_comparison,
            evaluations: self.evals,
            solver,
            certificate,
        })
    }
}

/// Evenly spaced samples over a bound — deduplicated lattice values for
/// integer knobs, always including both endpoints.
fn lattice(bound: &Bound, samples: usize) -> Vec<f64> {
    let samples = samples.max(2);
    if bound.lo == bound.hi {
        return vec![bound.lo];
    }
    let mut values = Vec::with_capacity(samples);
    for i in 0..samples {
        let t = i as f64 / (samples - 1) as f64;
        let x = bound.clamp(bound.lo + t * (bound.hi - bound.lo));
        if values.last() != Some(&x) {
            values.push(x);
        }
    }
    values
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Domain, Estimator};

    fn compiled(domain: Domain) -> CompiledScenario {
        Estimator::default().compile(domain).unwrap()
    }

    fn base() -> OperatingPoint {
        OperatingPoint::paper_default()
    }

    fn knob(axis: SweepAxis, min: f64, max: f64) -> SearchKnob {
        SearchKnob {
            axis,
            min,
            max,
            integer: false,
        }
    }

    #[test]
    fn vertex_argmin_matches_dense_sweep() {
        let scenario = compiled(Domain::Dnn);
        let search = [
            knob(SweepAxis::Applications, 1.0, 12.0),
            knob(SweepAxis::LifetimeYears, 0.5, 4.0),
        ];
        let outcome = scenario
            .optimize(
                base(),
                &Objective::MinTotal(OptPlatform::Fpga),
                &search,
                &[],
                1e-6,
                10_000,
                1,
            )
            .unwrap();
        assert_eq!(outcome.solver, SolverKind::Analytic);
        // Dense oracle over the same box.
        let mut best: Option<(f64, f64, f64)> = None;
        for apps in 1..=12u64 {
            for step in 0..=64 {
                let years = 0.5 + (4.0 - 0.5) * step as f64 / 64.0;
                let point = OperatingPoint {
                    applications: apps,
                    lifetime_years: years,
                    ..base()
                };
                let total = scenario.evaluate(point).unwrap().fpga.total().as_kg();
                if best.is_none_or(|(_, _, b)| total < b) {
                    best = Some((apps as f64, years, total));
                }
            }
        }
        let (apps, years, total) = best.unwrap();
        assert_eq!(outcome.point.applications as f64, apps);
        assert_eq!(outcome.point.lifetime_years.to_bits(), years.to_bits());
        assert_eq!(outcome.objective.to_bits(), total.to_bits());
        assert!(outcome.evaluations <= 16, "{} evals", outcome.evaluations);
        for probe in &outcome.certificate {
            assert!(
                probe.delta >= -1e-9 * outcome.objective.abs(),
                "{probe:?} contradicts the argmin"
            );
        }
    }

    #[test]
    fn budget_objective_fills_the_budget() {
        let scenario = compiled(Domain::Dnn);
        let budget = scenario
            .evaluate(OperatingPoint {
                volume: 600_000,
                ..base()
            })
            .unwrap()
            .fpga
            .total()
            .as_kg();
        let outcome = scenario
            .optimize(
                base(),
                &Objective::MeetBudget {
                    platform: OptPlatform::Fpga,
                    budget_kg: budget,
                },
                &[knob(SweepAxis::VolumeUnits, 1_000.0, 2_000_000.0)],
                &[],
                1e-6,
                10_000,
                1,
            )
            .unwrap();
        assert_eq!(outcome.solver, SolverKind::Analytic);
        assert!(outcome.objective <= budget);
        // The boundary is exact: one more unit busts the budget.
        let over = scenario
            .evaluate(OperatingPoint {
                volume: outcome.point.volume + 1,
                ..base()
            })
            .unwrap()
            .fpga
            .total()
            .as_kg();
        assert!(
            over > budget,
            "volume {} is not maximal",
            outcome.point.volume
        );
        assert!(!outcome.certificate.is_empty());
        assert!(outcome.certificate[0].delta > 0.0);
    }

    #[test]
    fn unreachable_budget_is_infeasible() {
        let scenario = compiled(Domain::Dnn);
        let err = scenario
            .optimize(
                base(),
                &Objective::MeetBudget {
                    platform: OptPlatform::Fpga,
                    budget_kg: 1e-3,
                },
                &[knob(SweepAxis::VolumeUnits, 1_000.0, 2_000_000.0)],
                &[],
                1e-6,
                10_000,
                1,
            )
            .unwrap_err();
        assert!(matches!(err, GreenFpgaError::Infeasible { .. }), "{err}");
    }

    #[test]
    fn ratio_search_beats_every_lattice_point() {
        let scenario = compiled(Domain::Dnn);
        let search = [
            knob(SweepAxis::Applications, 1.0, 12.0),
            knob(SweepAxis::LifetimeYears, 0.25, 4.0),
        ];
        let outcome = scenario
            .optimize(base(), &Objective::MinRatio, &search, &[], 1e-6, 10_000, 1)
            .unwrap();
        assert_eq!(outcome.solver, SolverKind::Search);
        for apps in 1..=12u64 {
            for step in 0..=32 {
                let years = 0.25 + (4.0 - 0.25) * step as f64 / 32.0;
                let ratio = scenario
                    .evaluate(OperatingPoint {
                        applications: apps,
                        lifetime_years: years,
                        ..base()
                    })
                    .unwrap()
                    .fpga_to_asic_ratio();
                assert!(
                    outcome.objective <= ratio + 1e-6,
                    "lattice ({apps}, {years}) ratio {ratio} beats {}",
                    outcome.objective
                );
            }
        }
    }

    #[test]
    fn fpga_wins_constraint_restricts_the_argmin() {
        let scenario = compiled(Domain::Dnn);
        // Unconstrained, minimizing the FPGA total over applications pulls
        // to one application — where the ASIC wins. The constraint forces
        // the argmin into FPGA-winning territory.
        let outcome = scenario
            .optimize(
                base(),
                &Objective::MinTotal(OptPlatform::Fpga),
                &[knob(SweepAxis::Applications, 1.0, 20.0)],
                &[Constraint::FpgaWins],
                1e-6,
                10_000,
                1,
            )
            .unwrap();
        assert_eq!(outcome.solver, SolverKind::Search);
        assert_eq!(outcome.comparison.winner(), PlatformKind::Fpga);
        // It matches the first winning count the crossover search reports.
        let first_win = scenario
            .crossover_in_applications_verified(20, base().lifetime_years, base().volume)
            .unwrap()
            .expect("dnn crosses over within 20 applications");
        assert_eq!(outcome.point.applications, first_win);
    }

    #[test]
    fn impossible_constraint_is_infeasible() {
        let scenario = compiled(Domain::Dnn);
        let err = scenario
            .optimize(
                base(),
                &Objective::MinTotal(OptPlatform::Fpga),
                &[knob(SweepAxis::Applications, 1.0, 20.0)],
                &[Constraint::MaxTotalKg {
                    platform: OptPlatform::Fpga,
                    limit_kg: 1e-6,
                }],
                1e-6,
                10_000,
                1,
            )
            .unwrap_err();
        assert!(matches!(err, GreenFpgaError::Infeasible { .. }), "{err}");
    }

    #[test]
    fn search_is_thread_count_invariant() {
        let scenario = compiled(Domain::ImageProcessing);
        let search = [
            knob(SweepAxis::LifetimeYears, 0.25, 5.0),
            knob(SweepAxis::VolumeUnits, 1_000.0, 5_000_000.0),
        ];
        let solve = |threads: usize| {
            scenario
                .optimize(
                    base(),
                    &Objective::MinRatio,
                    &search,
                    &[],
                    1e-6,
                    10_000,
                    threads,
                )
                .unwrap()
        };
        let one = solve(1);
        for threads in [2, 8] {
            let other = solve(threads);
            assert_eq!(one.point, other.point, "threads {threads}");
            assert_eq!(
                one.objective.to_bits(),
                other.objective.to_bits(),
                "threads {threads}"
            );
            assert_eq!(one.evaluations, other.evaluations, "threads {threads}");
        }
    }

    #[test]
    fn validation_rejects_malformed_searches() {
        let scenario = compiled(Domain::Dnn);
        let minimize = Objective::MinTotal(OptPlatform::Fpga);
        for (search, what) in [
            (vec![], "empty"),
            (
                vec![
                    knob(SweepAxis::Applications, 1.0, 2.0),
                    knob(SweepAxis::Applications, 3.0, 4.0),
                ],
                "duplicate axis",
            ),
            (vec![knob(SweepAxis::Applications, 5.0, 2.0)], "inverted"),
            (vec![knob(SweepAxis::LifetimeYears, -1.0, 2.0)], "negative"),
            (vec![knob(SweepAxis::Applications, 1.2, 1.8)], "no lattice"),
        ] {
            let err = scenario
                .optimize(base(), &minimize, &search, &[], 1e-6, 10_000, 1)
                .unwrap_err();
            assert!(
                matches!(err, GreenFpgaError::InvalidApplication { .. }),
                "{what}: {err}"
            );
        }
        let err = scenario
            .optimize(
                base(),
                &minimize,
                &[knob(SweepAxis::Applications, 1.0, 2.0)],
                &[],
                0.0,
                10_000,
                1,
            )
            .unwrap_err();
        assert!(
            matches!(err, GreenFpgaError::InvalidApplication { .. }),
            "{err}"
        );
    }

    #[test]
    fn integer_lattice_deduplicates() {
        let bound = Bound {
            axis: SweepAxis::Applications,
            lo: 1.0,
            hi: 4.0,
            integer: true,
        };
        assert_eq!(lattice(&bound, 17), vec![1.0, 2.0, 3.0, 4.0]);
        let pinned = Bound {
            axis: SweepAxis::Applications,
            lo: 3.0,
            hi: 3.0,
            integer: true,
        };
        assert_eq!(lattice(&pinned, 17), vec![3.0]);
    }
}

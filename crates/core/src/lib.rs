//! # GreenFPGA
//!
//! A lifecycle carbon-footprint (CFP) model for FPGA- and ASIC-based
//! hardware acceleration, reproducing *"GreenFPGA: Evaluating FPGAs as
//! Environmentally Sustainable Computing Solutions"* (DAC 2024).
//!
//! The central question the tool answers: given that an FPGA at
//! iso-performance with an ASIC is bigger and hungrier (higher embodied and
//! operational carbon), when does its *reconfigurability* — one set of
//! chips serving many successive applications — make it the lower-carbon
//! platform?
//!
//! ## Model structure
//!
//! * Total ASIC footprint, Eq. (1): every application pays design,
//!   manufacturing, packaging, end-of-life *and* operation, because a new
//!   ASIC must be built per application.
//! * Total FPGA footprint, Eq. (2): the embodied cost is paid once; each
//!   application adds operation plus a (hardware) application-development
//!   overhead and per-device reconfiguration.
//! * Embodied CFP, Eq. (3): `C_des + N_vol·N_FPGA·(C_mfg + C_package +
//!   C_EOL)`, with `N_FPGA = ceil(appsize / FPGA capacity)`.
//!
//! The manufacturing/packaging substrate lives in [`gf_act`], the design /
//! end-of-life / application-development / operation models in
//! [`gf_lifecycle`]; this crate composes them into platform estimates,
//! comparisons, crossover searches, parameter sweeps and the paper's
//! experiment scenarios.
//!
//! ## Quick start
//!
//! ```
//! use greenfpga::{Domain, EstimatorParams, Estimator, Workload};
//!
//! // Compare FPGA vs ASIC for five successive DNN applications, each
//! // deployed on one million devices for two years.
//! let params = EstimatorParams::paper_defaults();
//! let estimator = Estimator::new(params);
//! let workload = Workload::uniform(Domain::Dnn, 5, 2.0, 1_000_000)?;
//! let comparison = estimator.compare_domain(&workload)?;
//!
//! println!("FPGA: {}", comparison.fpga.total());
//! println!("ASIC: {}", comparison.asic.total());
//! println!("FPGA:ASIC ratio = {:.2}", comparison.fpga_to_asic_ratio());
//! # Ok::<(), greenfpga::GreenFpgaError>(())
//! ```

// `deny`, not `forbid`: the one sanctioned exception is the `simd` module
// in `eval`, which needs a `#[target_feature]` call for the runtime-dispatched
// AVX2 kernel and scopes its own `#[allow(unsafe_code)]`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod analytic;
pub mod api;
mod application;
mod breakdown;
mod comparison;
mod device;
mod domain;
mod engine;
mod error;
mod estimator;
mod eval;
pub mod exec;
mod frontier;
mod knobs;
pub mod optimize;
mod params;
mod report;
mod scenario;
mod sensitivity;
mod sweep;
mod testcases;
mod uncertainty;

pub use analytic::{AffineComparison, AffineTotal};
pub use api::{
    BatchEvalRequest, BatchEvalResponse, CatalogEntryInfo, CatalogRequest, CatalogResponse,
    CompareRequest, CompareResponse, CrossoverRequest, CrossoverResponse, EvaluateRequest,
    EvaluateResponse, FrontierRequest, FrontierResponse, GridRequest, IndustryRequest,
    IndustryResponse, MonteCarloRequest, MonteCarloResponse, OptimizeRequest, OptimizeResponse,
    Outcome, Query, QueryKind, ReplayRequest, ReplayResponse, ScenarioRef, ScenarioRunRequest,
    ScenarioRunResponse, ScenarioSpec, SeriesRef, SweepRequest, TornadoRequest,
};
pub use application::{Application, Workload};
pub use breakdown::CfpBreakdown;
pub use comparison::{Crossover, CrossoverDirection, PlatformComparison, PlatformKind};
pub use device::{AsicSpec, ChipSpec, FpgaSpec};
pub use domain::{Domain, DomainCalibration, IsoPerformanceRatios};
pub use engine::{Engine, EngineConfig};
pub use error::{ApiError, ApiErrorCode, GreenFpgaError};
pub use estimator::Estimator;
pub use eval::{BatchRequest, CompiledPlatform, CompiledScenario, ResultBuffer, ScenarioTemplate};
pub use frontier::FrontierResult;
pub use knobs::{Knob, KnobRange};
pub use optimize::{
    CertificateProbe, Constraint, Objective, OptPlatform, OptimizeOutcome, SearchKnob, SolverKind,
};
pub use params::{DeploymentParams, DesignStaffing, EstimatorParams};
pub use report::{csv_from_rows, render_table, HeatmapRenderer};
pub use scenario::{
    catalog, catalog_entry, CarbonIntensitySeries, CatalogEntry, LongHorizonPoint,
    LongHorizonScenario, ReplayOutcome, Verdict, HOURS_PER_YEAR,
};
pub use sensitivity::{SensitivityEntry, TornadoAnalysis};
pub use sweep::{
    log_spaced_volumes, GridBlock, GridStream, GridSweep, OperatingPoint, SweepAxis, SweepPoint,
    SweepSeries,
};
pub use testcases::{
    industry_asic1, industry_asic2, industry_fpga1, industry_fpga2, IndustryScenario,
};
pub use uncertainty::{MonteCarlo, UncertaintyReport};

// Re-export the substrate crates so downstream users need only one
// dependency.
pub use gf_act as act;
pub use gf_lifecycle as lifecycle;
pub use gf_units as units;

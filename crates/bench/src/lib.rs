//! Shared helpers for the GreenFPGA experiment harness.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md for the index); the benches in `benches/` measure the
//! evaluation throughput of the model itself through the [`harness`]
//! mini-framework (the offline environment has no Criterion).

pub mod harness;

use greenfpga::{CfpBreakdown, Estimator, EstimatorParams};

/// Absolute floor for the `soa_speedup` metric, shared by the `bench eval`
/// assertion (simd builds) and `bench_gate`'s candidate check so the two
/// can never enforce different bars. The SIMD tile kernel turns the SoA
/// layout into a real vector win — 2.1–2.2x over the AoS collect path on
/// AVX2 — so the floor demands the speedup, not mere parity: a build that
/// silently drops back to scalar (broken feature wiring, a de-vectorized
/// kernel) fails the gate even when both paths got uniformly faster. CI
/// produces the gated artifact with `--features simd`; the branchless
/// portable fallback clears ~1.5x and is not held to this bar.
pub const SOA_SPEEDUP_FLOOR: f64 = 2.0;

/// Absolute floor for the `serve_connections` soak metric: the event-loop
/// server must demonstrably hold at least this many concurrently-live,
/// individually re-verified keep-alive connections while serving active
/// traffic. Checked by `bench_gate` on the candidate whenever the key is
/// present, so a regression to thread-per-connection scaling (or an fd
/// leak that starves the soak) cannot ride in behind a stale baseline.
/// `serve_load` runs the soak at `GF_SERVE_SOAK_CONNECTIONS` (default
/// 4096, matching this floor); smoke runs at reduced counts should write
/// to a separate artifact rather than lower the floor.
pub const SERVE_CONNECTIONS_FLOOR: f64 = 4096.0;

/// Absolute floor for the `trace_overhead` metric: serve throughput with
/// tracing enabled divided by throughput with tracing disabled, measured
/// by `serve_load` as interleaved best-of passes on the same machine and
/// therefore machine-independent. Tracing is on by default, so its cost is
/// paid by every production request — the floor caps that cost at 3%. A
/// change that puts a lock, an allocation, or an unconditional syscall on
/// the span path shows up here as a ratio well under the floor even when
/// absolute throughput still clears `serve_rps` against a stale baseline.
pub const TRACE_OVERHEAD_FLOOR: f64 = 0.97;

/// Builds the estimator every experiment binary uses: the paper-calibrated
/// defaults. Override knobs inside individual binaries where an experiment
/// calls for it.
pub fn paper_estimator() -> Estimator {
    Estimator::new(EstimatorParams::paper_defaults())
}

/// Formats a breakdown as `total (EC embodied / OC deployment)` in tons,
/// the unit the paper's figures use.
pub fn format_ec_oc(breakdown: &CfpBreakdown) -> String {
    format!(
        "{:>12.1} t (EC {:>12.1} t / OC {:>12.1} t)",
        breakdown.total().as_tons(),
        breakdown.embodied().as_tons(),
        breakdown.deployment().as_tons()
    )
}

/// Formats kilograms as tons with one decimal, for table cells.
pub fn tons(kg: f64) -> String {
    format!("{:.1}", kg / 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf_units::Carbon;

    #[test]
    fn format_ec_oc_reports_tons() {
        let b = CfpBreakdown {
            manufacturing: Carbon::from_tons(2.0),
            operation: Carbon::from_tons(1.0),
            ..CfpBreakdown::ZERO
        };
        let s = format_ec_oc(&b);
        assert!(s.contains("3.0 t"));
        assert!(s.contains("EC"));
        assert!(s.contains("OC"));
    }

    #[test]
    fn tons_formats_kilograms() {
        assert_eq!(tons(2500.0), "2.5");
    }

    #[test]
    fn paper_estimator_uses_paper_defaults() {
        assert_eq!(
            paper_estimator().params(),
            &EstimatorParams::paper_defaults()
        );
    }
}

//! The span clock.
//!
//! Recording a span costs, above all, its clock reads: on the
//! virtualized hosts this code serves from, an `Instant`-based
//! nanosecond read costs ~45ns while a raw TSC read costs ~20ns, and
//! the serving hot path takes several reads per request. So the hot
//! side of the API, [`now_ticks`], returns *raw ticks* — timestamp
//! counter reads on x86_64, `Instant`-derived nanoseconds elsewhere —
//! and the tick→nanosecond conversion happens only on the cold
//! exposition side ([`Scale`]), where one calibration pair per
//! snapshot amortizes to nothing.
//!
//! This is the one module in the crate allowed `unsafe` (the single
//! `_rdtsc` intrinsic call, which has no memory-safety preconditions),
//! mirroring how the server confines its raw epoll syscalls to one
//! `sys` module.

use std::sync::OnceLock;
use std::time::Instant;

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod imp {
    /// Whether ticks are already nanoseconds (no conversion needed).
    pub(super) const TICKS_ARE_NS: bool = false;

    /// One raw timestamp-counter read. Unserialized — it may reorder
    /// against neighbouring instructions by a few cycles, which is
    /// noise at span granularity.
    pub(super) fn raw_ticks() -> u64 {
        // SAFETY: RDTSC reads the CPU's timestamp counter into
        // registers; it touches no memory and every x86_64 has it.
        unsafe { core::arch::x86_64::_rdtsc() }
    }
}

#[cfg(not(target_arch = "x86_64"))]
mod imp {
    pub(super) const TICKS_ARE_NS: bool = true;

    pub(super) fn raw_ticks() -> u64 {
        super::base().instant.elapsed().as_nanos() as u64
    }
}

/// The process base pair: a tick count and an `Instant` captured
/// back-to-back on first use. Ticks are reported relative to
/// `base().ticks`, and [`Scale`] measures nanoseconds-per-tick against
/// the pair.
struct Base {
    ticks: u64,
    instant: Instant,
}

fn base() -> &'static Base {
    static BASE: OnceLock<Base> = OnceLock::new();
    BASE.get_or_init(|| Base {
        // On non-x86_64 targets `raw_ticks` is itself `Instant`-based
        // and already relative, so the tick base stays zero.
        ticks: if imp::TICKS_ARE_NS {
            0
        } else {
            imp::raw_ticks()
        },
        instant: Instant::now(),
    })
}

/// Monotonic span timestamp in clock ticks (first call ≈ 0). This is
/// the recording-side unit — every timestamp handed to
/// [`record_span_at`](crate::record_span_at) must come from here.
/// Collected [`SpanRecord`](crate::SpanRecord)s are already converted
/// to nanoseconds.
///
/// Saturating, not wrapping: on virtualized hosts a vCPU's counter can
/// read a few ticks *behind* the base sample taken on another vCPU, and
/// that skew must clamp to zero rather than explode to ~2^64. (A 64-bit
/// counter won't genuinely wrap for centuries.)
pub fn now_ticks() -> u64 {
    imp::raw_ticks().saturating_sub(base().ticks)
}

/// A sampled ticks→nanoseconds conversion factor.
///
/// Sampling pairs one tick read and one `Instant` read against the
/// process base pair, so the factor's relative error is bounded by two
/// clock-read jitters over the whole process uptime — take one per
/// snapshot or drain pass, never per span.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Scale {
    ns_per_tick: f64,
}

impl Scale {
    pub(crate) fn sample() -> Scale {
        if imp::TICKS_ARE_NS {
            return Scale { ns_per_tick: 1.0 };
        }
        let base = base();
        let ticks = imp::raw_ticks().saturating_sub(base.ticks);
        let ns = base.instant.elapsed().as_nanos() as u64;
        if ticks == 0 || ns == 0 {
            // Sampled within the first tick of the process's life; the
            // only spans this could misconvert are equally young.
            return Scale { ns_per_tick: 1.0 };
        }
        Scale {
            ns_per_tick: ns as f64 / ticks as f64,
        }
    }

    /// Converts a tick count (timestamp or duration) to nanoseconds.
    pub(crate) fn ticks_to_ns(self, ticks: u64) -> u64 {
        (ticks as f64 * self.ns_per_tick) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_advance_and_convert_to_plausible_nanoseconds() {
        let from = now_ticks();
        std::thread::sleep(std::time::Duration::from_millis(5));
        let elapsed = now_ticks().saturating_sub(from);
        assert!(elapsed > 0, "the tick clock must advance");
        let ns = Scale::sample().ticks_to_ns(elapsed);
        assert!(
            (3_000_000..500_000_000).contains(&ns),
            "a ~5ms sleep converted to {ns}ns"
        );
    }

    #[test]
    fn conversion_is_monotone() {
        let scale = Scale::sample();
        let mut last = 0;
        for ticks in [0u64, 1, 10, 1_000, 1_000_000, 1 << 40] {
            let ns = scale.ticks_to_ns(ticks);
            assert!(ns >= last, "ticks_to_ns must be monotone");
            last = ns;
        }
    }
}

//! Prior-art gate-count-based design-CFP baseline.
//!
//! ECO-CHIP (the paper's reference [5]) models the design-phase footprint
//! from the number of logic gates alone: the EDA flow is assumed to burn a
//! fixed amount of CPU-server time per gate, and the design CFP is that
//! compute's energy times the grid's carbon intensity. The GreenFPGA paper
//! argues this "grossly underestimates" the design CFP because it leaves out
//! the engineering organisation around the flow (offices, laptops,
//! verification farms, test and post-silicon validation), and replaces it
//! with the sustainability-report-based model of [`crate::DesignHouse`].
//!
//! The baseline is reproduced here so the two models can be compared head to
//! head (see the `ablation_design_model` experiment binary).

use serde::{Deserialize, Serialize};

use gf_units::{Carbon, CarbonIntensity, Energy, GateCount, Power};

/// ECO-CHIP-style design-CFP model: CPU-hours proportional to gate count.
///
/// # Examples
///
/// ```
/// use gf_lifecycle::GateBasedDesignModel;
/// use gf_units::GateCount;
///
/// let baseline = GateBasedDesignModel::ecochip_defaults();
/// let cfp = baseline.design_carbon(GateCount::from_millions(500.0));
/// assert!(cfp.as_tons() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GateBasedDesignModel {
    /// Gates synthesised/verified per CPU-server hour of EDA work.
    pub gates_per_cpu_hour: f64,
    /// Power of one EDA compute server.
    pub cpu_power: Power,
    /// Carbon intensity of the grid powering the EDA compute.
    pub grid: CarbonIntensity,
}

impl GateBasedDesignModel {
    /// Defaults in the range the prior art used: 50 K gates of flow progress
    /// per CPU-hour on 400 W servers at a 475 g CO₂/kWh world-average grid.
    pub fn ecochip_defaults() -> Self {
        GateBasedDesignModel {
            gates_per_cpu_hour: 50_000.0,
            cpu_power: Power::from_watts(400.0),
            grid: CarbonIntensity::from_grams_per_kwh(475.0),
        }
    }

    /// Total EDA compute energy needed to design a chip of the given size.
    pub fn design_energy(&self, gates: GateCount) -> Energy {
        if self.gates_per_cpu_hour <= 0.0 {
            return Energy::ZERO;
        }
        let cpu_hours = gates.get() as f64 / self.gates_per_cpu_hour;
        Energy::from_kwh(self.cpu_power.as_kilowatts() * cpu_hours)
    }

    /// Design-phase footprint of a chip of the given size.
    pub fn design_carbon(&self, gates: GateCount) -> Carbon {
        self.design_energy(gates) * self.grid
    }
}

impl Default for GateBasedDesignModel {
    fn default() -> Self {
        GateBasedDesignModel::ecochip_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DesignHouse, DesignProject};
    use gf_units::TimeSpan;

    #[test]
    fn design_carbon_is_linear_in_gates() {
        let model = GateBasedDesignModel::ecochip_defaults();
        let small = model.design_carbon(GateCount::from_millions(100.0));
        let large = model.design_carbon(GateCount::from_millions(400.0));
        assert!((large.as_kg() - 4.0 * small.as_kg()).abs() < 1e-6);
    }

    #[test]
    fn hand_calculation() {
        let model = GateBasedDesignModel {
            gates_per_cpu_hour: 1_000.0,
            cpu_power: Power::from_kilowatts(1.0),
            grid: CarbonIntensity::from_kg_per_kwh(0.5),
        };
        // 1M gates → 1000 CPU-hours → 1000 kWh → 500 kg.
        let c = model.design_carbon(GateCount::from_millions(1.0));
        assert!((c.as_kg() - 500.0).abs() < 1e-9);
        let e = model.design_energy(GateCount::from_millions(1.0));
        assert!((e.as_kwh() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_throughput_gives_zero() {
        let model = GateBasedDesignModel {
            gates_per_cpu_hour: 0.0,
            ..GateBasedDesignModel::ecochip_defaults()
        };
        assert_eq!(
            model.design_carbon(GateCount::from_millions(10.0)),
            Carbon::ZERO
        );
    }

    #[test]
    fn baseline_underestimates_the_report_based_model() {
        // The paper's central claim about prior art: for a realistically
        // staffed product the gate-based model reports far less design
        // carbon than the sustainability-report-based model.
        let gates = GateCount::from_millions(1_000.0);
        let baseline = GateBasedDesignModel::ecochip_defaults().design_carbon(gates);
        let house = DesignHouse::default_fabless();
        let project = DesignProject::new(gates, TimeSpan::from_years(2.0), 1_000).unwrap();
        let report_based = house.design_carbon(&project);
        assert!(
            report_based.as_kg() > 3.0 * baseline.as_kg(),
            "report-based {report_based} should dwarf gate-based {baseline}"
        );
    }

    #[test]
    fn default_matches_named_constructor() {
        assert_eq!(
            GateBasedDesignModel::default(),
            GateBasedDesignModel::ecochip_defaults()
        );
    }
}

//! Integration tests for `greenfpga-serve`: a real server on an ephemeral
//! loopback port, driven by real TCP clients, with every served result
//! **golden-matched bit-for-bit** against direct engine calls.
//!
//! The bit-identity works because the wire format (`greenfpga::api` over
//! `gf_json`) serializes `f64` with shortest round-trip formatting: parsing
//! a response reconstructs exactly the bits the server's engine produced,
//! so `PartialEq` on the decoded structs is a bit-level comparison.

use gf_json::{FromJson, ToJson, Value};
use gf_server::client::Client;
use gf_server::{Server, ServerConfig, ServerHandle};
use greenfpga::api::{
    BatchEvalRequest, BatchEvalResponse, CompareRequest, CompareResponse, CrossoverResponse,
    EvaluateRequest, EvaluateResponse, FrontierRequest, GridRequest, IndustryRequest,
    IndustryResponse, MetricsResponse, MonteCarloRequest, MonteCarloResponse, QueryKind,
    SweepRequest, TornadoRequest,
};
use greenfpga::{
    Domain, Estimator, GridSweep, Knob, MonteCarlo, OperatingPoint, ResultBuffer, ScenarioSpec,
    SweepAxis, SweepSeries, TornadoAnalysis,
};

/// Boots a server on an ephemeral port with test-friendly settings.
fn spawn_server() -> ServerHandle {
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        idle_timeout: std::time::Duration::from_secs(2),
        ..ServerConfig::default()
    };
    Server::bind(config).expect("bind ephemeral server").spawn()
}

fn connect(handle: &ServerHandle) -> Client {
    Client::connect(handle.addr()).expect("connect to server")
}

fn post_json(client: &mut Client, path: &str, request: &impl ToJson) -> (u16, Value) {
    let body = request
        .to_json()
        .to_json_string()
        .expect("serialize request");
    let (status, body) = client.post(path, &body).expect("request round-trip");
    let value = gf_json::parse(&body).expect("response is JSON");
    (status, value)
}

fn scenario_cases() -> Vec<ScenarioSpec> {
    let mut specs: Vec<ScenarioSpec> = Domain::ALL
        .into_iter()
        .map(ScenarioSpec::baseline)
        .collect();
    specs.push(ScenarioSpec {
        domain: Domain::Dnn,
        knobs: vec![(Knob::DutyCycle, 0.45), (Knob::UsageGridIntensity, 650.0)],
    });
    specs.push(ScenarioSpec {
        domain: Domain::Crypto,
        knobs: vec![(Knob::EolRecycledFraction, 0.9)],
    });
    specs
}

fn point_cases() -> Vec<OperatingPoint> {
    vec![
        OperatingPoint::paper_default(),
        OperatingPoint {
            applications: 1,
            lifetime_years: 0.25,
            volume: 1_000,
        },
        OperatingPoint {
            applications: 12,
            lifetime_years: 3.5,
            volume: 10_000_000,
        },
    ]
}

#[test]
fn healthz_is_liveness_only_and_metrics_counts_requests() {
    let handle = spawn_server();
    let mut client = connect(&handle);
    let (status, body) = client.get("/healthz").expect("healthz");
    assert_eq!(status, 200);
    let value = gf_json::parse(&body).unwrap();
    assert_eq!(value.get("status").and_then(Value::as_str), Some("ok"));
    // The version is gf-server's own CARGO_PKG_VERSION; assert shape, not
    // the value (this test crate may be versioned independently).
    let version = value.get("version").and_then(Value::as_str).unwrap();
    assert!(
        !version.is_empty() && version.chars().next().unwrap().is_ascii_digit(),
        "healthz reports a semver-ish build version, got '{version}'"
    );
    assert!(value.get("uptime_seconds").and_then(Value::as_f64).unwrap() >= 0.0);
    assert!(value.get("workers").and_then(Value::as_u64).unwrap() >= 1);
    // Slimmed: the counters moved to /v1/metrics.
    assert!(value.get("requests_served").is_none());
    assert!(value.get("scenario_cache").is_none());
    // More requests move the metrics counter.
    let (_, body) = client.get("/v1/metrics").expect("metrics");
    let before = MetricsResponse::from_json(&gf_json::parse(&body).unwrap()).unwrap();
    let (status, _) = client.get("/healthz").expect("healthz again");
    assert_eq!(status, 200);
    let (_, body) = client.get("/v1/metrics").expect("metrics again");
    let after = MetricsResponse::from_json(&gf_json::parse(&body).unwrap()).unwrap();
    assert!(after.requests_served > before.requests_served);
    handle.shutdown();
}

#[test]
fn evaluate_is_bit_identical_to_direct_engine_calls() {
    let handle = spawn_server();
    let mut client = connect(&handle);
    for scenario in scenario_cases() {
        // The direct path a library user would run: estimator with the same
        // knob overrides, compiled scenario, point evaluation.
        let direct = Estimator::new(scenario.params())
            .compile(scenario.domain)
            .unwrap();
        for point in point_cases() {
            let request = EvaluateRequest {
                scenario: scenario.clone(),
                point,
            };
            let (status, value) = post_json(&mut client, "/v1/evaluate", &request);
            assert_eq!(status, 200, "{value:?}");
            let response = EvaluateResponse::from_json(&value).expect("decode response");
            let expected = direct.evaluate(point).unwrap();
            assert_eq!(response.comparison, expected, "{scenario:?} {point:?}");
            // Explicit bit check on one representative field, in case a
            // PartialEq refactor ever loosens the struct comparison.
            assert_eq!(
                response.comparison.fpga.total().as_kg().to_bits(),
                expected.fpga.total().as_kg().to_bits()
            );
        }
    }
    handle.shutdown();
}

#[test]
fn batch_matches_the_soa_kernel_bit_for_bit() {
    let handle = spawn_server();
    let mut client = connect(&handle);
    let scenario = ScenarioSpec {
        domain: Domain::ImageProcessing,
        knobs: vec![(Knob::FabGridIntensity, 120.0)],
    };
    let points: Vec<OperatingPoint> = (1..=40u64)
        .map(|i| OperatingPoint {
            applications: 1 + i % 9,
            lifetime_years: 0.25 * i as f64,
            volume: 10_000 * i,
        })
        .collect();
    let request = BatchEvalRequest {
        scenario: scenario.clone(),
        points: points.clone(),
    };
    // Direct golden: the same zero-alloc kernel the server routes through.
    let compiled = Estimator::new(scenario.params())
        .compile(scenario.domain)
        .unwrap();
    let mut buffer = ResultBuffer::new();
    compiled.evaluate_into(&points, &mut buffer).unwrap();
    // Repeated batches on one keep-alive connection hit the same reused
    // server-side buffer; every one must be identical.
    for round in 0..3 {
        let (status, value) = post_json(&mut client, "/v1/batch", &request);
        assert_eq!(status, 200, "round {round}: {value:?}");
        let response = BatchEvalResponse::from_json(&value).expect("decode batch");
        assert_eq!(response.comparisons.len(), points.len());
        for (i, comparison) in response.comparisons.iter().enumerate() {
            assert_eq!(*comparison, buffer.comparison(i), "round {round} point {i}");
        }
    }
    handle.shutdown();
}

#[test]
fn crossover_matches_the_estimator_searches() {
    let handle = spawn_server();
    let mut client = connect(&handle);
    for scenario in scenario_cases() {
        let request = greenfpga::CrossoverRequest::with_default_ranges(
            scenario.clone(),
            OperatingPoint::paper_default(),
        );
        let (status, value) = post_json(&mut client, "/v1/crossover", &request);
        assert_eq!(status, 200, "{value:?}");
        let response = CrossoverResponse::from_json(&value).expect("decode crossover");
        let estimator = Estimator::new(scenario.params());
        let base = OperatingPoint::paper_default();
        assert_eq!(
            response.applications,
            estimator
                .crossover_in_applications(scenario.domain, 20, base.lifetime_years, base.volume)
                .unwrap(),
            "{scenario:?}"
        );
        assert_eq!(
            response.lifetime,
            estimator
                .crossover_in_lifetime(scenario.domain, base.applications, base.volume, 0.05, 5.0)
                .unwrap(),
            "{scenario:?}"
        );
        assert_eq!(
            response.volume,
            estimator
                .crossover_in_volume(
                    scenario.domain,
                    base.applications,
                    base.lifetime_years,
                    1_000,
                    50_000_000
                )
                .unwrap(),
            "{scenario:?}"
        );
    }
    handle.shutdown();
}

#[test]
fn frontier_matches_the_direct_winner_map() {
    let handle = spawn_server();
    let mut client = connect(&handle);
    let scenario = ScenarioSpec::baseline(Domain::Dnn);
    let request = FrontierRequest {
        scenario: scenario.clone(),
        base: OperatingPoint::paper_default(),
        x_axis: SweepAxis::Applications,
        x_range: (1.0, 16.0),
        y_axis: SweepAxis::LifetimeYears,
        y_range: (0.25, 3.0),
        steps: 16,
    };
    let (status, value) = post_json(&mut client, "/v1/frontier", &request);
    assert_eq!(status, 200, "{value:?}");

    let (x_values, y_values) = request.lattice();
    let direct = Estimator::new(scenario.params())
        .frontier(
            scenario.domain,
            request.x_axis,
            &x_values,
            request.y_axis,
            &y_values,
            request.base,
        )
        .unwrap();
    assert_eq!(
        value.get("evaluations").and_then(Value::as_u64),
        Some(direct.evaluations() as u64)
    );
    let mask = value.get("fpga_wins").and_then(Value::as_array).unwrap();
    assert_eq!(mask.len(), direct.height());
    for (row, served_row) in mask.iter().enumerate() {
        let served_row = served_row.as_array().unwrap();
        assert_eq!(served_row.len(), direct.width());
        for (col, cell) in served_row.iter().enumerate() {
            assert_eq!(
                cell.as_bool(),
                Some(direct.fpga_wins(row, col)),
                "cell ({row},{col})"
            );
        }
    }
    // Served x/y coordinates round-trip bit-for-bit too.
    let served_x: Vec<f64> = value
        .get("x_values")
        .and_then(Value::as_array)
        .unwrap()
        .iter()
        .map(|v| v.as_f64().unwrap())
        .collect();
    assert_eq!(served_x.len(), x_values.len());
    for (a, b) in served_x.iter().zip(&x_values) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    handle.shutdown();
}

#[test]
fn concurrent_clients_get_consistent_answers() {
    let handle = spawn_server();
    let addr = handle.addr();
    let scenario = ScenarioSpec::baseline(Domain::Dnn);
    let direct = Estimator::default().compile(Domain::Dnn).unwrap();
    let clients = 4;
    let requests_per_client = 50;
    std::thread::scope(|scope| {
        for c in 0..clients {
            let scenario = scenario.clone();
            let direct = &direct;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for i in 0..requests_per_client {
                    let point = OperatingPoint {
                        applications: 1 + ((c + i) % 10) as u64,
                        lifetime_years: 0.5 + 0.25 * (i % 8) as f64,
                        volume: 100_000 + 10_000 * i as u64,
                    };
                    let request = EvaluateRequest {
                        scenario: scenario.clone(),
                        point,
                    };
                    let body = request.to_json().to_json_string().unwrap();
                    let (status, body) = client.post("/v1/evaluate", &body).expect("round-trip");
                    assert_eq!(status, 200);
                    let response =
                        EvaluateResponse::from_json(&gf_json::parse(&body).unwrap()).unwrap();
                    assert_eq!(
                        response.comparison,
                        direct.evaluate(point).unwrap(),
                        "client {c} request {i}"
                    );
                }
            });
        }
    });
    assert!(handle.requests_served() >= (clients * requests_per_client) as u64);
    handle.shutdown();
}

#[test]
fn malformed_requests_are_rejected_without_harming_the_server() {
    let handle = spawn_server();
    let mut client = connect(&handle);
    // Broken JSON.
    let (status, body) = client.post("/v1/evaluate", "{not json").unwrap();
    assert_eq!(status, 400, "{body}");
    // Schema violations.
    let (status, body) = client.post("/v1/evaluate", "{}").unwrap();
    assert_eq!(status, 400);
    assert!(body.contains("domain"), "{body}");
    let (status, _) = client
        .post("/v1/evaluate", r#"{"domain": "warp-core"}"#)
        .unwrap();
    assert_eq!(status, 400);
    let (status, body) = client
        .post("/v1/evaluate", r#"{"domain": "dnn", "knobs": {"flux": 1}}"#)
        .unwrap();
    assert_eq!(status, 400);
    assert!(body.contains("flux"), "{body}");
    // Hostile nesting trips the parser's depth limit, not the stack.
    let deep = format!("{}{}", "[".repeat(50_000), "]".repeat(50_000));
    let (status, _) = client.post("/v1/evaluate", &deep).unwrap();
    assert_eq!(status, 400);
    // Model-level rejection: zero applications is a 422, not a crash.
    let (status, body) = client
        .post(
            "/v1/evaluate",
            r#"{"domain": "dnn", "point": {"applications": 0}}"#,
        )
        .unwrap();
    assert_eq!(status, 422, "{body}");
    // Unknown routes and methods.
    let (status, _) = client.get("/v2/evaluate").unwrap();
    assert_eq!(status, 404);
    let (status, _) = client.request("DELETE", "/healthz", None).unwrap();
    assert_eq!(status, 405);
    // The connection that sent garbage is still serviceable...
    let (status, _) = client.get("/healthz").unwrap();
    assert_eq!(status, 200);
    // ...and so is a fresh one.
    let mut fresh = connect(&handle);
    let (status, _) = fresh.get("/healthz").unwrap();
    assert_eq!(status, 200);
    handle.shutdown();
}

#[test]
fn repeated_server_lifecycle_is_leak_free_and_deadlock_free() {
    // The long-lived-service satellite: engines (server + worker pool +
    // cache) must come up and tear down repeatedly without wedging on a
    // join or accumulating threads. A deadlock here hangs the test; a leak
    // shows up as runaway thread counts under any external inspection.
    for round in 0..10 {
        let handle = spawn_server();
        let mut client = connect(&handle);
        let (status, _) = client.get("/healthz").expect("healthz");
        assert_eq!(status, 200, "round {round}");
        let request = EvaluateRequest {
            scenario: ScenarioSpec::baseline(Domain::Crypto),
            point: OperatingPoint::paper_default(),
        };
        let (status, _) = post_json(&mut client, "/v1/evaluate", &request);
        assert_eq!(status, 200, "round {round}");
        drop(client);
        handle.shutdown(); // must join promptly every round
    }
}

#[test]
fn metrics_route_has_the_golden_shape_and_counts() {
    let handle = spawn_server();
    let mut client = connect(&handle);
    // Traffic across routes, including an error.
    for _ in 0..3 {
        let request = EvaluateRequest {
            scenario: ScenarioSpec::baseline(Domain::Dnn),
            point: OperatingPoint::paper_default(),
        };
        let (status, _) = post_json(&mut client, "/v1/evaluate", &request);
        assert_eq!(status, 200);
    }
    let (status, _) = client.post("/v1/evaluate", "{not json").unwrap();
    assert_eq!(status, 400);
    let (status, _) = client.get("/healthz").unwrap();
    assert_eq!(status, 200);

    let (status, body) = client.get("/v1/metrics").unwrap();
    assert_eq!(status, 200, "{body}");
    // The body decodes through the typed schema — golden shape by
    // construction, and every field is internally consistent.
    let metrics = MetricsResponse::from_json(&gf_json::parse(&body).unwrap()).unwrap();
    assert_eq!(metrics.connections_live, 1, "this client is connected");
    assert_eq!(
        metrics.connections_max,
        ServerConfig::default().max_connections as u64
    );
    assert_eq!(metrics.connections_rejected, 0);
    assert!(metrics.requests_served >= 5);
    let route = |label: &str| {
        metrics
            .routes
            .iter()
            .find(|r| r.route == label)
            .unwrap_or_else(|| panic!("missing route {label}"))
            .clone()
    };
    let evaluate = route("POST /v1/evaluate");
    assert_eq!(evaluate.requests, 4);
    assert_eq!(evaluate.errors, 1, "the malformed request counts");
    // The error split: a malformed body is a client fault, and the legacy
    // total stays the sum of the classes.
    assert_eq!(evaluate.errors_4xx, 1);
    assert_eq!(evaluate.errors_5xx, 0);
    assert_eq!(evaluate.errors, evaluate.errors_4xx + evaluate.errors_5xx);
    assert_eq!(
        evaluate.latency.counts.iter().sum::<u64>(),
        evaluate.requests,
        "every request lands in exactly one latency bucket"
    );
    assert!(route("GET /healthz").requests >= 1);
    // Cache shards: stats sum matches the scenario traffic (one distinct
    // scenario -> one miss, the rest hits).
    assert_eq!(
        metrics.cache_shards.len(),
        ServerConfig::default().cache_shards
    );
    let misses: u64 = metrics.cache_shards.iter().map(|s| s.misses).sum();
    let hits: u64 = metrics.cache_shards.iter().map(|s| s.hits).sum();
    assert_eq!(misses, 1);
    assert_eq!(hits, 2);
    handle.shutdown();
}

#[test]
fn admission_control_rejects_beyond_the_connection_cap() {
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        max_connections: 2,
        idle_timeout: std::time::Duration::from_secs(2),
        ..ServerConfig::default()
    };
    let handle = Server::bind(config).expect("bind").spawn();
    // Two live connections fill the cap...
    let mut first = connect(&handle);
    let (status, _) = first.get("/healthz").unwrap();
    assert_eq!(status, 200);
    let mut second = connect(&handle);
    let (status, _) = second.get("/healthz").unwrap();
    assert_eq!(status, 200);
    // ...so the third is turned away at accept time: the server answers
    // 503 unprompted and closes. Read passively (sending a request first
    // could race the close into an RST that discards the buffered 503).
    let mut third = std::net::TcpStream::connect(handle.addr()).expect("tcp connect succeeds");
    let mut rejection = String::new();
    {
        use std::io::Read;
        third
            .read_to_string(&mut rejection)
            .expect("read rejection");
    }
    assert!(rejection.starts_with("HTTP/1.1 503 "), "{rejection}");
    assert!(rejection.contains("overloaded"), "{rejection}");
    // The established connections keep working.
    let (status, _) = first.get("/healthz").unwrap();
    assert_eq!(status, 200);
    // Freeing a slot re-admits new connections (poll briefly: the gauge
    // drops when the worker finishes the closed connection).
    drop(second);
    let mut readmitted = None;
    for _ in 0..50 {
        let mut candidate = Client::connect(handle.addr()).expect("tcp connect");
        if let Ok((200, _)) = candidate.get("/healthz") {
            readmitted = Some(candidate);
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    assert!(readmitted.is_some(), "a freed slot re-admits connections");
    // The rejections are visible in the metrics.
    let (_, body) = first.get("/v1/metrics").unwrap();
    let metrics = MetricsResponse::from_json(&gf_json::parse(&body).unwrap()).unwrap();
    assert!(metrics.connections_rejected >= 1);
    assert_eq!(metrics.connections_max, 2);
    handle.shutdown();
}

#[test]
fn rejected_connections_carry_retry_after() {
    use std::io::Read;
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        max_connections: 1,
        idle_timeout: std::time::Duration::from_secs(2),
        ..ServerConfig::default()
    };
    let handle = Server::bind(config).expect("bind").spawn();
    let mut occupant = connect(&handle);
    let (status, _) = occupant.get("/healthz").unwrap();
    assert_eq!(status, 200);
    // Raw TCP so the rejection headers are visible; read passively — the
    // server answers 503 at accept time without waiting for a request.
    let mut raw = std::net::TcpStream::connect(handle.addr()).unwrap();
    let mut response = String::new();
    raw.read_to_string(&mut response).unwrap(); // server closes after 503
    assert!(
        response.starts_with("HTTP/1.1 503 Service Unavailable"),
        "{response}"
    );
    assert!(response.contains("Retry-After:"), "{response}");
    assert!(response.contains("Connection: close"), "{response}");
    handle.shutdown();
}

#[test]
fn sharded_cache_survives_concurrent_hammering_with_exact_stats() {
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 8,
        cache_shards: 4,
        idle_timeout: std::time::Duration::from_secs(2),
        ..ServerConfig::default()
    };
    let handle = Server::bind(config).expect("bind").spawn();
    let addr = handle.addr();
    let clients = 8;
    let rounds = 30;
    // 6 distinct scenarios hammered from every client concurrently.
    let scenarios: Vec<ScenarioSpec> = (0..6)
        .map(|i| ScenarioSpec {
            domain: Domain::ALL[i % Domain::ALL.len()],
            knobs: vec![(Knob::DutyCycle, 0.2 + 0.1 * (i / 3) as f64)],
        })
        .collect();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let scenarios = &scenarios;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for i in 0..rounds {
                    let scenario = scenarios[(c + i) % scenarios.len()].clone();
                    let direct = Estimator::new(scenario.params())
                        .compile(scenario.domain)
                        .unwrap();
                    let request = EvaluateRequest {
                        scenario,
                        point: OperatingPoint::paper_default(),
                    };
                    let body = request.to_json().to_json_string().unwrap();
                    let (status, body) = client.post("/v1/evaluate", &body).expect("round-trip");
                    assert_eq!(status, 200);
                    let response =
                        EvaluateResponse::from_json(&gf_json::parse(&body).unwrap()).unwrap();
                    assert_eq!(
                        response.comparison,
                        direct.evaluate(OperatingPoint::paper_default()).unwrap()
                    );
                }
            });
        }
    });
    let mut client = connect(&handle);
    let (_, body) = client.get("/v1/metrics").unwrap();
    let metrics = MetricsResponse::from_json(&gf_json::parse(&body).unwrap()).unwrap();
    assert_eq!(metrics.cache_shards.len(), 4);
    let hits: u64 = metrics.cache_shards.iter().map(|s| s.hits).sum();
    let misses: u64 = metrics.cache_shards.iter().map(|s| s.misses).sum();
    assert_eq!(
        hits + misses,
        (clients * rounds) as u64,
        "every lookup counted exactly once across shards"
    );
    assert!(
        misses <= scenarios.len() as u64,
        "at most one compile per scenario"
    );
    handle.shutdown();
}

#[test]
fn duplicate_conflicting_content_length_is_rejected_over_the_wire() {
    use std::io::{Read, Write};
    let handle = spawn_server();
    let mut raw = std::net::TcpStream::connect(handle.addr()).unwrap();
    // No body bytes follow: the rejection happens at the headers, and any
    // unread body at close could RST away the buffered 400.
    raw.write_all(
        b"POST /v1/evaluate HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\nContent-Length: 17\r\n\r\n",
    )
    .unwrap();
    let mut response = String::new();
    raw.read_to_string(&mut response).unwrap(); // connection closes after 400
    assert!(
        response.starts_with("HTTP/1.1 400 Bad Request"),
        "{response}"
    );
    assert!(
        response.contains("conflicting Content-Length"),
        "{response}"
    );
    // The server remains healthy for well-formed clients.
    let mut fresh = connect(&handle);
    let (status, _) = fresh.get("/healthz").unwrap();
    assert_eq!(status, 200);
    handle.shutdown();
}

#[test]
fn scenario_cache_serves_repeats_compile_free() {
    let handle = spawn_server();
    let mut client = connect(&handle);
    let request = EvaluateRequest {
        scenario: ScenarioSpec {
            domain: Domain::Dnn,
            knobs: vec![(Knob::DutyCycle, 0.33)],
        },
        point: OperatingPoint::paper_default(),
    };
    for _ in 0..5 {
        let (status, _) = post_json(&mut client, "/v1/evaluate", &request);
        assert_eq!(status, 200);
    }
    let (_, body) = client.get("/v1/metrics").unwrap();
    let metrics = MetricsResponse::from_json(&gf_json::parse(&body).unwrap()).unwrap();
    let misses: u64 = metrics.cache_shards.iter().map(|s| s.misses).sum();
    let hits: u64 = metrics.cache_shards.iter().map(|s| s.hits).sum();
    assert_eq!(misses, 1, "one compile for five identical scenarios");
    assert_eq!(hits, 4);
    handle.shutdown();
}

#[test]
fn sweep_route_is_bit_identical_to_the_direct_series() {
    let handle = spawn_server();
    let mut client = connect(&handle);
    let scenario = ScenarioSpec {
        domain: Domain::Dnn,
        knobs: vec![(Knob::DutyCycle, 0.4)],
    };
    let request = SweepRequest {
        scenario: scenario.clone(),
        base: OperatingPoint::paper_default(),
        axis: SweepAxis::Applications,
        range: (1.0, 12.0),
        steps: 12,
    };
    let (status, value) = post_json(&mut client, QueryKind::Sweep.path(), &request);
    assert_eq!(status, 200, "{value:?}");
    let served = SweepSeries::from_json(&value).expect("decode series");
    let direct = Estimator::new(scenario.params())
        .sweep(
            scenario.domain,
            request.axis,
            &request.values(),
            request.base,
        )
        .unwrap();
    assert_eq!(served, direct);
    assert_eq!(
        served.points[3].fpga.total().as_kg().to_bits(),
        direct.points[3].fpga.total().as_kg().to_bits()
    );
    handle.shutdown();
}

#[test]
fn grid_route_is_bit_identical_to_the_direct_grid() {
    let handle = spawn_server();
    let mut client = connect(&handle);
    let scenario = ScenarioSpec::baseline(Domain::ImageProcessing);
    let request = GridRequest {
        scenario: scenario.clone(),
        base: OperatingPoint::paper_default(),
        x_axis: SweepAxis::Applications,
        x_range: (1.0, 8.0),
        y_axis: SweepAxis::LifetimeYears,
        y_range: (0.5, 2.5),
        steps: 8,
        stream: false,
    };
    let (status, value) = post_json(&mut client, QueryKind::Grid.path(), &request);
    assert_eq!(status, 200, "{value:?}");
    let served = GridSweep::from_json(&value).expect("decode grid");
    let (x_values, y_values) = request.lattice();
    let direct = Estimator::new(scenario.params())
        .ratio_grid(
            scenario.domain,
            request.x_axis,
            &x_values,
            request.y_axis,
            &y_values,
            request.base,
        )
        .unwrap();
    assert_eq!(served, direct);
    handle.shutdown();
}

/// The grid request the streamed-delivery tests share: `steps` per axis,
/// streamed or buffered per the flag, otherwise identical.
fn grid_request_for_streaming(steps: usize, stream: bool) -> GridRequest {
    GridRequest {
        scenario: ScenarioSpec::baseline(Domain::Dnn),
        base: OperatingPoint::paper_default(),
        x_axis: SweepAxis::Applications,
        x_range: (1.0, 12.0),
        y_axis: SweepAxis::LifetimeYears,
        y_range: (0.25, 3.0),
        steps,
        stream,
    }
}

fn grid_body(steps: usize, stream: bool) -> String {
    grid_request_for_streaming(steps, stream)
        .to_json()
        .to_json_string()
        .expect("serialize request")
}

#[test]
fn streamed_grid_body_is_byte_identical_to_buffered() {
    // 200 steps → 40 000 cells → three row-blocks through the bounded
    // worker→loop channel, so the equality crosses real chunk seams.
    let handle = spawn_server();
    let mut client = connect(&handle);
    let (status, buffered) = client
        .post(QueryKind::Grid.path(), &grid_body(200, false))
        .expect("buffered grid");
    assert_eq!(status, 200, "{buffered}");
    let (status, streamed) = client
        .post(QueryKind::Grid.path(), &grid_body(200, true))
        .expect("streamed grid");
    assert_eq!(status, 200, "{streamed}");
    assert_eq!(
        streamed, buffered,
        "chunk-decoded streamed body must be byte-identical to buffered"
    );
    // The keep-alive connection survives a streamed response.
    let (status, _) = client.get("/healthz").expect("keep-alive after stream");
    assert_eq!(status, 200);
    handle.shutdown();
}

/// The acceptance-scale case: a 1024×1024 (million-point) grid streamed
/// and buffered byte-identically. Minutes under the debug profile, so it
/// is ignored by default — run with `cargo test --release -- --ignored`.
#[test]
#[ignore = "million-point grid; run under --release"]
fn streamed_million_point_grid_is_byte_identical_to_buffered() {
    let handle = spawn_server();
    let mut client = connect(&handle);
    let (status, buffered) = client
        .post(QueryKind::Grid.path(), &grid_body(1024, false))
        .expect("buffered grid");
    assert_eq!(status, 200);
    let (status, streamed) = client
        .post(QueryKind::Grid.path(), &grid_body(1024, true))
        .expect("streamed grid");
    assert_eq!(status, 200);
    assert_eq!(streamed.len(), buffered.len());
    assert!(streamed == buffered, "million-point bodies diverge");
    handle.shutdown();
}

#[test]
fn streamed_grid_is_delivered_in_row_block_sized_chunks() {
    // Raw socket: inspect the chunked framing itself. Three row-blocks
    // must arrive as separate data chunks (head, blocks, tail) — proof the
    // response was produced and relayed incrementally, never materialised
    // whole in a server buffer.
    use std::io::{Read, Write};
    let handle = spawn_server();
    let mut socket = std::net::TcpStream::connect(handle.addr()).expect("raw connect");
    let body = grid_body(200, true);
    write!(
        socket,
        "POST /v1/grid HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut raw = Vec::new();
    socket.read_to_end(&mut raw).expect("read to EOF");
    let text = String::from_utf8(raw).expect("response is UTF-8");
    let (head, payload) = text.split_once("\r\n\r\n").expect("header terminator");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    let head_lower = head.to_ascii_lowercase();
    assert!(head_lower.contains("transfer-encoding: chunked"), "{head}");
    assert!(!head_lower.contains("content-length"), "{head}");

    let mut chunk_sizes = Vec::new();
    let mut rest = payload;
    loop {
        let (size_line, tail) = rest.split_once("\r\n").expect("chunk size line");
        let size = usize::from_str_radix(size_line.trim(), 16).expect("hex chunk size");
        if size == 0 {
            break;
        }
        chunk_sizes.push(size);
        assert_eq!(&tail[size..size + 2], "\r\n", "chunk data CRLF");
        rest = &tail[size + 2..];
    }
    let total: usize = chunk_sizes.iter().sum();
    // head + three row-blocks + tail, each its own chunk.
    assert!(
        chunk_sizes.len() >= 5,
        "expected block-wise chunks, got {chunk_sizes:?}"
    );
    let largest = chunk_sizes.iter().copied().max().unwrap_or(0);
    assert!(
        largest < total / 2,
        "one chunk carries most of the body ({largest} of {total}): not streamed"
    );
    handle.shutdown();
}

#[test]
fn tornado_route_is_bit_identical_to_the_direct_analysis() {
    let handle = spawn_server();
    let mut client = connect(&handle);
    let scenario = ScenarioSpec::baseline(Domain::Crypto);
    let request = TornadoRequest {
        scenario: scenario.clone(),
        point: OperatingPoint::paper_default(),
    };
    let (status, value) = post_json(&mut client, QueryKind::Tornado.path(), &request);
    assert_eq!(status, 200, "{value:?}");
    let served = TornadoAnalysis::from_json(&value).expect("decode tornado");
    let direct = Estimator::new(scenario.params())
        .tornado_analysis(scenario.domain, request.point)
        .unwrap();
    assert_eq!(served, direct);
    handle.shutdown();
}

#[test]
fn montecarlo_route_is_bit_identical_and_deterministic() {
    let handle = spawn_server();
    let mut client = connect(&handle);
    let scenario = ScenarioSpec::baseline(Domain::Dnn);
    let request = MonteCarloRequest {
        scenario: scenario.clone(),
        point: OperatingPoint::paper_default(),
        samples: 64,
        seed: 1234,
    };
    let (status, value) = post_json(&mut client, QueryKind::MonteCarlo.path(), &request);
    assert_eq!(status, 200, "{value:?}");
    let served = MonteCarloResponse::from_json(&value).expect("decode montecarlo");
    let direct = MonteCarlo::new(request.samples)
        .with_seed(request.seed)
        .run(&scenario.params(), scenario.domain, request.point)
        .unwrap();
    assert_eq!(served, MonteCarloResponse::from(&direct));
    // Deterministic: a second request answers identically.
    let (_, again) = post_json(&mut client, QueryKind::MonteCarlo.path(), &request);
    assert_eq!(MonteCarloResponse::from_json(&again).unwrap(), served);
    handle.shutdown();
}

#[test]
fn compare_route_matches_per_scenario_evaluations() {
    let handle = spawn_server();
    let mut client = connect(&handle);
    let scenarios: Vec<ScenarioSpec> = Domain::ALL
        .into_iter()
        .map(ScenarioSpec::baseline)
        .collect();
    let request = CompareRequest {
        scenarios: scenarios.clone(),
        point: OperatingPoint::paper_default(),
    };
    let (status, value) = post_json(&mut client, QueryKind::Compare.path(), &request);
    assert_eq!(status, 200, "{value:?}");
    let served = CompareResponse::from_json(&value).expect("decode compare");
    assert_eq!(served.comparisons.len(), scenarios.len());
    for (scenario, comparison) in scenarios.iter().zip(&served.comparisons) {
        let direct = Estimator::new(scenario.params())
            .compile(scenario.domain)
            .unwrap()
            .evaluate(request.point)
            .unwrap();
        assert_eq!(*comparison, direct, "{scenario:?}");
    }
    handle.shutdown();
}

#[test]
fn industry_route_matches_the_direct_testcases() {
    let handle = spawn_server();
    let mut client = connect(&handle);
    let request = IndustryRequest::default();
    let (status, value) = post_json(&mut client, QueryKind::Industry.path(), &request);
    assert_eq!(status, 200, "{value:?}");
    let served = IndustryResponse::from_json(&value).expect("decode industry");
    assert_eq!(served.devices.len(), 4);
    let estimator = Estimator::default();
    let scenario = greenfpga::IndustryScenario::paper_defaults();
    let expected_first = scenario
        .evaluate_fpga(&estimator, &greenfpga::industry_fpga1())
        .unwrap();
    assert_eq!(served.devices[0].cfp, expected_first);
    let expected_last = scenario
        .evaluate_asic(&estimator, &greenfpga::industry_asic2())
        .unwrap();
    assert_eq!(served.devices[3].cfp, expected_last);
    handle.shutdown();
}

#[test]
fn every_query_kind_is_servable_over_the_wire() {
    // The acceptance sweep: send a decodable request to every /v1/<kind>
    // route (POST with a minimal body, or a bare GET for the catalog) and
    // require a 200 whose body the typed decoder accepts.
    let handle = spawn_server();
    let mut client = connect(&handle);
    for kind in QueryKind::ALL {
        let body = match kind {
            QueryKind::Batch => r#"{"domain": "dnn", "points": [{"applications": 2}]}"#.to_string(),
            QueryKind::Compare => r#"{"scenarios": [{"domain": "dnn"}]}"#.to_string(),
            QueryKind::Sweep => {
                r#"{"domain": "dnn", "axis": "apps", "from": 1, "to": 4, "steps": 3}"#.to_string()
            }
            QueryKind::MonteCarlo => r#"{"domain": "dnn", "samples": 8}"#.to_string(),
            QueryKind::Industry => "{}".to_string(),
            QueryKind::Frontier | QueryKind::Grid => r#"{"domain": "dnn", "steps": 4}"#.to_string(),
            QueryKind::Scenario | QueryKind::Replay => r#"{"id": "dnn_baseline"}"#.to_string(),
            QueryKind::Optimize => r#"{"domain": "dnn", "objective": {"goal": "min_total"},
                "search": [{"axis": "apps", "min": 1, "max": 8}]}"#
                .to_string(),
            _ => r#"{"domain": "dnn"}"#.to_string(),
        };
        let (status, text) = if kind.method() == "GET" {
            client.get(kind.path()).expect("round-trip")
        } else {
            client.post(kind.path(), &body).expect("round-trip")
        };
        assert_eq!(status, 200, "{kind}: {text}");
        let value = gf_json::parse(&text).expect("response is JSON");
        kind.decode_result(&value)
            .unwrap_or_else(|e| panic!("{kind}: served body fails typed decode: {e}"));
    }
    handle.shutdown();
}

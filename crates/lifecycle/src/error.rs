//! Error type for the lifecycle models.

use std::error::Error;
use std::fmt;

use gf_units::UnitError;

/// Errors raised when constructing or evaluating lifecycle models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LifecycleError {
    /// A duration that must be non-negative was negative.
    NegativeDuration {
        /// Which duration was invalid.
        quantity: &'static str,
        /// Offending value in years.
        years: f64,
    },
    /// A count that must be non-zero was zero.
    ZeroCount {
        /// Which count was invalid.
        quantity: &'static str,
    },
    /// An underlying unit construction failed (e.g. a fraction out of range).
    Unit(UnitError),
}

impl fmt::Display for LifecycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LifecycleError::NegativeDuration { quantity, years } => {
                write!(f, "{quantity} must be non-negative, got {years} years")
            }
            LifecycleError::ZeroCount { quantity } => {
                write!(f, "{quantity} must be non-zero")
            }
            LifecycleError::Unit(e) => write!(f, "invalid unit value: {e}"),
        }
    }
}

impl Error for LifecycleError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LifecycleError::Unit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<UnitError> for LifecycleError {
    fn from(e: UnitError) -> Self {
        LifecycleError::Unit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = LifecycleError::NegativeDuration {
            quantity: "project duration",
            years: -1.0,
        };
        assert!(e.to_string().contains("project duration"));
        assert!(e.source().is_none());

        let e = LifecycleError::ZeroCount {
            quantity: "employees",
        };
        assert!(e.to_string().contains("employees"));

        let e: LifecycleError = UnitError::FractionOutOfRange(3.0).into();
        assert!(e.to_string().contains("[0, 1]"));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LifecycleError>();
    }
}

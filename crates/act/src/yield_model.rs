//! Die-yield models.
//!
//! Manufacturing carbon is reported *per good die*: the footprint of
//! processed wafer area is divided by the die yield, so larger dies at
//! immature nodes carry a disproportionate embodied footprint. ACT uses the
//! classic defect-limited yield models reproduced here.

use serde::{Deserialize, Serialize};

use gf_units::Area;

/// Defect-limited die-yield model.
///
/// All variants take the die area and the node's defect density `D0`
/// (defects/cm²) and return the fraction of dies that are functional.
///
/// # Examples
///
/// ```
/// use gf_act::YieldModel;
/// use gf_units::Area;
///
/// let y = YieldModel::Murphy.die_yield(Area::from_mm2(600.0), 0.1);
/// assert!(y > 0.5 && y < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum YieldModel {
    /// Poisson model: `Y = exp(-A·D0)`. Pessimistic for large dies.
    Poisson,
    /// Murphy's model: `Y = ((1 - exp(-A·D0)) / (A·D0))²`. The industry
    /// default and what ACT uses.
    Murphy,
    /// Negative-binomial (Stapper) model: `Y = (1 + A·D0/α)^-α`, where `α`
    /// is the defect clustering parameter (typically 2–4).
    NegativeBinomial {
        /// Defect clustering parameter `α`.
        alpha: f64,
    },
    /// A fixed yield independent of area — useful for what-if studies and
    /// for matching externally reported yield figures.
    Fixed {
        /// The yield value in `(0, 1]`.
        value: f64,
    },
}

impl YieldModel {
    /// Returns the fraction of good dies for a die of the given area at
    /// defect density `defect_density_per_cm2`.
    ///
    /// The result is clamped to `[0, 1]`; zero-area dies yield 1.0.
    pub fn die_yield(self, die_area: Area, defect_density_per_cm2: f64) -> f64 {
        let ad = (die_area.as_cm2() * defect_density_per_cm2).max(0.0);
        let y = match self {
            YieldModel::Poisson => (-ad).exp(),
            YieldModel::Murphy => {
                if ad == 0.0 {
                    1.0
                } else {
                    let t = (1.0 - (-ad).exp()) / ad;
                    t * t
                }
            }
            YieldModel::NegativeBinomial { alpha } => {
                let alpha = alpha.max(f64::MIN_POSITIVE);
                (1.0 + ad / alpha).powf(-alpha)
            }
            YieldModel::Fixed { value } => value,
        };
        y.clamp(0.0, 1.0)
    }
}

impl Default for YieldModel {
    /// Murphy's model, as used by ACT.
    fn default() -> Self {
        YieldModel::Murphy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const D0: f64 = 0.1;

    #[test]
    fn zero_area_yields_one() {
        for model in [
            YieldModel::Poisson,
            YieldModel::Murphy,
            YieldModel::NegativeBinomial { alpha: 3.0 },
        ] {
            assert!(
                (model.die_yield(Area::ZERO, D0) - 1.0).abs() < 1e-12,
                "{model:?}"
            );
        }
    }

    #[test]
    fn yield_decreases_with_area() {
        for model in [
            YieldModel::Poisson,
            YieldModel::Murphy,
            YieldModel::NegativeBinomial { alpha: 3.0 },
        ] {
            let small = model.die_yield(Area::from_mm2(50.0), D0);
            let large = model.die_yield(Area::from_mm2(600.0), D0);
            assert!(large < small, "{model:?}: {large} !< {small}");
        }
    }

    #[test]
    fn yield_decreases_with_defect_density() {
        let area = Area::from_mm2(300.0);
        for model in [
            YieldModel::Poisson,
            YieldModel::Murphy,
            YieldModel::NegativeBinomial { alpha: 3.0 },
        ] {
            assert!(
                model.die_yield(area, 0.3) < model.die_yield(area, 0.05),
                "{model:?}"
            );
        }
    }

    #[test]
    fn murphy_is_less_pessimistic_than_poisson() {
        let area = Area::from_mm2(600.0);
        assert!(YieldModel::Murphy.die_yield(area, D0) > YieldModel::Poisson.die_yield(area, D0));
    }

    #[test]
    fn negative_binomial_approaches_poisson_for_large_alpha() {
        let area = Area::from_mm2(400.0);
        let nb = YieldModel::NegativeBinomial { alpha: 1.0e6 }.die_yield(area, D0);
        let poisson = YieldModel::Poisson.die_yield(area, D0);
        assert!((nb - poisson).abs() < 1e-3);
    }

    #[test]
    fn fixed_ignores_area() {
        let model = YieldModel::Fixed { value: 0.875 };
        assert_eq!(model.die_yield(Area::from_mm2(10.0), D0), 0.875);
        assert_eq!(model.die_yield(Area::from_mm2(900.0), 5.0), 0.875);
    }

    #[test]
    fn results_are_probabilities() {
        for model in [
            YieldModel::Poisson,
            YieldModel::Murphy,
            YieldModel::NegativeBinomial { alpha: 2.0 },
            YieldModel::Fixed { value: 0.5 },
        ] {
            for mm2 in [0.0, 1.0, 100.0, 858.0, 2000.0] {
                let y = model.die_yield(Area::from_mm2(mm2), 0.2);
                assert!((0.0..=1.0).contains(&y), "{model:?} at {mm2} mm2 gave {y}");
            }
        }
    }

    #[test]
    fn default_is_murphy() {
        assert_eq!(YieldModel::default(), YieldModel::Murphy);
    }
}

//! Observability integration tests: the `/v1/trace` exposition, the
//! `GET /metrics` Prometheus text format, the `--trace-log` NDJSON
//! stream, and the request-id contract on error responses.
//!
//! The trace rings and the enable switch are process-global, and every
//! test in this binary runs in the same process against its own ephemeral
//! server — so assertions here are existential ("the evaluate request's
//! lifecycle spans exist, correctly shaped") rather than exact-count:
//! concurrent tests legitimately interleave their spans.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use gf_json::{FromJson, Value};
use gf_server::client::Client;
use gf_server::{Server, ServerConfig, ServerHandle};
use greenfpga::api::{MetricsResponse, TraceResponse};

fn spawn_with(config: ServerConfig) -> ServerHandle {
    Server::bind(config).expect("bind ephemeral server").spawn()
}

fn spawn_server() -> ServerHandle {
    spawn_with(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        idle_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    })
}

fn connect(handle: &ServerHandle) -> Client {
    Client::connect(handle.addr()).expect("connect to server")
}

const EVALUATE_BODY: &str =
    r#"{"domain":"dnn","point":{"applications":5,"lifetime_years":2.0,"volume":1000000}}"#;

/// Every span-name spelling the exposition may emit. Pinned here so a
/// renamed span class is a visible wire-format change, not drift.
const SPAN_NAMES: [&str; 17] = [
    "parse",
    "admission",
    "queue_wait",
    "compile",
    "execute",
    "serialize",
    "write",
    "cache_hit",
    "cache_miss",
    "job_queue_wait",
    "job_run",
    "tile_batch",
    "autotune",
    "cli_compile",
    "cli_eval",
    "catalog_resolve",
    "replay",
];

fn is_hex_id(id: &str) -> bool {
    id.len() == 16
        && id
            .chars()
            .all(|c| c.is_ascii_digit() || ('a'..='f').contains(&c))
}

#[test]
fn trace_route_has_the_golden_shape() {
    let handle = spawn_server();
    let mut client = connect(&handle);
    for _ in 0..2 {
        let (status, _) = client
            .post("/v1/evaluate", EVALUATE_BODY)
            .expect("evaluate round-trip");
        assert_eq!(status, 200);
    }
    let (status, body) = client.get("/v1/trace").expect("trace");
    assert_eq!(status, 200, "{body}");
    let trace = TraceResponse::from_json(&gf_json::parse(&body).unwrap()).expect("typed decode");
    assert!(trace.enabled, "tracing is on by default");
    assert!(!trace.spans.is_empty(), "recent traffic left spans");
    for span in &trace.spans {
        assert!(
            SPAN_NAMES.contains(&span.name.as_str()),
            "unknown span name '{}'",
            span.name
        );
        assert!(is_hex_id(&span.span_id), "span id '{}'", span.span_id);
        assert!(
            is_hex_id(&span.request_id),
            "request id '{}'",
            span.request_id
        );
    }
    // The evaluate requests left full lifecycles: some request id owns a
    // parse, an execute and a serialize span (write flushes after the
    // response, so it may still be in flight for the newest request).
    let mut by_request: HashMap<&str, Vec<&str>> = HashMap::new();
    for span in &trace.spans {
        if span.request_id != "0000000000000000" {
            by_request
                .entry(span.request_id.as_str())
                .or_default()
                .push(span.name.as_str());
        }
    }
    assert!(
        by_request.values().any(|names| {
            ["parse", "execute", "serialize"]
                .iter()
                .all(|phase| names.contains(phase))
        }),
        "no request shows the full parse/execute/serialize lifecycle: {by_request:?}"
    );
    handle.shutdown();
}

/// One parsed sample line of the exposition: name, raw label block
/// (braces stripped, may be empty) and value.
struct Sample {
    name: String,
    labels: String,
    value: f64,
}

/// Parses the text exposition, validating the grammar this parser relies
/// on: every sample belongs to a family announced by exactly one `# TYPE`
/// line *before* its first sample, every family is `gf_`-prefixed, every
/// counter family ends in `_total`, every value parses as a finite float.
/// Returns the samples plus the family -> kind map.
fn parse_exposition(text: &str) -> (Vec<Sample>, HashMap<String, String>) {
    let mut kinds: HashMap<String, String> = HashMap::new();
    let mut samples = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let family = parts.next().expect("family name").to_string();
            let kind = parts.next().expect("family kind").to_string();
            assert!(parts.next().is_none(), "trailing tokens: {line}");
            assert!(family.starts_with("gf_"), "unprefixed family {family}");
            assert!(
                matches!(kind.as_str(), "counter" | "gauge" | "histogram"),
                "unknown kind in {line}"
            );
            if kind == "counter" {
                assert!(family.ends_with("_total"), "counter {family} not *_total");
            }
            assert!(
                kinds.insert(family.clone(), kind).is_none(),
                "family {family} announced twice"
            );
            continue;
        }
        assert!(!line.starts_with('#'), "only # TYPE comments are emitted");
        let (series, value) = line.rsplit_once(' ').expect("sample has a value");
        let value: f64 = value.parse().expect("sample value parses");
        assert!(value.is_finite(), "non-finite sample in {line}");
        let (name, labels) = match series.split_once('{') {
            Some((name, labels)) => (
                name.to_string(),
                labels
                    .strip_suffix('}')
                    .expect("balanced braces")
                    .to_string(),
            ),
            None => (series.to_string(), String::new()),
        };
        let family = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|family| kinds.get(*family).map(String::as_str) == Some("histogram"))
            .unwrap_or(&name)
            .to_string();
        assert!(
            kinds.contains_key(&family),
            "sample {name} has no preceding # TYPE"
        );
        samples.push(Sample {
            name,
            labels,
            value,
        });
    }
    (samples, kinds)
}

fn sample_value(samples: &[Sample], name: &str, label_contains: &str) -> f64 {
    samples
        .iter()
        .find(|s| s.name == name && s.labels.contains(label_contains))
        .unwrap_or_else(|| panic!("no sample {name}{{{label_contains}}}"))
        .value
}

#[test]
fn prometheus_exposition_is_well_formed_and_matches_the_typed_registry() {
    let handle = spawn_server();
    let mut client = connect(&handle);
    for _ in 0..3 {
        let (status, _) = client
            .post("/v1/evaluate", EVALUATE_BODY)
            .expect("evaluate round-trip");
        assert_eq!(status, 200);
    }
    let (status, _) = client.post("/v1/evaluate", "{not json").unwrap();
    assert_eq!(status, 400);

    // Quiesced cross-check: the text page first, the typed registry
    // second. Neither request touches the evaluate route or the scenario
    // cache, so those counters must agree exactly across the two reads.
    let (status, text) = client.get("/metrics").expect("prometheus");
    assert_eq!(status, 200);
    let (samples, kinds) = parse_exposition(&text);
    let (status, body) = client.get("/v1/metrics").expect("typed metrics");
    assert_eq!(status, 200);
    let typed = MetricsResponse::from_json(&gf_json::parse(&body).unwrap()).unwrap();

    let evaluate = typed
        .routes
        .iter()
        .find(|r| r.route == "POST /v1/evaluate")
        .expect("evaluate route tracked");
    let route_label = r#"route="POST /v1/evaluate""#;
    assert_eq!(
        sample_value(&samples, "gf_route_requests_total", route_label),
        evaluate.requests as f64
    );
    assert_eq!(
        sample_value(
            &samples,
            "gf_route_errors_total",
            r#"route="POST /v1/evaluate",class="4xx""#
        ),
        evaluate.errors_4xx as f64
    );
    assert_eq!(
        sample_value(
            &samples,
            "gf_route_errors_total",
            r#"route="POST /v1/evaluate",class="5xx""#
        ),
        evaluate.errors_5xx as f64
    );
    assert_eq!(
        sample_value(&samples, "gf_route_bytes_in_total", route_label),
        evaluate.bytes_in as f64
    );
    let prom_hits: f64 = samples
        .iter()
        .filter(|s| s.name == "gf_cache_hits_total")
        .map(|s| s.value)
        .sum();
    let prom_misses: f64 = samples
        .iter()
        .filter(|s| s.name == "gf_cache_misses_total")
        .map(|s| s.value)
        .sum();
    assert_eq!(
        prom_hits,
        typed.cache_shards.iter().map(|s| s.hits).sum::<u64>() as f64
    );
    assert_eq!(
        prom_misses,
        typed.cache_shards.iter().map(|s| s.misses).sum::<u64>() as f64
    );

    // Histogram discipline on the evaluate route: bucket series cumulative
    // and non-decreasing, closed by +Inf, which equals _count and the
    // typed bucket total.
    let buckets: Vec<&Sample> = samples
        .iter()
        .filter(|s| s.name == "gf_route_latency_us_bucket" && s.labels.contains(route_label))
        .collect();
    assert_eq!(
        buckets.len(),
        evaluate.latency.bounds_us.len() + 1,
        "every typed bound plus +Inf"
    );
    for pair in buckets.windows(2) {
        assert!(
            pair[1].value >= pair[0].value,
            "bucket series must be cumulative"
        );
    }
    let inf = buckets.last().expect("+Inf closes the series");
    assert!(inf.labels.contains(r#"le="+Inf""#));
    assert_eq!(
        inf.value,
        sample_value(&samples, "gf_route_latency_us_count", route_label)
    );
    assert_eq!(
        inf.value,
        evaluate.latency.counts.iter().sum::<u64>() as f64
    );

    // The event-loop families exist with their label sets.
    assert_eq!(
        kinds.get("gf_loop_iteration_us").map(String::as_str),
        Some("histogram")
    );
    for kind in ["received", "coalesced"] {
        let value = sample_value(
            &samples,
            "gf_loop_wakeups_total",
            &format!(r#"kind="{kind}""#),
        );
        assert!(value >= 0.0);
    }
    for state in ["read", "dispatched", "stream", "write", "drain"] {
        sample_value(
            &samples,
            "gf_loop_connections",
            &format!(r#"state="{state}""#),
        );
    }
    assert!(sample_value(&samples, "gf_loop_iterations_total", "") >= 1.0);
    handle.shutdown();
}

#[test]
fn trace_log_streams_parseable_ndjson() {
    let path =
        std::env::temp_dir().join(format!("gf_trace_log_test_{}.ndjson", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let handle = spawn_with(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        trace_log: Some(path.clone()),
        ..ServerConfig::default()
    });
    let mut client = connect(&handle);
    for _ in 0..4 {
        let (status, _) = client
            .post("/v1/evaluate", EVALUATE_BODY)
            .expect("evaluate round-trip");
        assert_eq!(status, 200);
    }
    drop(client);
    // Shutdown stops the log writer, which drains the rings one final
    // time before the file is complete.
    handle.shutdown();

    let text = std::fs::read_to_string(&path).expect("trace log was written");
    let lines: Vec<&str> = text.lines().collect();
    assert!(!lines.is_empty(), "traffic must leave spans in the log");
    for line in &lines {
        let value = gf_json::parse(line)
            .unwrap_or_else(|e| panic!("trace-log line is not JSON ({e}): {line}"));
        let name = value.get("name").and_then(Value::as_str).expect("name");
        assert!(SPAN_NAMES.contains(&name), "unknown span '{name}' logged");
        for id_key in ["span", "request"] {
            let id = value.get(id_key).and_then(Value::as_str).expect("id");
            assert!(is_hex_id(id), "{id_key} id '{id}'");
        }
        for number_key in ["start_ns", "duration_ns", "aux", "thread"] {
            value
                .get(number_key)
                .and_then(Value::as_f64)
                .unwrap_or_else(|| panic!("missing {number_key}: {line}"));
        }
    }
    assert!(
        lines
            .iter()
            .any(|line| line.contains(r#""name":"execute""#)),
        "the evaluate executions reached the log"
    );
    let _ = std::fs::remove_file(&path);
}

/// Reads one `Content-Length`-framed raw response.
fn read_framed(stream: &mut TcpStream) -> Vec<u8> {
    let mut raw = Vec::new();
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        let n = stream.read(&mut chunk).expect("read head");
        assert!(n > 0, "closed inside head");
        raw.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&raw[..header_end]).expect("ASCII head");
    let content_length: usize = head
        .lines()
        .find_map(|line| {
            let (name, value) = line.split_once(':')?;
            name.trim()
                .eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse().expect("length"))
        })
        .expect("framed response");
    while raw.len() < header_end + content_length {
        let n = stream.read(&mut chunk).expect("read body");
        assert!(n > 0, "closed inside body");
        raw.extend_from_slice(&chunk[..n]);
    }
    raw
}

#[test]
fn error_responses_echo_the_request_id_in_header_and_body() {
    let handle = spawn_server();
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let body = "{not json";
    write!(
        stream,
        "POST /v1/evaluate HTTP/1.1\r\nHost: loopback\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let raw = read_framed(&mut stream);
    let text = String::from_utf8(raw).expect("UTF-8 response");
    assert!(text.starts_with("HTTP/1.1 400 "), "{text}");
    let header_id = text
        .lines()
        .find_map(|line| line.strip_prefix("x-request-id: "))
        .expect("400 carries x-request-id")
        .to_string();
    assert!(is_hex_id(&header_id), "header id '{header_id}'");
    let json_body = text.split("\r\n\r\n").nth(1).expect("body");
    let value = gf_json::parse(json_body).expect("error body is JSON");
    assert_eq!(
        value.get("request_id").and_then(Value::as_str),
        Some(header_id.as_str()),
        "body request_id echoes the header"
    );
    assert!(value.get("error").is_some(), "taxonomy error object kept");
    handle.shutdown();
}

//! Figure 4: total CFP versus the number of applications `N_app`
//! (1–12), with `T_i` = 2 years and `N_vol` = 1e6, for all three domains.
//!
//! Paper result: A2F crossover after 1 application (Crypto), 6 applications
//! (DNN) and 12 applications (ImgProc).

use gf_bench::paper_estimator;
use greenfpga::{csv_from_rows, Domain, OperatingPoint};

fn main() -> Result<(), greenfpga::GreenFpgaError> {
    let estimator = paper_estimator();
    let base = OperatingPoint {
        applications: 5,
        lifetime_years: 2.0,
        volume: 1_000_000,
    };
    let counts: Vec<u64> = (1..=12).collect();

    let mut rows = Vec::new();
    for domain in Domain::ALL {
        let series = estimator.sweep_applications(domain, &counts, base)?;
        println!("Figure 4 — {domain} (T_i = 2 y, N_vol = 1e6):");
        for point in &series.points {
            println!(
                "  N_app {:>2}: FPGA {:>10.1} t  ASIC {:>10.1} t  ratio {:.3}",
                point.x as u64,
                point.fpga.total().as_tons(),
                point.asic.total().as_tons(),
                point.ratio()
            );
            rows.push(vec![
                domain.to_string(),
                format!("{}", point.x as u64),
                format!("{:.3}", point.fpga.total().as_tons()),
                format!("{:.3}", point.asic.total().as_tons()),
                format!("{:.4}", point.ratio()),
            ]);
        }
        match estimator.crossover_in_applications(domain, 16, 2.0, 1_000_000)? {
            Some(n) => println!("  -> A2F crossover at {n} applications"),
            None => println!("  -> no A2F crossover within 16 applications"),
        }
        println!();
    }

    println!("CSV series (domain, n_app, fpga_t, asic_t, ratio):");
    println!(
        "{}",
        csv_from_rows(
            &["domain", "n_app", "fpga_tons", "asic_tons", "ratio"],
            &rows
        )
    );
    Ok(())
}

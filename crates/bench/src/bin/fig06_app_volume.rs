//! Figure 6: total CFP versus application volume `N_vol` (1e3–1e7), with
//! `N_app` = 5 and `T_i` = 2 years, for all three domains.
//!
//! Paper result: Crypto always favours the FPGA; ImgProc and DNN show F2A
//! crossovers at roughly 300K and 2M units respectively.

use gf_bench::paper_estimator;
use greenfpga::{csv_from_rows, log_spaced_volumes, Domain, OperatingPoint};

fn main() -> Result<(), greenfpga::GreenFpgaError> {
    let estimator = paper_estimator();
    let base = OperatingPoint {
        applications: 5,
        lifetime_years: 2.0,
        volume: 1_000_000,
    };
    let volumes = log_spaced_volumes(1_000, 10_000_000, 17);

    let mut rows = Vec::new();
    for domain in Domain::ALL {
        let series = estimator.sweep_volume(domain, &volumes, base)?;
        println!("Figure 6 — {domain} (N_app = 5, T_i = 2 y):");
        for point in &series.points {
            println!(
                "  N_vol {:>10}: FPGA {:>12.1} t  ASIC {:>12.1} t  ratio {:.3}",
                point.x as u64,
                point.fpga.total().as_tons(),
                point.asic.total().as_tons(),
                point.ratio()
            );
            rows.push(vec![
                domain.to_string(),
                format!("{}", point.x as u64),
                format!("{:.3}", point.fpga.total().as_tons()),
                format!("{:.3}", point.asic.total().as_tons()),
                format!("{:.4}", point.ratio()),
            ]);
        }
        match estimator.crossover_in_volume(domain, 5, 2.0, 1_000, 20_000_000)? {
            Some(c) => println!("  -> {} crossover at about {:.0} units", c.direction, c.at),
            None => println!("  -> no crossover: the same platform wins at every volume"),
        }
        println!();
    }

    println!("CSV series (domain, volume, fpga_t, asic_t, ratio):");
    println!(
        "{}",
        csv_from_rows(
            &["domain", "volume", "fpga_tons", "asic_tons", "ratio"],
            &rows
        )
    );
    Ok(())
}

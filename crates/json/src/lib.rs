//! # gf-json
//!
//! A small, real JSON subsystem for the offline GreenFPGA workspace: a
//! [`Value`] tree, a recursive-descent parser with depth and size limits
//! ([`parse`], [`parse_with`]), and a writer whose `f64` rendering
//! round-trips bit-for-bit ([`Value::to_json_string`]).
//!
//! The workspace's `serde` entry is a no-op derive stub (the offline build
//! cannot reach a registry), so every machine-readable artifact — bench
//! metrics, the `bench_gate` baseline, and the `greenfpga-serve` HTTP API —
//! goes through this crate instead of hand-concatenated strings.
//!
//! Design constraints, in order:
//!
//! 1. **Round-tripping**: `parse(v.to_json_string()) == v` for every value
//!    this crate can produce. Numbers are written with Rust's shortest
//!    round-trip `f64` formatting, so a parsed response compares
//!    *bit-identical* to the `f64` the producer serialized — the property
//!    the serving integration tests golden-match on.
//! 2. **Bounded input**: the parser enforces a nesting-depth limit and an
//!    input-size limit so a hostile request body cannot blow the stack or
//!    memory of a long-lived server.
//! 3. **Strict JSON**: no NaN/Infinity literals, no trailing commas, no
//!    comments, no unquoted keys. Numbers that overflow `f64` are rejected
//!    rather than silently becoming infinite.
//!
//! ## Example
//!
//! ```
//! use gf_json::{parse, Value};
//!
//! let value = parse(r#"{"domain": "dnn", "points": [1, 2.5e0]}"#)?;
//! assert_eq!(value.get("domain").and_then(Value::as_str), Some("dnn"));
//! let back = parse(&value.to_json_string()?)?;
//! assert_eq!(back, value);
//! # Ok::<(), gf_json::JsonError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod parse;
mod write;

use std::fmt;

pub use parse::{parse, parse_with, ParseLimits};

/// A JSON document: the result of parsing, and the input to writing.
///
/// Objects preserve insertion order (they are association lists, not hash
/// maps): serialized output is deterministic, and round-trips reproduce the
/// source layout. Duplicate keys are allowed by the parser — [`Value::get`]
/// returns the **last** occurrence, matching the common
/// last-value-wins convention.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number. The writer rejects non-finite contents.
    Number(f64),
    /// A string.
    String(String),
    /// `[ ... ]`.
    Array(Vec<Value>),
    /// `{ ... }` as an insertion-ordered association list.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The member of an object by key (last occurrence wins), or `None` for
    /// a missing key or a non-object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The element of an array by index, or `None` for a non-array or an
    /// out-of-range index.
    pub fn index(&self, i: usize) -> Option<&Value> {
        match self {
            Value::Array(items) => items.get(i),
            _ => None,
        }
    }

    /// The boolean content, or `None` for other variants.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric content, or `None` for other variants.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric content as an exact unsigned integer: `None` unless the
    /// number is integral, non-negative and at most 2⁵³ (beyond which `f64`
    /// cannot represent every integer and a silent rounding would corrupt
    /// counts).
    pub fn as_u64(&self) -> Option<u64> {
        const MAX_EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
        match self {
            Value::Number(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= MAX_EXACT => Some(*n as u64),
            _ => None,
        }
    }

    /// The string content, or `None` for other variants.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The array items, or `None` for other variants.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object members in insertion order, or `None` for other variants.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(members) => Some(members),
            _ => None,
        }
    }

    /// `true` for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Serializes compactly (no interstitial whitespace).
    ///
    /// # Errors
    ///
    /// Returns [`JsonError::NonFinite`] when any contained number is NaN or
    /// infinite — JSON has no lexeme for them, and emitting `null` instead
    /// would silently break round-tripping.
    pub fn to_json_string(&self) -> Result<String, JsonError> {
        write::to_string(self, false)
    }

    /// Serializes with two-space indentation, for human-facing artifacts
    /// like the committed `BENCH_eval.json` baseline.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Value::to_json_string`].
    pub fn to_json_string_pretty(&self) -> Result<String, JsonError> {
        write::to_string(self, true)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Number(n)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Number(n as f64)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Number(n as f64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Value {
        Value::Array(items)
    }
}

/// Builds a [`Value::Object`] from `(key, value)` pairs — the ergonomic
/// constructor the response builders use.
pub fn object<K: Into<String>, V: Into<Value>>(members: impl IntoIterator<Item = (K, V)>) -> Value {
    Value::Object(
        members
            .into_iter()
            .map(|(k, v)| (k.into(), v.into()))
            .collect(),
    )
}

/// Builds a [`Value::Array`] from anything convertible to values.
pub fn array<V: Into<Value>>(items: impl IntoIterator<Item = V>) -> Value {
    Value::Array(items.into_iter().map(Into::into).collect())
}

/// Errors raised while parsing, writing, or decoding JSON.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum JsonError {
    /// The input violated the JSON grammar.
    Syntax {
        /// Byte offset of the offending input.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// Nesting exceeded the configured depth limit.
    DepthLimit {
        /// The limit that was exceeded.
        limit: usize,
    },
    /// The input exceeded the configured size limit.
    SizeLimit {
        /// The limit that was exceeded, in bytes.
        limit: usize,
    },
    /// A number was NaN or infinite (on write), or overflowed `f64` (on
    /// parse).
    NonFinite,
    /// A well-formed document did not match the expected schema
    /// (`from_json` decoding).
    Schema {
        /// Which field or element was wrong.
        at: String,
        /// What was expected.
        message: String,
    },
}

impl JsonError {
    /// Constructs a [`JsonError::Schema`] error — the helper every
    /// `FromJson` impl leans on.
    pub fn schema(at: impl Into<String>, message: impl Into<String>) -> JsonError {
        JsonError::Schema {
            at: at.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::Syntax { offset, message } => {
                write!(f, "JSON syntax error at byte {offset}: {message}")
            }
            JsonError::DepthLimit { limit } => {
                write!(f, "JSON nesting exceeds the depth limit of {limit}")
            }
            JsonError::SizeLimit { limit } => {
                write!(f, "JSON input exceeds the size limit of {limit} bytes")
            }
            JsonError::NonFinite => f.write_str("JSON cannot represent NaN or infinite numbers"),
            JsonError::Schema { at, message } => {
                write!(f, "JSON schema error at {at}: {message}")
            }
        }
    }
}

impl std::error::Error for JsonError {}

/// Serialization to a JSON [`Value`].
pub trait ToJson {
    /// Renders `self` as a JSON value.
    fn to_json(&self) -> Value;
}

/// Deserialization from a JSON [`Value`].
pub trait FromJson: Sized {
    /// Decodes `self` from a JSON value.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError::Schema`] when the value does not match.
    fn from_json(value: &Value) -> Result<Self, JsonError>;
}

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::Number(*self)
    }
}

impl FromJson for f64 {
    fn from_json(value: &Value) -> Result<f64, JsonError> {
        value
            .as_f64()
            .ok_or_else(|| JsonError::schema("number", "expected a number"))
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Value {
        Value::Number(*self as f64)
    }
}

impl FromJson for u64 {
    fn from_json(value: &Value) -> Result<u64, JsonError> {
        value
            .as_u64()
            .ok_or_else(|| JsonError::schema("number", "expected a non-negative integer ≤ 2^53"))
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(value: &Value) -> Result<bool, JsonError> {
        value
            .as_bool()
            .ok_or_else(|| JsonError::schema("bool", "expected true or false"))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl FromJson for String {
    fn from_json(value: &Value) -> Result<String, JsonError> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| JsonError::schema("string", "expected a string"))
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(value: &Value) -> Result<Vec<T>, JsonError> {
        value
            .as_array()
            .ok_or_else(|| JsonError::schema("array", "expected an array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_variants() {
        let doc = object([
            ("flag", Value::Bool(true)),
            ("n", Value::Number(2.5)),
            ("s", Value::from("hi")),
            ("list", array([1.0, 2.0])),
            ("nothing", Value::Null),
        ]);
        assert_eq!(doc.get("flag").and_then(Value::as_bool), Some(true));
        assert_eq!(doc.get("n").and_then(Value::as_f64), Some(2.5));
        assert_eq!(doc.get("s").and_then(Value::as_str), Some("hi"));
        assert_eq!(
            doc.get("list")
                .and_then(|v| v.index(1))
                .and_then(Value::as_f64),
            Some(2.0)
        );
        assert!(doc.get("nothing").is_some_and(Value::is_null));
        assert!(doc.get("missing").is_none());
        assert!(Value::Null.get("x").is_none());
        assert!(Value::Null.index(0).is_none());
        assert_eq!(doc.as_object().map(<[_]>::len), Some(5));
    }

    #[test]
    fn duplicate_keys_resolve_to_the_last() {
        let doc = object([("k", 1.0), ("k", 2.0)]);
        assert_eq!(doc.get("k").and_then(Value::as_f64), Some(2.0));
    }

    #[test]
    fn u64_conversion_is_exact_or_nothing() {
        assert_eq!(Value::Number(5.0).as_u64(), Some(5));
        assert_eq!(Value::Number(0.0).as_u64(), Some(0));
        assert_eq!(Value::Number(2.5).as_u64(), None);
        assert_eq!(Value::Number(-1.0).as_u64(), None);
        assert_eq!(
            Value::Number(9.007_199_254_740_992e15).as_u64(),
            Some(1 << 53)
        );
        assert_eq!(Value::Number(1e16).as_u64(), None);
        assert_eq!(Value::Bool(true).as_u64(), None);
    }

    #[test]
    fn trait_round_trips_for_primitives() {
        assert_eq!(f64::from_json(&2.5f64.to_json()).unwrap(), 2.5);
        assert_eq!(u64::from_json(&7u64.to_json()).unwrap(), 7);
        assert!(bool::from_json(&true.to_json()).unwrap());
        assert_eq!(String::from_json(&"x".to_string().to_json()).unwrap(), "x");
        let v: Vec<f64> = vec![1.0, 2.0];
        assert_eq!(Vec::<f64>::from_json(&v.to_json()).unwrap(), v);
        assert!(f64::from_json(&Value::Null).is_err());
        assert!(u64::from_json(&Value::Number(0.5)).is_err());
        assert!(Vec::<f64>::from_json(&Value::Bool(true)).is_err());
    }

    #[test]
    fn error_display_names_the_problem() {
        assert!(JsonError::schema("point.volume", "expected an integer")
            .to_string()
            .contains("point.volume"));
        assert!(JsonError::DepthLimit { limit: 4 }.to_string().contains('4'));
        assert!(JsonError::SizeLimit { limit: 9 }.to_string().contains('9'));
        assert!(JsonError::NonFinite.to_string().contains("NaN"));
        assert!(JsonError::Syntax {
            offset: 3,
            message: "bad".into()
        }
        .to_string()
        .contains("byte 3"));
    }
}

//! Long-horizon evaluation beyond the chip lifetime (Fig. 9 of the paper).
//!
//! The paper's experiment E extends the evaluation window past the FPGA's
//! physical lifetime (15 years): when the window exceeds the chip lifetime a
//! *new* FPGA fleet must be manufactured, so the cumulative FPGA footprint
//! jumps at the 15- and 30-year marks. The ASIC curve shows no such jump
//! because a new ASIC is built per application anyway.

use serde::{Deserialize, Serialize};

use gf_units::{Carbon, ChipCount, GateCount, TimeSpan};

use crate::{Application, Domain, Estimator, GreenFpgaError};

/// One yearly sample of the long-horizon scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LongHorizonPoint {
    /// Years since the start of the evaluation (1-based: the sample covers
    /// everything up to and including this year).
    pub year: u64,
    /// Cumulative FPGA-platform footprint.
    pub fpga_cumulative: Carbon,
    /// Cumulative ASIC-platform footprint.
    pub asic_cumulative: Carbon,
    /// Number of FPGA fleets manufactured so far (1 + replacements).
    pub fpga_fleets_built: u64,
}

impl LongHorizonPoint {
    /// FPGA cumulative footprint divided by the ASIC's.
    pub fn ratio(&self) -> f64 {
        self.fpga_cumulative
            .ratio_to(self.asic_cumulative)
            .unwrap_or(f64::INFINITY)
    }
}

/// A multi-decade deployment: one new application per application lifetime,
/// with the FPGA fleet replaced every chip lifetime.
///
/// # Examples
///
/// ```
/// use greenfpga::{Domain, Estimator, LongHorizonScenario};
///
/// let scenario = LongHorizonScenario::paper_fig9(Domain::Dnn);
/// let series = scenario.run(&Estimator::default())?;
/// assert_eq!(series.len(), 40);
/// // Cumulative footprints never decrease.
/// assert!(series.windows(2).all(|w| w[1].fpga_cumulative >= w[0].fpga_cumulative));
/// # Ok::<(), greenfpga::GreenFpgaError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LongHorizonScenario {
    /// Application domain evaluated.
    pub domain: Domain,
    /// Total evaluation window in whole years.
    pub evaluation_years: u64,
    /// Lifetime of each application in whole years (the paper uses 1 year).
    pub application_lifetime_years: u64,
    /// Deployment volume of every application.
    pub volume: u64,
}

impl LongHorizonScenario {
    /// The paper's Fig. 9 setup: a 40-year window, 1-year applications, one
    /// million devices, FPGA chip lifetime taken from the estimator
    /// parameters (15 years by default).
    pub fn paper_fig9(domain: Domain) -> Self {
        LongHorizonScenario {
            domain,
            evaluation_years: 40,
            application_lifetime_years: 1,
            volume: 1_000_000,
        }
    }

    /// Runs the scenario, producing one cumulative sample per year.
    ///
    /// # Errors
    ///
    /// Returns [`GreenFpgaError::InvalidRange`] when the evaluation window
    /// or application lifetime is zero, and propagates model errors.
    pub fn run(&self, estimator: &Estimator) -> Result<Vec<LongHorizonPoint>, GreenFpgaError> {
        if self.evaluation_years == 0 {
            return Err(GreenFpgaError::InvalidRange {
                what: "evaluation years",
            });
        }
        if self.application_lifetime_years == 0 {
            return Err(GreenFpgaError::InvalidRange {
                what: "application lifetime",
            });
        }
        let calibration = self.domain.calibration();
        let fpga = calibration.fpga_spec()?;
        let asic = calibration.asic_spec()?;
        let chip_lifetime_years = estimator
            .params()
            .fpga_chip_lifetime()
            .as_years()
            .max(1.0)
            .round() as u64;

        let one_year_app = |index: u64| -> Result<Application, GreenFpgaError> {
            Application::new(
                format!("{}-year-{index}", self.domain),
                calibration.reference_asic_gates(),
                TimeSpan::from_years(1.0),
                ChipCount::new(self.volume),
            )
        };

        let fleet_chips = self.volume
            * fpga.fpgas_for_application(GateCount::new(calibration.reference_asic_gates().get()));
        let fpga_fleet_embodied = estimator
            .fpga_embodied(&fpga, &calibration.fpga_staffing, fleet_chips)?
            .total();

        let mut points = Vec::with_capacity(self.evaluation_years as usize);
        let mut fpga_cumulative = Carbon::ZERO;
        let mut asic_cumulative = Carbon::ZERO;
        let mut fleets_built = 0u64;

        for year in 1..=self.evaluation_years {
            // A new FPGA fleet is needed in year 1 and whenever the previous
            // fleet has reached the end of its physical lifetime.
            if (year - 1) % chip_lifetime_years == 0 {
                fpga_cumulative += fpga_fleet_embodied;
                fleets_built += 1;
            }

            // One year of deployment. A new application starts every
            // `application_lifetime_years`; the ASIC platform then pays a
            // fresh embodied cost, the FPGA platform only a reconfiguration.
            let app = one_year_app(year)?;
            if (year - 1) % self.application_lifetime_years == 0 {
                asic_cumulative += estimator
                    .asic_embodied_for(&asic, &calibration.asic_staffing, &app)?
                    .total();
                fpga_cumulative += estimator.fpga_deployment_for(&fpga, &app)?.app_dev;
            }
            fpga_cumulative += estimator.fpga_deployment_for(&fpga, &app)?.operation;
            asic_cumulative += estimator.asic_deployment_for(&asic, &app)?.total();

            points.push(LongHorizonPoint {
                year,
                fpga_cumulative,
                asic_cumulative,
                fpga_fleets_built: fleets_built,
            });
        }
        Ok(points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(domain: Domain) -> Vec<LongHorizonPoint> {
        LongHorizonScenario::paper_fig9(domain)
            .run(&Estimator::default())
            .unwrap()
    }

    #[test]
    fn produces_one_point_per_year() {
        let series = run(Domain::Dnn);
        assert_eq!(series.len(), 40);
        assert_eq!(series.first().unwrap().year, 1);
        assert_eq!(series.last().unwrap().year, 40);
    }

    #[test]
    fn cumulative_footprints_are_monotone() {
        for domain in Domain::ALL {
            let series = run(domain);
            for pair in series.windows(2) {
                assert!(
                    pair[1].fpga_cumulative >= pair[0].fpga_cumulative,
                    "{domain}"
                );
                assert!(
                    pair[1].asic_cumulative >= pair[0].asic_cumulative,
                    "{domain}"
                );
            }
        }
    }

    #[test]
    fn fpga_fleet_is_replaced_at_chip_lifetime_boundaries() {
        let series = run(Domain::Dnn);
        // Default chip lifetime is 15 years: fleets at years 1, 16, 31.
        assert_eq!(series[0].fpga_fleets_built, 1);
        assert_eq!(series[14].fpga_fleets_built, 1);
        assert_eq!(series[15].fpga_fleets_built, 2);
        assert_eq!(series[29].fpga_fleets_built, 2);
        assert_eq!(series[30].fpga_fleets_built, 3);
        assert_eq!(series[39].fpga_fleets_built, 3);
    }

    #[test]
    fn fpga_curve_jumps_at_replacement_years() {
        let series = run(Domain::Dnn);
        let yearly_increase: Vec<f64> = series
            .windows(2)
            .map(|w| (w[1].fpga_cumulative - w[0].fpga_cumulative).as_kg())
            .collect();
        // Increase from year 15→16 (index 14) includes a whole new fleet and
        // must dwarf the ordinary year-over-year increase before it.
        assert!(yearly_increase[14] > 3.0 * yearly_increase[13]);
        assert!(yearly_increase[29] > 3.0 * yearly_increase[28]);
        // The ASIC curve shows no such jump: its increases stay comparable.
        let asic_increase: Vec<f64> = series
            .windows(2)
            .map(|w| (w[1].asic_cumulative - w[0].asic_cumulative).as_kg())
            .collect();
        let max = asic_increase.iter().cloned().fold(0.0, f64::max);
        let min = asic_increase.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max < 1.5 * min);
    }

    #[test]
    fn crypto_stays_fpga_favorable_despite_replacements() {
        // Paper: for Crypto (and DNN) the jumps do not change the choice of
        // the more sustainable platform.
        let series = run(Domain::Crypto);
        assert!(series.iter().skip(2).all(|p| p.ratio() < 1.0));
    }

    #[test]
    fn imgproc_sees_multiple_crossovers_over_the_long_horizon() {
        // Paper Fig. 9: for ImgProc the fleet-replacement jumps lead to
        // multiple A2F and F2A crossovers as the number of years grows — the
        // ratio is above 1 early on, dips below 1 once enough applications
        // have amortized the fleet, and is pushed back up by replacements.
        let series = run(Domain::ImageProcessing);
        assert!(series.first().unwrap().ratio() > 1.0);
        assert!(series.iter().any(|p| p.ratio() < 1.0));
        let crossings = series
            .windows(2)
            .filter(|w| (w[0].ratio() < 1.0) != (w[1].ratio() < 1.0))
            .count();
        assert!(
            crossings >= 1,
            "expected at least one crossover, saw {crossings}"
        );
    }

    #[test]
    fn degenerate_scenarios_are_rejected() {
        let mut s = LongHorizonScenario::paper_fig9(Domain::Dnn);
        s.evaluation_years = 0;
        assert!(s.run(&Estimator::default()).is_err());
        let mut s = LongHorizonScenario::paper_fig9(Domain::Dnn);
        s.application_lifetime_years = 0;
        assert!(s.run(&Estimator::default()).is_err());
    }

    #[test]
    fn shorter_chip_lifetime_means_more_fleets() {
        let estimator = Estimator::new(
            crate::EstimatorParams::paper_defaults()
                .with_fpga_chip_lifetime(TimeSpan::from_years(10.0)),
        );
        let series = LongHorizonScenario::paper_fig9(Domain::Dnn)
            .run(&estimator)
            .unwrap();
        assert_eq!(series.last().unwrap().fpga_fleets_built, 4); // years 1, 11, 21, 31
    }
}

//! Chip, FPGA and ASIC descriptions.

use serde::{Deserialize, Serialize};

use gf_act::TechnologyNode;
use gf_units::{Area, GateCount, Mass, Power, TimeSpan};

use crate::GreenFpgaError;

/// Physical description of a silicon device (either an ASIC or an FPGA).
///
/// # Examples
///
/// ```
/// use greenfpga::ChipSpec;
/// use greenfpga::act::TechnologyNode;
/// use gf_units::{Area, Power};
///
/// // IndustryFPGA1 of the paper (Agilex-7-class).
/// let chip = ChipSpec::new("IndustryFPGA1", Area::from_mm2(380.0), Power::from_watts(160.0),
///     TechnologyNode::N14)?;
/// assert!(chip.gates().get() > 1_000_000_000);
/// # Ok::<(), greenfpga::GreenFpgaError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipSpec {
    name: String,
    area: Area,
    tdp: Power,
    node: TechnologyNode,
    gates: GateCount,
    packaged_mass: Mass,
}

impl ChipSpec {
    /// Grams of packaged mass per mm² of die — a lidded flip-chip package
    /// plus substrate weighs roughly an order of magnitude more than the die.
    const PACKAGED_GRAMS_PER_MM2: f64 = 0.12;

    /// Creates a chip description.
    ///
    /// The equivalent gate count defaults to the node's logic density times
    /// the die area, and the packaged mass to a package-proportional
    /// estimate; both can be overridden with
    /// [`with_gates`](Self::with_gates) / [`with_packaged_mass`](Self::with_packaged_mass).
    ///
    /// # Errors
    ///
    /// Returns [`GreenFpgaError::InvalidApplication`] when the area or TDP
    /// is not positive and finite.
    pub fn new(
        name: impl Into<String>,
        area: Area,
        tdp: Power,
        node: TechnologyNode,
    ) -> Result<Self, GreenFpgaError> {
        if area.as_mm2() <= 0.0 || !area.is_finite() {
            return Err(GreenFpgaError::InvalidApplication {
                field: "area",
                reason: format!("die area must be positive and finite, got {area}"),
            });
        }
        if tdp.as_watts() <= 0.0 || !tdp.is_finite() {
            return Err(GreenFpgaError::InvalidApplication {
                field: "tdp",
                reason: format!("TDP must be positive and finite, got {tdp}"),
            });
        }
        let gates = GateCount::new(node.parameters().gates_for_area(area.as_mm2()).round() as u64);
        let packaged_mass = Mass::from_grams(area.as_mm2() * Self::PACKAGED_GRAMS_PER_MM2 + 10.0);
        Ok(ChipSpec {
            name: name.into(),
            area,
            tdp,
            node,
            gates,
            packaged_mass,
        })
    }

    /// Overrides the equivalent logic-gate count.
    pub fn with_gates(mut self, gates: GateCount) -> Self {
        self.gates = gates;
        self
    }

    /// Overrides the packaged mass used by the end-of-life model.
    pub fn with_packaged_mass(mut self, mass: Mass) -> Self {
        self.packaged_mass = mass;
        self
    }

    /// Device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Die area.
    pub fn area(&self) -> Area {
        self.area
    }

    /// Thermal design power.
    pub fn tdp(&self) -> Power {
        self.tdp
    }

    /// Fabrication node.
    pub fn node(&self) -> TechnologyNode {
        self.node
    }

    /// Equivalent logic gates on the die.
    pub fn gates(&self) -> GateCount {
        self.gates
    }

    /// Mass of the packaged part (die + package), used by the EOL model.
    pub fn packaged_mass(&self) -> Mass {
        self.packaged_mass
    }
}

/// An FPGA product: a [`ChipSpec`] plus its usable logic capacity and the
/// time needed to (re)configure one deployed device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FpgaSpec {
    chip: ChipSpec,
    capacity: GateCount,
    configuration_time: TimeSpan,
}

impl FpgaSpec {
    /// Fraction of a fabric's raw equivalent gates that is usable by
    /// application logic (routing, configuration and hard blocks take the
    /// rest).
    const USABLE_CAPACITY_FRACTION: f64 = 0.7;

    /// Creates an FPGA description from its chip; capacity defaults to 70%
    /// of the die's equivalent gates and configuration time to one minute.
    pub fn new(chip: ChipSpec) -> Self {
        let capacity = GateCount::new(
            (chip.gates().get() as f64 * Self::USABLE_CAPACITY_FRACTION).round() as u64,
        );
        FpgaSpec {
            chip,
            capacity,
            configuration_time: TimeSpan::from_seconds(60.0),
        }
    }

    /// Overrides the usable logic capacity.
    pub fn with_capacity(mut self, capacity: GateCount) -> Self {
        self.capacity = capacity;
        self
    }

    /// Overrides the per-device configuration time.
    pub fn with_configuration_time(mut self, time: TimeSpan) -> Self {
        self.configuration_time = time;
        self
    }

    /// The underlying chip.
    pub fn chip(&self) -> &ChipSpec {
        &self.chip
    }

    /// Usable logic capacity in equivalent gates.
    pub fn capacity(&self) -> GateCount {
        self.capacity
    }

    /// Time to configure one deployed device with a new bitstream.
    pub fn configuration_time(&self) -> TimeSpan {
        self.configuration_time
    }

    /// Number of FPGAs of this type needed to host an application of
    /// `application_gates` equivalent gates (the paper's `N_FPGA`).
    pub fn fpgas_for_application(&self, application_gates: GateCount) -> u64 {
        application_gates.fpgas_required(self.capacity).max(1)
    }
}

/// An ASIC product: a [`ChipSpec`] that serves exactly one application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AsicSpec {
    chip: ChipSpec,
}

impl AsicSpec {
    /// Creates an ASIC description.
    pub fn new(chip: ChipSpec) -> Self {
        AsicSpec { chip }
    }

    /// The underlying chip.
    pub fn chip(&self) -> &ChipSpec {
        &self.chip
    }
}

impl From<ChipSpec> for AsicSpec {
    fn from(chip: ChipSpec) -> Self {
        AsicSpec::new(chip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chip() -> ChipSpec {
        ChipSpec::new(
            "test-fpga",
            Area::from_mm2(380.0),
            Power::from_watts(160.0),
            TechnologyNode::N14,
        )
        .unwrap()
    }

    #[test]
    fn gates_default_from_node_density() {
        let c = chip();
        let expected = TechnologyNode::N14.parameters().gates_for_area(380.0);
        assert_eq!(c.gates().get(), expected.round() as u64);
        let overridden = c.clone().with_gates(GateCount::from_millions(100.0));
        assert_eq!(overridden.gates(), GateCount::from_millions(100.0));
    }

    #[test]
    fn packaged_mass_scales_with_area() {
        let small = ChipSpec::new(
            "s",
            Area::from_mm2(50.0),
            Power::from_watts(1.0),
            TechnologyNode::N10,
        )
        .unwrap();
        let large = ChipSpec::new(
            "l",
            Area::from_mm2(600.0),
            Power::from_watts(1.0),
            TechnologyNode::N10,
        )
        .unwrap();
        assert!(large.packaged_mass() > small.packaged_mass());
        assert!(small.packaged_mass().as_grams() > 10.0);
        let fixed = small.clone().with_packaged_mass(Mass::from_grams(42.0));
        assert_eq!(fixed.packaged_mass(), Mass::from_grams(42.0));
    }

    #[test]
    fn invalid_specs_are_rejected() {
        assert!(ChipSpec::new(
            "bad",
            Area::ZERO,
            Power::from_watts(1.0),
            TechnologyNode::N10
        )
        .is_err());
        assert!(ChipSpec::new(
            "bad",
            Area::from_mm2(10.0),
            Power::ZERO,
            TechnologyNode::N10
        )
        .is_err());
        assert!(ChipSpec::new(
            "bad",
            Area::from_mm2(f64::NAN),
            Power::from_watts(1.0),
            TechnologyNode::N10
        )
        .is_err());
    }

    #[test]
    fn fpga_capacity_defaults_to_seventy_percent() {
        let fpga = FpgaSpec::new(chip());
        let expected = (chip().gates().get() as f64 * 0.7).round() as u64;
        assert_eq!(fpga.capacity().get(), expected);
        assert!((fpga.configuration_time().as_seconds() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn fpgas_for_application_uses_ceiling_and_at_least_one() {
        let fpga = FpgaSpec::new(chip()).with_capacity(GateCount::new(1000));
        assert_eq!(fpga.fpgas_for_application(GateCount::new(1)), 1);
        assert_eq!(fpga.fpgas_for_application(GateCount::new(1000)), 1);
        assert_eq!(fpga.fpgas_for_application(GateCount::new(1001)), 2);
        assert_eq!(fpga.fpgas_for_application(GateCount::new(5500)), 6);
        // Even an "empty" application occupies one FPGA once deployed.
        assert_eq!(fpga.fpgas_for_application(GateCount::ZERO), 1);
    }

    #[test]
    fn asic_wraps_chip() {
        let asic: AsicSpec = chip().into();
        assert_eq!(asic.chip().name(), "test-fpga");
        assert_eq!(asic.chip().node(), TechnologyNode::N14);
        assert_eq!(asic.chip().area(), Area::from_mm2(380.0));
        assert_eq!(asic.chip().tdp(), Power::from_watts(160.0));
    }

    #[test]
    fn builders_preserve_chip() {
        let fpga = FpgaSpec::new(chip())
            .with_configuration_time(TimeSpan::from_seconds(120.0))
            .with_capacity(GateCount::from_millions(900.0));
        assert_eq!(fpga.chip().name(), "test-fpga");
        assert_eq!(fpga.capacity(), GateCount::from_millions(900.0));
        assert!((fpga.configuration_time().as_seconds() - 120.0).abs() < 1e-9);
    }
}

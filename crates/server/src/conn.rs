//! Per-connection state for the event loop: the lifecycle machine, the
//! buffers that let I/O resume mid-message, and the token slab that maps
//! readiness reports back to connections.
//!
//! One connection walks `Read → Dispatched → (Write | Stream) →
//! (Read | Drain)`:
//!
//! * **Read** — bytes accumulate in `inbuf`; the [`RequestAssembler`]
//!   consumes them incrementally (head, then body), surviving any
//!   fragmentation the network produces.
//! * **Dispatched** — a complete request was handed to the worker pool;
//!   read interest is dropped so the socket cannot spin the loop while the
//!   engine works. The response comes back through the completion queue.
//! * **Stream** — a chunked response is in flight: the worker evaluates
//!   row-blocks and sends body fragments through a bounded channel; the
//!   loop chunk-encodes them into `outbuf` as the peer drains it, so the
//!   resident response is block-sized, never whole-result sized.
//! * **Write** — `outbuf[outpos..]` drains across however many
//!   writable-readiness rounds the peer's receive window allows.
//! * **Drain** — the response is flushed and the connection is closing:
//!   sending is shut down and already-received bytes are discarded until
//!   EOF (or a short deadline), so the kernel never answers our own
//!   buffered response with an RST.
//!
//! Tokens are `generation << 32 | slot`: a completion or timer that
//! outlives its connection can never touch the slot's next tenant, because
//! the generation no longer matches.

use std::net::TcpStream;
use std::time::Instant;

use crate::http::RequestAssembler;
use crate::poll::Interest;

/// Where a connection is in its request/response lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ConnState {
    /// Accumulating request bytes.
    Read,
    /// A request is with the worker pool; awaiting its completion.
    Dispatched,
    /// A chunked response is streaming: a worker pumps body fragments
    /// through the connection's [`StreamState`] channel while the loop
    /// relays them to the socket, never buffering more than the
    /// backpressure bound.
    Stream,
    /// Draining `outbuf` to the peer.
    Write,
    /// Response flushed, send side shut; discarding until EOF.
    Drain,
}

/// The loop-side half of one in-flight streamed response.
pub(crate) struct StreamState {
    /// Body fragments arriving from the worker (bounded, so a peer that
    /// stops reading blocks the *worker*, not server memory).
    pub rx: std::sync::mpsc::Receiver<crate::StreamEvent>,
    /// Metrics-registry index of the streaming route.
    pub route: usize,
    /// When the request was parsed (for the latency histogram).
    pub started: Instant,
    /// Request body size (for the metrics byte counters).
    pub bytes_in: u64,
    /// Body payload bytes relayed so far (chunk framing excluded).
    pub bytes_out: u64,
}

/// One live connection.
pub(crate) struct Conn {
    /// The non-blocking socket.
    pub stream: TcpStream,
    /// Lifecycle position.
    pub state: ConnState,
    /// Received-but-unparsed bytes (including pipelined followers).
    pub inbuf: Vec<u8>,
    /// Incremental parser state for the request in flight.
    pub assembler: RequestAssembler,
    /// Encoded response bytes awaiting the peer.
    pub outbuf: Vec<u8>,
    /// How much of `outbuf` has been written so far.
    pub outpos: usize,
    /// Close (via `Drain`) once `outbuf` empties.
    pub close_after_write: bool,
    /// The interest set currently registered with the driver.
    pub interest: Interest,
    /// When the current state gives up (`None` while dispatched: the
    /// engine owes a completion, the peer owes nothing).
    pub deadline: Option<Instant>,
    /// Whether the timer heap holds an entry for this connection. Lets the
    /// loop re-arm deadlines by just moving `deadline` — the standing heap
    /// entry re-pushes itself when it pops early — instead of pushing one
    /// entry per request.
    pub timer_queued: bool,
    /// Whether the per-request header deadline has been armed, so a
    /// byte-trickling peer cannot keep resetting its own clock.
    pub header_deadline_armed: bool,
    /// Whether this connection occupies an admission slot (rejected
    /// connections do not — they only live long enough to carry a `503`).
    pub counted_live: bool,
    /// The in-flight streamed response, while `state` is
    /// [`ConnState::Stream`].
    pub streaming: Option<StreamState>,
    /// Trace id of the request currently owning this connection; assigned
    /// when its first byte arrives, echoed in `x-request-id`, and reset
    /// when the next request begins.
    pub request_id: u64,
    /// Start timestamp (`gf_trace::now_ticks`) of the in-flight response
    /// write — the dispatcher's serialize-end boundary stamp, so the
    /// `write` span covers encoding plus every readiness round the drain
    /// takes. Zero when no write span is open.
    pub write_started_ticks: u64,
    /// Request id the open write span belongs to — kept apart from
    /// `request_id`, which a pipelined follower may already have claimed
    /// by the time the coalesced flush completes.
    pub write_request_id: u64,
}

impl Conn {
    /// A freshly accepted connection, ready to read its first request.
    pub fn new(stream: TcpStream, deadline: Instant) -> Conn {
        Conn {
            stream,
            state: ConnState::Read,
            inbuf: Vec::new(),
            assembler: RequestAssembler::default(),
            outbuf: Vec::new(),
            outpos: 0,
            close_after_write: false,
            interest: Interest::READ,
            deadline: Some(deadline),
            timer_queued: false,
            header_deadline_armed: false,
            counted_live: true,
            streaming: None,
            request_id: 0,
            write_started_ticks: 0,
            write_request_id: 0,
        }
    }

    /// The interest set this connection's state wants: readable while
    /// reading or draining, writable while response bytes are pending.
    pub fn desired_interest(&self) -> Interest {
        Interest {
            readable: matches!(self.state, ConnState::Read | ConnState::Drain),
            writable: self.outpos < self.outbuf.len(),
        }
    }

    /// True when unanswered request bytes are buffered, so a deadline now
    /// deserves a `408` rather than a silent idle close.
    pub fn mid_request(&self) -> bool {
        self.assembler.mid_request(&self.inbuf)
    }
}

/// Index-stable connection storage with generation-tagged tokens.
#[derive(Default)]
pub(crate) struct ConnSlab {
    slots: Vec<Slot>,
    free: Vec<usize>,
    len: usize,
}

struct Slot {
    generation: u32,
    conn: Option<Conn>,
}

impl ConnSlab {
    /// Stores a connection and returns its token.
    pub fn insert(&mut self, conn: Conn) -> u64 {
        self.len += 1;
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index];
            slot.conn = Some(conn);
            token(index, slot.generation)
        } else {
            let index = self.slots.len();
            self.slots.push(Slot {
                generation: 0,
                conn: Some(conn),
            });
            token(index, 0)
        }
    }

    /// The connection for `token`, unless it was removed (or the slot was
    /// reused by a later generation).
    pub fn get_mut(&mut self, token: u64) -> Option<&mut Conn> {
        let (index, generation) = split(token);
        let slot = self.slots.get_mut(index)?;
        if slot.generation != generation {
            return None;
        }
        slot.conn.as_mut()
    }

    /// Removes and returns the connection for `token`. The slot's
    /// generation advances so stale tokens die with it.
    pub fn remove(&mut self, token: u64) -> Option<Conn> {
        let (index, generation) = split(token);
        let slot = self.slots.get_mut(index)?;
        if slot.generation != generation {
            return None;
        }
        let conn = slot.conn.take()?;
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(index);
        self.len -= 1;
        Some(conn)
    }

    /// Live connection count.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Counts connections per lifecycle state, in
    /// [`crate::metrics::CONN_STATES`] order — the event-loop census
    /// gauges. O(slots), so callers sample it on a time budget.
    pub fn census(&self) -> [u64; 5] {
        let mut counts = [0u64; 5];
        for slot in &self.slots {
            if let Some(conn) = &slot.conn {
                let index = match conn.state {
                    ConnState::Read => 0,
                    ConnState::Dispatched => 1,
                    ConnState::Stream => 2,
                    ConnState::Write => 3,
                    ConnState::Drain => 4,
                };
                counts[index] += 1;
            }
        }
        counts
    }

    /// Tokens of every live connection (for shutdown teardown).
    pub fn tokens(&self) -> Vec<u64> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, slot)| slot.conn.is_some())
            .map(|(index, slot)| token(index, slot.generation))
            .collect()
    }
}

fn token(index: usize, generation: u32) -> u64 {
    ((generation as u64) << 32) | index as u64
}

fn split(token: u64) -> (usize, u32) {
    ((token & 0xFFFF_FFFF) as usize, (token >> 32) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::time::Duration;

    fn stream() -> TcpStream {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        TcpStream::connect(listener.local_addr().unwrap()).unwrap()
    }

    #[test]
    fn slab_reuses_slots_with_fresh_generations() {
        let mut slab = ConnSlab::default();
        let deadline = Instant::now() + Duration::from_secs(1);
        let a = slab.insert(Conn::new(stream(), deadline));
        let b = slab.insert(Conn::new(stream(), deadline));
        assert_eq!(slab.len(), 2);
        assert!(slab.get_mut(a).is_some());
        assert!(slab.remove(a).is_some());
        assert!(slab.get_mut(a).is_none(), "removed token is dead");
        assert!(slab.remove(a).is_none());
        let c = slab.insert(Conn::new(stream(), deadline));
        assert_ne!(a, c, "reused slot carries a new generation");
        assert_eq!(a & 0xFFFF_FFFF, c & 0xFFFF_FFFF, "same slot index");
        assert!(slab.get_mut(a).is_none(), "stale token misses the tenant");
        assert!(slab.get_mut(b).is_some() && slab.get_mut(c).is_some());
        assert_eq!(slab.tokens().len(), 2);
    }

    #[test]
    fn desired_interest_tracks_state_and_buffers() {
        let deadline = Instant::now() + Duration::from_secs(1);
        let mut conn = Conn::new(stream(), deadline);
        assert!(conn.desired_interest().readable);
        assert!(!conn.desired_interest().writable);
        conn.outbuf = b"HTTP/1.1 200 OK\r\n\r\n".to_vec();
        conn.state = ConnState::Write;
        assert!(conn.desired_interest().writable);
        assert!(!conn.desired_interest().readable);
        conn.outpos = conn.outbuf.len();
        assert!(!conn.desired_interest().writable, "flushed");
        conn.state = ConnState::Dispatched;
        assert!(
            !conn.desired_interest().readable,
            "no read interest while the engine owns the request"
        );
    }
}

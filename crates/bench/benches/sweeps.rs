//! Criterion bench: the 1-D sweeps behind Figures 4–6.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use greenfpga::{log_spaced_volumes, Domain, Estimator, EstimatorParams, OperatingPoint};

fn bench_application_sweep(c: &mut Criterion) {
    let estimator = Estimator::new(EstimatorParams::paper_defaults());
    let base = OperatingPoint::paper_default();
    let counts: Vec<u64> = (1..=12).collect();
    c.bench_function("fig4_application_sweep_dnn", |b| {
        b.iter(|| {
            estimator
                .sweep_applications(Domain::Dnn, black_box(&counts), base)
                .expect("sweep")
        })
    });
}

fn bench_lifetime_sweep(c: &mut Criterion) {
    let estimator = Estimator::new(EstimatorParams::paper_defaults());
    let base = OperatingPoint::paper_default();
    let lifetimes: Vec<f64> = (1..=24).map(|i| 0.1 * i as f64).collect();
    c.bench_function("fig5_lifetime_sweep_dnn", |b| {
        b.iter(|| {
            estimator
                .sweep_lifetime(Domain::Dnn, black_box(&lifetimes), base)
                .expect("sweep")
        })
    });
}

fn bench_volume_sweep(c: &mut Criterion) {
    let estimator = Estimator::new(EstimatorParams::paper_defaults());
    let base = OperatingPoint::paper_default();
    let volumes = log_spaced_volumes(1_000, 10_000_000, 17);
    c.bench_function("fig6_volume_sweep_dnn", |b| {
        b.iter(|| {
            estimator
                .sweep_volume(Domain::Dnn, black_box(&volumes), base)
                .expect("sweep")
        })
    });
}

fn bench_long_horizon(c: &mut Criterion) {
    let estimator = Estimator::new(EstimatorParams::paper_defaults());
    let scenario = greenfpga::LongHorizonScenario::paper_fig9(Domain::Dnn);
    c.bench_function("fig9_long_horizon_dnn", |b| {
        b.iter(|| scenario.run(black_box(&estimator)).expect("scenario"))
    });
}

criterion_group!(
    benches,
    bench_application_sweep,
    bench_lifetime_sweep,
    bench_volume_sweep,
    bench_long_horizon
);
criterion_main!(benches);

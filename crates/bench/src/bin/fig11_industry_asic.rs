//! Figure 11: CFP components for IndustryASIC1 (Antoum-class) and
//! IndustryASIC2 (TPU-class) over a six-year application at one million
//! units (no reprogramming — ASICs serve the application they were built
//! for).
//!
//! Paper result: operational CFP dominates, followed by manufacturing and
//! design CFP.

use gf_bench::paper_estimator;
use greenfpga::{industry_asic1, industry_asic2, render_table, IndustryScenario};

fn main() -> Result<(), greenfpga::GreenFpgaError> {
    let estimator = paper_estimator();
    let scenario = IndustryScenario::paper_defaults();

    let mut rows = Vec::new();
    for asic in [industry_asic1(), industry_asic2()] {
        let cfp = scenario.evaluate_asic(&estimator, &asic)?;
        rows.push(vec![
            asic.chip().name().to_string(),
            format!("{:.1}", cfp.design.as_tons()),
            format!("{:.1}", cfp.manufacturing.as_tons()),
            format!("{:.1}", cfp.packaging.as_tons()),
            format!("{:.1}", cfp.eol.as_tons()),
            format!("{:.1}", cfp.operation.as_tons()),
            format!("{:.1}", cfp.app_dev.as_tons()),
            format!("{:.1}", cfp.total().as_tons()),
        ]);
    }

    println!("Figure 11 — industry ASICs, 6-year application, 1e6 units (all values tCO2e):");
    println!(
        "{}",
        render_table(
            &[
                "Device",
                "Design",
                "Manufacturing",
                "Packaging",
                "EOL",
                "Operation",
                "App dev",
                "Total"
            ],
            &rows
        )
    );
    Ok(())
}

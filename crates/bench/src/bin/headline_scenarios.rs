//! The paper's headline claims (contribution 5 / abstract): FPGAs are the
//! sustainable choice when (i) application lifetimes are below ~1.6 years,
//! (ii) the FPGA is reused for more than ~5 applications, or (iii)
//! application volumes are below ~2 million units in specific domains.
//!
//! This binary re-derives all three thresholds from the model.

use gf_bench::paper_estimator;
use greenfpga::{render_table, Domain};

fn main() -> Result<(), greenfpga::GreenFpgaError> {
    let estimator = paper_estimator();
    let mut rows = Vec::new();

    for domain in Domain::ALL {
        let apps = estimator.crossover_in_applications(domain, 20, 2.0, 1_000_000)?;
        let lifetime = estimator.crossover_in_lifetime(domain, 5, 1_000_000, 0.05, 3.0)?;
        let volume = estimator.crossover_in_volume(domain, 5, 2.0, 1_000, 20_000_000)?;
        rows.push(vec![
            domain.to_string(),
            apps.map_or("never (<=20)".to_string(), |n| format!("{n} apps")),
            lifetime.map_or("no crossover".to_string(), |c| {
                format!("{} at {:.2} y", c.direction, c.at)
            }),
            volume.map_or("no crossover".to_string(), |c| {
                format!("{} at {:.2} M", c.direction, c.at / 1.0e6)
            }),
        ]);
    }

    println!(
        "Headline sustainability thresholds (paper: 1.6 years / >5 apps / <2 M units for DNN):"
    );
    println!(
        "{}",
        render_table(
            &[
                "Domain",
                "A2F in N_app (T=2y, 1M units)",
                "Lifetime crossover (N=5, 1M units)",
                "Volume crossover (N=5, T=2y)"
            ],
            &rows
        )
    );
    Ok(())
}

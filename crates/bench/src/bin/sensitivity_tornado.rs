//! One-at-a-time (tornado) sensitivity analysis of the FPGA:ASIC verdict.
//!
//! For each Table 1 knob, the FPGA:ASIC ratio is evaluated with the knob at
//! the low and high end of its range while everything else stays at the
//! paper defaults. Knobs are ranked by how much they swing the ratio, and
//! the ones able to flip the greener platform are flagged.

use gf_bench::paper_estimator;
use greenfpga::{render_table, Domain, OperatingPoint};

fn main() -> Result<(), greenfpga::GreenFpgaError> {
    let estimator = paper_estimator();
    let point = OperatingPoint::paper_default();

    for domain in Domain::ALL {
        let tornado = estimator.tornado_analysis(domain, point)?;
        let baseline = tornado
            .entries
            .first()
            .map(|e| e.ratio_at_baseline)
            .unwrap_or(f64::NAN);

        let rows: Vec<Vec<String>> = tornado
            .entries
            .iter()
            .map(|e| {
                vec![
                    e.knob.to_string(),
                    format!(
                        "{:.3} - {:.3} {}",
                        e.knob.range().low,
                        e.knob.range().high,
                        e.knob.unit()
                    ),
                    format!("{:.3}", e.ratio_at_low),
                    format!("{:.3}", e.ratio_at_high),
                    format!("{:.3}", e.swing()),
                    if e.flips_winner() {
                        "yes".into()
                    } else {
                        "no".into()
                    },
                ]
            })
            .collect();

        println!(
            "Tornado analysis — {domain} (baseline FPGA:ASIC ratio {:.3}, N_app=5, T=2 y, N_vol=1e6):",
            baseline
        );
        println!(
            "{}",
            render_table(
                &[
                    "Knob",
                    "Range",
                    "Ratio @ low",
                    "Ratio @ high",
                    "Swing",
                    "Flips winner?"
                ],
                &rows
            )
        );
        let critical = tornado.decision_critical_knobs();
        if critical.is_empty() {
            println!("No single knob flips the verdict for {domain}.");
        } else {
            let names: Vec<String> = critical.iter().map(|k| k.to_string()).collect();
            println!("Decision-critical knobs for {domain}: {}", names.join(", "));
        }
        println!();
    }
    Ok(())
}

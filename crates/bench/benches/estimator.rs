//! Bench: single platform-comparison evaluations, naive vs compiled.
//!
//! A carbon-aware design-space-exploration loop calls the estimator once per
//! candidate configuration, so single-evaluation latency bounds how large a
//! DSE sweep can be. The compiled rows show what the batch engine saves
//! even before any parallelism.

use std::hint::black_box;

use gf_bench::harness::bench;
use greenfpga::{Domain, Estimator, EstimatorParams, IndustryScenario, OperatingPoint, Workload};

fn main() {
    let estimator = Estimator::new(EstimatorParams::paper_defaults());

    for domain in Domain::ALL {
        let workload = Workload::uniform(domain, 5, 2.0, 1_000_000).expect("valid workload");
        bench(&format!("compare_domain/{domain}_5apps"), || {
            estimator
                .compare_domain(black_box(&workload))
                .expect("estimate")
        });
    }

    let point = OperatingPoint::paper_default();
    for domain in Domain::ALL {
        let compiled = estimator.compile(domain).expect("compile");
        bench(&format!("compiled_evaluate/{domain}_5apps"), || {
            compiled.evaluate(black_box(point)).expect("estimate")
        });
    }
    bench("compile_scenario/dnn", || {
        estimator.compile(black_box(Domain::Dnn)).expect("compile")
    });

    for napps in [1u64, 8, 64] {
        let workload =
            Workload::uniform(Domain::Dnn, napps, 2.0, 1_000_000).expect("valid workload");
        bench(&format!("compare_domain_napps/dnn_{napps}_apps"), || {
            estimator
                .compare_domain(black_box(&workload))
                .expect("estimate")
        });
    }

    let scenario = IndustryScenario::paper_defaults();
    let fpga = greenfpga::industry_fpga1();
    let asic = greenfpga::industry_asic2();
    bench("industry_fpga1_fig10", || {
        scenario
            .evaluate_fpga(&estimator, black_box(&fpga))
            .expect("estimate")
    });
    bench("industry_asic2_fig11", || {
        scenario
            .evaluate_asic(&estimator, black_box(&asic))
            .expect("estimate")
    });
}

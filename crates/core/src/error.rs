//! Error type for the GreenFPGA model.

use std::error::Error;
use std::fmt;

use gf_act::ActError;
use gf_lifecycle::LifecycleError;
use gf_units::UnitError;

/// Errors raised while constructing model inputs or evaluating estimates.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GreenFpgaError {
    /// A workload was constructed with no applications.
    EmptyWorkload,
    /// An application parameter was invalid (negative lifetime, zero volume
    /// where one is required, …).
    InvalidApplication {
        /// Which field was invalid.
        field: &'static str,
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A sweep or crossover search was configured with an empty or inverted
    /// range.
    InvalidRange {
        /// Which range was invalid.
        what: &'static str,
    },
    /// A result could not be rendered for machine consumption (e.g. a
    /// non-finite number reached a JSON serializer).
    Serialization {
        /// What went wrong.
        reason: String,
    },
    /// Error bubbled up from the manufacturing substrate.
    Act(ActError),
    /// Error bubbled up from the lifecycle models.
    Lifecycle(LifecycleError),
    /// Error bubbled up from unit construction.
    Unit(UnitError),
}

impl fmt::Display for GreenFpgaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GreenFpgaError::EmptyWorkload => {
                write!(f, "workload must contain at least one application")
            }
            GreenFpgaError::InvalidApplication { field, reason } => {
                write!(f, "invalid application {field}: {reason}")
            }
            GreenFpgaError::InvalidRange { what } => {
                write!(f, "invalid range for {what}")
            }
            GreenFpgaError::Serialization { reason } => {
                write!(f, "serialization error: {reason}")
            }
            GreenFpgaError::Act(e) => write!(f, "manufacturing model error: {e}"),
            GreenFpgaError::Lifecycle(e) => write!(f, "lifecycle model error: {e}"),
            GreenFpgaError::Unit(e) => write!(f, "unit error: {e}"),
        }
    }
}

impl Error for GreenFpgaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GreenFpgaError::Act(e) => Some(e),
            GreenFpgaError::Lifecycle(e) => Some(e),
            GreenFpgaError::Unit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ActError> for GreenFpgaError {
    fn from(e: ActError) -> Self {
        GreenFpgaError::Act(e)
    }
}

impl From<LifecycleError> for GreenFpgaError {
    fn from(e: LifecycleError) -> Self {
        GreenFpgaError::Lifecycle(e)
    }
}

impl From<UnitError> for GreenFpgaError {
    fn from(e: UnitError) -> Self {
        GreenFpgaError::Unit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        assert!(GreenFpgaError::EmptyWorkload
            .to_string()
            .contains("at least one"));
        assert!(GreenFpgaError::InvalidRange {
            what: "volume sweep"
        }
        .to_string()
        .contains("volume sweep"));
        let e: GreenFpgaError = ActError::NonPositiveArea(0.0).into();
        assert!(e.to_string().contains("manufacturing"));
        assert!(e.source().is_some());
        let e: GreenFpgaError = UnitError::FractionOutOfRange(2.0).into();
        assert!(e.source().is_some());
        let e: GreenFpgaError = LifecycleError::ZeroCount {
            quantity: "project engineers",
        }
        .into();
        assert!(e.source().is_some());
        assert!(GreenFpgaError::EmptyWorkload.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GreenFpgaError>();
    }
}

//! Datacenter fleet study on the industry testcases.
//!
//! Evaluates the Table 3 industry devices (Antoum-class and TPU-class ASICs,
//! Agilex-7-class and Stratix-10-class FPGAs) over a six-year service life
//! at one million units, and shows how the picture changes when the fleet
//! moves to a cleaner grid or the e-waste stream is recycled.
//!
//! Run with `cargo run -p greenfpga --example datacenter_fleet`.

use greenfpga::act::GridMix;
use greenfpga::units::Fraction;
use greenfpga::{
    industry_asic1, industry_asic2, industry_fpga1, industry_fpga2, render_table, DeploymentParams,
    Estimator, EstimatorParams, IndustryScenario,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = IndustryScenario::paper_defaults();

    let world = Estimator::new(EstimatorParams::paper_defaults());
    let clean_grid = Estimator::new(EstimatorParams::paper_defaults().with_deployment(
        DeploymentParams::new(Fraction::new(0.2)?, GridMix::Iceland.carbon_intensity()),
    ));
    let recycled = Estimator::new(
        EstimatorParams::paper_defaults()
            .with_recycled_material_fraction(Fraction::new(0.4)?)
            .with_eol_recycled_fraction(Fraction::new(0.6)?),
    );

    let mut rows = Vec::new();
    let fpgas = [industry_fpga1(), industry_fpga2()];
    let asics = [industry_asic1(), industry_asic2()];

    for fpga in &fpgas {
        let base = scenario.evaluate_fpga(&world, fpga)?;
        let green = scenario.evaluate_fpga(&clean_grid, fpga)?;
        let circular = scenario.evaluate_fpga(&recycled, fpga)?;
        rows.push(vec![
            fpga.chip().name().to_string(),
            format!("{}", base.total()),
            format!("{}", green.total()),
            format!("{}", circular.total()),
        ]);
    }
    for asic in &asics {
        let base = scenario.evaluate_asic(&world, asic)?;
        let green = scenario.evaluate_asic(&clean_grid, asic)?;
        let circular = scenario.evaluate_asic(&recycled, asic)?;
        rows.push(vec![
            asic.chip().name().to_string(),
            format!("{}", base.total()),
            format!("{}", green.total()),
            format!("{}", circular.total()),
        ]);
    }

    println!("Six-year fleet footprint (1M units), by sustainability lever:");
    println!(
        "{}",
        render_table(
            &[
                "Device",
                "Baseline",
                "Clean deployment grid",
                "Recycling (rho=0.4, delta=0.6)"
            ],
            &rows
        )
    );

    println!("Component breakdown on the baseline grid:");
    let mut breakdown_rows = Vec::new();
    for fpga in &fpgas {
        let cfp = scenario.evaluate_fpga(&world, fpga)?;
        breakdown_rows.push(vec![
            fpga.chip().name().to_string(),
            format!("{}", cfp.design),
            format!("{}", cfp.manufacturing + cfp.packaging),
            format!("{}", cfp.eol),
            format!("{}", cfp.operation),
            format!("{}", cfp.app_dev),
        ]);
    }
    for asic in &asics {
        let cfp = scenario.evaluate_asic(&world, asic)?;
        breakdown_rows.push(vec![
            asic.chip().name().to_string(),
            format!("{}", cfp.design),
            format!("{}", cfp.manufacturing + cfp.packaging),
            format!("{}", cfp.eol),
            format!("{}", cfp.operation),
            format!("{}", cfp.app_dev),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["Device", "Design", "Mfg+Pkg", "EOL", "Operation", "App dev"],
            &breakdown_rows
        )
    );
    Ok(())
}

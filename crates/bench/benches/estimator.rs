//! Criterion bench: single platform-comparison evaluations.
//!
//! A carbon-aware design-space-exploration loop calls the estimator once per
//! candidate configuration, so single-evaluation latency bounds how large a
//! DSE sweep can be.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use greenfpga::{Domain, Estimator, EstimatorParams, IndustryScenario, Workload};

fn bench_domain_comparison(c: &mut Criterion) {
    let estimator = Estimator::new(EstimatorParams::paper_defaults());
    let mut group = c.benchmark_group("compare_domain");
    for domain in Domain::ALL {
        let workload = Workload::uniform(domain, 5, 2.0, 1_000_000).expect("valid workload");
        group.bench_function(format!("{domain}_5apps"), |b| {
            b.iter(|| {
                estimator
                    .compare_domain(black_box(&workload))
                    .expect("estimate")
            })
        });
    }
    group.finish();
}

fn bench_many_applications(c: &mut Criterion) {
    let estimator = Estimator::new(EstimatorParams::paper_defaults());
    let mut group = c.benchmark_group("compare_domain_napps");
    for napps in [1u64, 8, 64] {
        let workload =
            Workload::uniform(Domain::Dnn, napps, 2.0, 1_000_000).expect("valid workload");
        group.bench_function(format!("dnn_{napps}_apps"), |b| {
            b.iter(|| {
                estimator
                    .compare_domain(black_box(&workload))
                    .expect("estimate")
            })
        });
    }
    group.finish();
}

fn bench_industry_testcases(c: &mut Criterion) {
    let estimator = Estimator::new(EstimatorParams::paper_defaults());
    let scenario = IndustryScenario::paper_defaults();
    let fpga = greenfpga::industry_fpga1();
    let asic = greenfpga::industry_asic2();
    c.bench_function("industry_fpga1_fig10", |b| {
        b.iter(|| {
            scenario
                .evaluate_fpga(&estimator, black_box(&fpga))
                .expect("estimate")
        })
    });
    c.bench_function("industry_asic2_fig11", |b| {
        b.iter(|| {
            scenario
                .evaluate_asic(&estimator, black_box(&asic))
                .expect("estimate")
        })
    });
}

criterion_group!(
    benches,
    bench_domain_comparison,
    bench_many_applications,
    bench_industry_testcases
);
criterion_main!(benches);
